//! The interaction model: every user action in the paper as an [`Event`],
//! applied to a [`crate::view::ViewState`] by a pure reducer.
//!
//! Modeling interactions as data (rather than callbacks) is what lets the
//! reproduction *test* the interactive tool: an example drives a scripted
//! sequence of events and snapshots the resulting SVG, and the workspace's
//! integration tests assert that, e.g., brushing narrows the effective
//! window and hovering a shared machine surfaces its co-allocation links.

use batchlens_trace::{JobId, MachineId, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

use crate::view::{DetailMetric, ViewState};

/// A user interaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Event {
    /// Choose the snapshot timestamp (the "choosing" interaction on the
    /// timeline). Clamped to the extent.
    SelectTimestamp(Timestamp),
    /// Brush a time range on the timeline; the detail view zooms to it.
    BrushTime(TimeRange),
    /// Clear the brush (click outside it).
    ClearBrush,
    /// Select a job (click a job bubble): drives the detail line charts.
    SelectJob(JobId),
    /// Deselect the current job.
    DeselectJob,
    /// Hover a machine glyph: highlights co-allocation links.
    HoverMachine(MachineId),
    /// Stop hovering.
    Unhover,
    /// Switch the metric plotted in the detail charts.
    SetDetailMetric(DetailMetric),
    /// Pin/unpin a job into the detail sidebar.
    TogglePin(JobId),
    /// Step the snapshot timestamp by a signed number of seconds.
    StepTimestamp(i64),
    /// Toggle the detector anomaly-span overlay on the detail views.
    ToggleAnomalies,
}

/// A recorded interaction with a monotonically increasing sequence number —
/// the unit of an interaction log that can be replayed deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// Sequence number in the session.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// Applies `event` to `state`, returning whether anything changed.
///
/// The reducer is pure and total: it never panics and never reads outside
/// `state`. Out-of-range timestamps are clamped, disjoint brushes are
/// dropped (see [`ViewState`]).
pub fn reduce(state: &mut ViewState, event: Event) -> bool {
    let before = state.clone();
    match event {
        Event::SelectTimestamp(t) => state.set_timestamp(t),
        Event::BrushTime(window) => state.set_brush(Some(window)),
        Event::ClearBrush => state.set_brush(None),
        Event::SelectJob(job) => state.set_job(Some(job)),
        Event::DeselectJob => state.set_job(None),
        Event::HoverMachine(m) => state.set_hover(Some(m)),
        Event::Unhover => state.set_hover(None),
        Event::SetDetailMetric(metric) => state.set_metric(metric),
        Event::TogglePin(job) => state.toggle_pin(job),
        Event::StepTimestamp(delta) => {
            let t = state.selected_timestamp() + batchlens_trace::TimeDelta::seconds(delta);
            state.set_timestamp(t);
        }
        Event::ToggleAnomalies => state.toggle_anomalies(),
    }
    *state != before
}

/// Replays a sequence of events onto a fresh view over `extent`.
pub fn replay(extent: TimeRange, events: &[Event]) -> ViewState {
    let mut state = ViewState::new(extent);
    for &e in events {
        reduce(&mut state, e);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Metric;

    fn extent() -> TimeRange {
        TimeRange::new(Timestamp::new(0), Timestamp::new(86400)).unwrap()
    }

    #[test]
    fn select_timestamp_clamps_and_reports_change() {
        let mut v = ViewState::new(extent());
        assert!(reduce(
            &mut v,
            Event::SelectTimestamp(Timestamp::new(43800))
        ));
        assert_eq!(v.selected_timestamp(), Timestamp::new(43800));
        assert!(!reduce(
            &mut v,
            Event::SelectTimestamp(Timestamp::new(43800))
        ));
    }

    #[test]
    fn brush_and_clear() {
        let mut v = ViewState::new(extent());
        let w = TimeRange::new(Timestamp::new(1000), Timestamp::new(5000)).unwrap();
        assert!(reduce(&mut v, Event::BrushTime(w)));
        assert_eq!(v.effective_window(), w);
        assert!(reduce(&mut v, Event::ClearBrush));
        assert_eq!(v.effective_window(), extent());
    }

    #[test]
    fn job_select_and_deselect() {
        let mut v = ViewState::new(extent());
        reduce(&mut v, Event::SelectJob(JobId::new(7901)));
        assert_eq!(v.selected_job(), Some(JobId::new(7901)));
        reduce(&mut v, Event::DeselectJob);
        assert_eq!(v.selected_job(), None);
    }

    #[test]
    fn hover_drives_machine_state() {
        let mut v = ViewState::new(extent());
        reduce(&mut v, Event::HoverMachine(MachineId::new(3)));
        assert_eq!(v.hovered_machine(), Some(MachineId::new(3)));
        reduce(&mut v, Event::Unhover);
        assert_eq!(v.hovered_machine(), None);
    }

    #[test]
    fn step_timestamp_moves_and_clamps() {
        let mut v = ViewState::new(extent());
        reduce(&mut v, Event::SelectTimestamp(Timestamp::new(100)));
        reduce(&mut v, Event::StepTimestamp(300));
        assert_eq!(v.selected_timestamp(), Timestamp::new(400));
        reduce(&mut v, Event::StepTimestamp(-100_000));
        assert_eq!(v.selected_timestamp(), Timestamp::new(0));
    }

    #[test]
    fn anomaly_overlay_toggles() {
        let mut v = ViewState::new(extent());
        assert!(!v.show_anomalies());
        assert!(reduce(&mut v, Event::ToggleAnomalies));
        assert!(v.show_anomalies());
        assert!(reduce(&mut v, Event::ToggleAnomalies));
        assert!(!v.show_anomalies());
    }

    #[test]
    fn metric_and_pin() {
        let mut v = ViewState::new(extent());
        reduce(&mut v, Event::SetDetailMetric(Metric::Disk));
        assert_eq!(v.detail_metric(), Metric::Disk);
        reduce(&mut v, Event::TogglePin(JobId::new(1)));
        assert_eq!(v.pinned_jobs(), &[JobId::new(1)]);
    }

    #[test]
    fn replay_is_deterministic() {
        let events = [
            Event::SelectTimestamp(Timestamp::new(46200)),
            Event::SelectJob(JobId::new(7901)),
            Event::BrushTime(TimeRange::new(Timestamp::new(45000), Timestamp::new(47000)).unwrap()),
            Event::SetDetailMetric(Metric::Memory),
        ];
        let a = replay(extent(), &events);
        let b = replay(extent(), &events);
        assert_eq!(a, b);
        assert_eq!(a.selected_job(), Some(JobId::new(7901)));
        assert_eq!(a.detail_metric(), Metric::Memory);
    }
}
