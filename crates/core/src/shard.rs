//! Machine-id-hash sharded online monitoring: N independent
//! [`StreamMonitor`] shards behind one facade that still answers the whole
//! [`DatasetQuery`] surface.
//!
//! The single monitor takes its one lock per delivery; at production rates
//! that lock is the ceiling. [`ShardedMonitor`] splits the rolling state by
//! a deterministic hash of the machine id, so deliveries for different
//! machines contend on different locks, and batch epochs
//! ([`crate::stream::Batch`]) fan out across shards on the
//! [`batchlens_exec`] pool — each shard still acquires its own lock **once
//! per epoch**, not once per record.
//!
//! Everything a machine owns lives in exactly one shard: its rolling
//! window, its [`crate::stream::StreamMonitor`] detector bank, its rolling
//! indexes, and its WAL segment family (one log directory per shard). The
//! only cross-shard structures are the facade's global alert ring (fired
//! alerts re-stamped into one monotonic sequence, in record order) and the
//! epoch gate that makes [`DatasetQuery::frame`] a **one-version-cut**
//! capture: a frame blocks out every in-flight delivery and reads all
//! shards at one simultaneous cut, so no consumer ever observes a torn
//! epoch (some shards post-batch, some pre-batch).
//!
//! The workspace `sharded_differential` suite proves the facade
//! bit-identical to a single [`StreamMonitor`] fed the same deliveries —
//! every query, frames, counters, and the global alert sequence — at shard
//! counts {1, 4} × pool widths {1, 8}, with stragglers and out-of-order
//! arrivals interleaved.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use batchlens_analytics::detect::{AnomalyKind, Detector};
use batchlens_trace::wal::{RecoveryReport, WalConfig, WalError, WalReader, WalRecord, WalWriter};
use batchlens_trace::{
    BatchInstanceRecord, DatasetQuery, JobId, LivenessDelta, MachineEventRecord, MachineId, Metric,
    QueryFrame, RunningDelta, ServerUsageRecord, TaskId, TimeRange, TimeSeries, Timestamp,
    UtilHold, UtilizationTriple,
};
use parking_lot::{Mutex, RwLock};

use crate::stream::{
    Alert, AlertBatch, AlertSource, Batch, RecoverError, StreamConfig, StreamConfigError,
    StreamMonitor,
};

/// The facade's global alert ring: every alert any shard fires is
/// re-stamped here with the **global** monotonic sequence number, in the
/// order the records that fired them were delivered. Same retention rule
/// as the single monitor's ring (`alert_capacity`, oldest evicted first).
#[derive(Debug, Default)]
struct GlobalRing {
    alerts: VecDeque<Alert>,
    total: u64,
    overflowed: u64,
}

impl GlobalRing {
    fn base_seq(&self) -> u64 {
        self.total - self.alerts.len() as u64
    }

    fn alerts_from(&self, seq: u64) -> AlertBatch {
        let base = self.base_seq();
        let start = seq.max(base).min(self.total);
        AlertBatch {
            alerts: self
                .alerts
                .iter()
                .skip((start - base) as usize)
                .copied()
                .collect(),
            next_seq: self.total,
            missed: start.saturating_sub(seq),
        }
    }
}

/// What [`ShardedMonitor::recover`] did, per shard and globally.
#[derive(Debug)]
pub struct ShardedRecoveryReport {
    /// Per-shard replay reports, ascending by shard index.
    pub shards: Vec<RecoveryReport>,
    /// The consistent version cut: the highest batch epoch sealed in
    /// **every** shard's log, when all shards carried at least one seal.
    /// `None` means the logs carried no common epoch frontier (a mixed or
    /// non-batch workload) and every shard replayed its full intact log.
    pub epoch_cut: Option<u64>,
    /// Intact records found *beyond* the cut in shards whose logs ran
    /// ahead of the slowest shard — read but deliberately not applied, so
    /// no shard's recovered state includes an epoch its peers lost.
    pub records_beyond_cut: u64,
}

/// N machine-id-hash partitioned [`StreamMonitor`] shards behind one
/// [`DatasetQuery`] facade. See the [module docs](self) for the design and
/// the bit-identity contract.
///
/// # Complexity contract
///
/// * Routing is O(1) per delivery (an FNV-1a hash of the machine id, fixed
///   across runs and platforms — shard layouts are stable).
/// * [`ShardedMonitor::ingest_batch`] partitions O(records), then runs the
///   per-shard epoch slices concurrently on the [`batchlens_exec`] pool:
///   one lock acquisition **per shard per epoch**, per-record work
///   identical to the single monitor.
/// * Collection queries fan out one task per shard and merge sorted
///   per-shard answers — O(answer log shards) worst case, O(answer) in
///   practice (concatenate + sort of disjoint machine sets).
/// * Point queries (`util_at`, `alive_at`, `series_window`, `util_hold`)
///   route to the owning shard: same cost as the single monitor.
/// * [`DatasetQuery::frame`] takes the epoch gate exclusively and captures
///   all shards at one simultaneous version cut — O(answer), and no
///   delivery (single-record or batch) can be half-visible in it.
pub struct ShardedMonitor {
    cfg: StreamConfig,
    /// Pool width for fan-out (0 = the `BATCHLENS_THREADS` process
    /// default).
    threads: usize,
    shards: Vec<StreamMonitor>,
    /// Deliveries hold this shared; a frame capture holds it exclusively —
    /// the "no torn epoch" rule.
    epoch_gate: RwLock<()>,
    ring: Mutex<GlobalRing>,
}

impl std::fmt::Debug for ShardedMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMonitor")
            .field("shards", &self.shards.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ShardedMonitor {
    /// Creates `shards` partitions, each a [`StreamMonitor::new`] with the
    /// default detector set.
    ///
    /// # Errors
    ///
    /// [`StreamConfigError`] when `cfg` fails validation or `shards == 0`.
    pub fn new(cfg: StreamConfig, shards: usize) -> Result<ShardedMonitor, StreamConfigError> {
        if shards == 0 {
            return Err(StreamConfigError::ZeroShards);
        }
        let shards = (0..shards)
            .map(|_| StreamMonitor::new(cfg))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedMonitor {
            cfg,
            threads: 0,
            shards,
            epoch_gate: RwLock::new(()),
            ring: Mutex::new(GlobalRing::default()),
        })
    }

    /// Creates `shards` partitions, each running the detector set built by
    /// `factory` (detectors are not cloneable, so every shard builds its
    /// own equal set — the factory must be deterministic for shard states
    /// to stay comparable).
    ///
    /// # Errors
    ///
    /// [`StreamConfigError`] when `cfg` fails validation or `shards == 0`.
    pub fn with_detector_factory<F>(
        cfg: StreamConfig,
        shards: usize,
        factory: F,
    ) -> Result<ShardedMonitor, StreamConfigError>
    where
        F: Fn() -> Vec<Box<dyn Detector>>,
    {
        if shards == 0 {
            return Err(StreamConfigError::ZeroShards);
        }
        let shards = (0..shards)
            .map(|_| StreamMonitor::with_detectors(cfg, factory()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedMonitor {
            cfg,
            threads: 0,
            shards,
            epoch_gate: RwLock::new(()),
            ring: Mutex::new(GlobalRing::default()),
        })
    }

    /// Pins the fan-out pool width (0 restores the `BATCHLENS_THREADS`
    /// process default). Determinism does not depend on it — only
    /// wall-clock does.
    pub fn with_threads(mut self, threads: usize) -> ShardedMonitor {
        self.threads = threads;
        self
    }

    fn threads(&self) -> usize {
        batchlens_exec::resolve_threads(self.threads)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `machine` — FNV-1a over the raw id, modulo the
    /// shard count. Fixed across runs, platforms and restarts: a machine's
    /// state (and its WAL records) always lives in the same shard for a
    /// given shard count.
    pub fn shard_of(&self, machine: MachineId) -> usize {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h = OFFSET;
        for b in machine.raw().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Direct read access to shard `i` (observability: per-shard counters,
    /// WAL health). Mutating a shard directly bypasses the facade's global
    /// alert sequence and epoch gate — don't.
    pub fn shard(&self, i: usize) -> &StreamMonitor {
        &self.shards[i]
    }

    /// The facade's configuration (every shard shares it).
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Re-stamps freshly fired alerts with the global monotonic sequence
    /// and retains them in the facade ring, preserving `alert_capacity`
    /// semantics exactly as the single monitor does.
    fn retain(&self, alerts: &mut [Alert]) {
        if alerts.is_empty() {
            return;
        }
        let mut ring = self.ring.lock();
        for alert in alerts.iter_mut() {
            alert.seq = ring.total;
            ring.total += 1;
            if ring.alerts.len() == self.cfg.alert_capacity {
                ring.alerts.pop_front();
                ring.overflowed += 1;
            }
            ring.alerts.push_back(*alert);
        }
    }

    /// Ingests one usage record: routes to the owning shard, then re-stamps
    /// any fired alerts into the global sequence. Same acceptance semantics
    /// (out-of-order tolerance, straggler accounting) as
    /// [`StreamMonitor::ingest`] — it *is* that code, in one shard.
    pub fn ingest(&self, rec: ServerUsageRecord) -> Vec<Alert> {
        let _gate = self.epoch_gate.read();
        let mut alerts = self.shards[self.shard_of(rec.machine)].ingest(rec);
        self.retain(&mut alerts);
        alerts
    }

    /// Ingests a sealed [`Batch`] epoch: partitions the records by owning
    /// shard, applies every shard's slice concurrently on the
    /// [`batchlens_exec`] pool (one lock acquisition per shard), seals the
    /// batch version into **every** shard's WAL (including shards that
    /// carried no records this epoch, so all epoch frontiers advance in
    /// lockstep), and returns the fired alerts re-stamped into the global
    /// sequence **in delivery order** — bit-identical to
    /// [`StreamMonitor::ingest_batch`] on an unsharded monitor.
    pub fn ingest_batch(&self, batch: &Batch) -> Vec<Alert> {
        let _gate = self.epoch_gate.read();
        let mut parts: Vec<Vec<(u32, ServerUsageRecord)>> = vec![Vec::new(); self.shards.len()];
        for (idx, &rec) in batch.records.iter().enumerate() {
            parts[self.shard_of(rec.machine)].push((idx as u32, rec));
        }
        let version = batch.version;
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let per_shard = batchlens_exec::par_map(self.threads(), &indices, |&i| {
            self.shards[i].apply_batch_part(&parts[i], version)
        });
        let mut tagged: Vec<(u32, Alert)> = per_shard.into_iter().flatten().collect();
        // Stable by delivery index: within one record, firing order is
        // already the kernel's (preserved per shard slice).
        tagged.sort_by_key(|&(idx, _)| idx);
        let mut alerts: Vec<Alert> = tagged.into_iter().map(|(_, a)| a).collect();
        self.retain(&mut alerts);
        alerts
    }

    /// Routes a completed instance record to the shard owning its machine.
    pub fn ingest_instance(&self, rec: BatchInstanceRecord) {
        let _gate = self.epoch_gate.read();
        self.shards[self.shard_of(rec.machine)].ingest_instance(rec);
    }

    /// Bulk-ingests completed instance records.
    pub fn ingest_instances<I>(&self, records: I)
    where
        I: IntoIterator<Item = BatchInstanceRecord>,
    {
        for rec in records {
            self.ingest_instance(rec);
        }
    }

    /// Routes an instance start to the shard owning `machine`.
    pub fn instance_started(
        &self,
        job: JobId,
        task: TaskId,
        seq: u32,
        machine: MachineId,
        at: Timestamp,
    ) {
        let _gate = self.epoch_gate.read();
        self.shards[self.shard_of(machine)].instance_started(job, task, seq, machine, at);
    }

    /// Closes the open interval of instance `(job, task, seq)`. A finish
    /// event names no machine, so it is **broadcast**: every shard logs
    /// the delivery (deterministic on replay) and only the shard holding
    /// the open interval applies it. Returns whether any shard closed one.
    pub fn instance_finished(&self, job: JobId, task: TaskId, seq: u32, at: Timestamp) -> bool {
        let _gate = self.epoch_gate.read();
        let mut closed = false;
        for shard in &self.shards {
            closed |= shard.instance_finished(job, task, seq, at);
        }
        closed
    }

    /// Routes a machine lifecycle event to the owning shard.
    pub fn ingest_machine_event(&self, rec: MachineEventRecord) {
        let _gate = self.epoch_gate.read();
        self.shards[self.shard_of(rec.machine)].ingest_machine_event(rec);
    }

    // --- merged counters (each the sum of disjoint per-shard counts) ---

    /// Records ingested across all shards (stragglers excluded).
    pub fn ingested(&self) -> u64 {
        self.shards.iter().map(StreamMonitor::ingested).sum()
    }

    /// Stragglers dropped across all shards.
    pub fn stale_dropped(&self) -> u64 {
        self.shards.iter().map(StreamMonitor::stale_dropped).sum()
    }

    /// Late records accepted into rolling windows across all shards.
    pub fn late_accepted(&self) -> u64 {
        self.shards.iter().map(StreamMonitor::late_accepted).sum()
    }

    /// Instance records/starts ingested across all shards.
    pub fn ingested_instances(&self) -> u64 {
        self.shards
            .iter()
            .map(StreamMonitor::ingested_instances)
            .sum()
    }

    /// Machine lifecycle events ingested across all shards.
    pub fn ingested_events(&self) -> u64 {
        self.shards.iter().map(StreamMonitor::ingested_events).sum()
    }

    /// Machines tracked across all shards (machine sets are disjoint).
    pub fn tracked_machines(&self) -> usize {
        self.shards
            .iter()
            .map(StreamMonitor::tracked_machines)
            .sum()
    }

    /// Live instance intervals indexed across all shards.
    pub fn live_instances(&self) -> usize {
        self.shards.iter().map(StreamMonitor::live_instances).sum()
    }

    // --- global alert ring ---

    /// Alerts retained in the global ring.
    pub fn alerts_len(&self) -> usize {
        self.ring.lock().alerts.len()
    }

    /// Total alerts fired across all shards since construction.
    pub fn total_alerts(&self) -> u64 {
        self.ring.lock().total
    }

    /// Alerts evicted from the global ring by capacity before a drain.
    pub fn alerts_overflowed(&self) -> u64 {
        self.ring.lock().overflowed
    }

    /// A copy of the retained global ring, oldest first, without draining.
    pub fn peek_alerts(&self) -> Vec<Alert> {
        self.ring.lock().alerts.iter().copied().collect()
    }

    /// Takes every retained alert out of the global ring (oldest first),
    /// draining the per-shard rings too so the take is durable: each shard
    /// logs its (non-empty) drain, and a recovery rebuilds an empty global
    /// ring rather than re-surfacing alerts this consumer already took.
    pub fn drain_alerts(&self) -> Vec<Alert> {
        let _gate = self.epoch_gate.read();
        for shard in &self.shards {
            shard.drain_alerts();
        }
        let mut ring = self.ring.lock();
        let batch = ring.alerts_from(ring.base_seq());
        ring.alerts.clear();
        batch.alerts
    }

    // --- per-shard WAL family ---

    /// The log directory of shard `i` under a family root.
    pub fn shard_wal_dir(root: &Path, i: usize) -> PathBuf {
        root.join(format!("shard-{i:03}"))
    }

    /// Attaches one WAL per shard under `root` (`root/shard-000`,
    /// `root/shard-001`, …). Every shard's deliveries — and every sealed
    /// epoch — are logged to its own segment family; the facade itself
    /// holds no log (the global alert sequence is reconstructed
    /// deterministically at recovery).
    ///
    /// # Errors
    ///
    /// [`WalError`] when any shard's directory cannot be opened; no writer
    /// is attached in that case.
    pub fn attach_wal_family(&self, root: &Path, cfg: WalConfig) -> Result<(), WalError> {
        let writers = (0..self.shards.len())
            .map(|i| WalWriter::open(&ShardedMonitor::shard_wal_dir(root, i), cfg))
            .collect::<Result<Vec<_>, _>>()?;
        for (shard, writer) in self.shards.iter().zip(writers) {
            shard.attach_wal(writer);
        }
        Ok(())
    }

    /// Detaches every shard's WAL writer.
    pub fn detach_wal_family(&self) {
        for shard in &self.shards {
            shard.detach_wal();
        }
    }

    /// Forces every shard's WAL to stable storage.
    pub fn sync_wal(&self) {
        for shard in &self.shards {
            shard.sync_wal();
        }
    }

    /// Failed WAL appends/syncs summed across shards.
    pub fn wal_errors(&self) -> u64 {
        self.shards.iter().map(StreamMonitor::wal_errors).sum()
    }

    /// Failed WAL appends/syncs **per shard**, ascending by shard index —
    /// the readiness probe's view: one unhealthy shard degrades the whole
    /// facade.
    pub fn shard_wal_errors(&self) -> Vec<u64> {
        self.shards.iter().map(StreamMonitor::wal_errors).collect()
    }

    /// Whether **every** shard's durability layer is trustworthy right now
    /// (see [`StreamMonitor::wal_healthy`]). One shard with log gaps makes
    /// the facade unhealthy: a recovery would lose that shard's machines
    /// while keeping the others, which is exactly the torn state the
    /// consistent cut exists to prevent.
    pub fn wal_healthy(&self) -> bool {
        self.shards.iter().all(StreamMonitor::wal_healthy)
    }

    /// Rebuilds a sharded monitor from a per-shard WAL family, with the
    /// default detector set.
    ///
    /// Each shard replays its own log exactly as
    /// [`StreamMonitor::recover`] would; when every shard's log carries at
    /// least one sealed epoch ([`WalRecord::EpochSealed`]), replay is
    /// additionally **cut at the highest epoch sealed everywhere**: shards
    /// whose logs ran ahead stop at the cut marker and their tail records
    /// are counted in [`ShardedRecoveryReport::records_beyond_cut`] rather
    /// than applied. The recovered shards therefore agree on which epochs
    /// happened — the consistent version cut. Without a common frontier
    /// (mixed or non-batch workloads) every shard replays its full intact
    /// log.
    ///
    /// The global alert ring is reconstructed from the recovered shards'
    /// retained alerts, merged in deterministic `(at, machine, metric,
    /// kind, severity)` order and re-stamped with fresh contiguous
    /// sequence numbers ending at the recovered
    /// [`ShardedMonitor::total_alerts`]; after recovery,
    /// [`ShardedMonitor::alerts_overflowed`] counts every fired-but-not-
    /// retained alert (evicted *or* drained pre-crash). Per-shard state is
    /// bit-identical to the pre-crash shards at the cut; the global
    /// sequence numbering is deterministic but reconstructs arrival
    /// interleaving from timestamps, as the per-shard logs do not record
    /// cross-shard arrival order.
    ///
    /// # Errors
    ///
    /// As [`StreamMonitor::recover`]: invalid `cfg` / zero `shards`, or an
    /// OS-level failure reading any shard's log. Corrupt log contents stop
    /// that shard's replay cleanly and are described in its report.
    pub fn recover(
        root: &Path,
        cfg: StreamConfig,
        shards: usize,
    ) -> Result<(ShardedMonitor, ShardedRecoveryReport), RecoverError> {
        let monitor = ShardedMonitor::new(cfg, shards)?;
        ShardedMonitor::replay_family(monitor, root)
    }

    /// [`ShardedMonitor::recover`] with a custom detector factory (which
    /// must equal the pre-crash one for bit-identical kernel states).
    ///
    /// # Errors
    ///
    /// As [`ShardedMonitor::recover`].
    pub fn recover_with_detector_factory<F>(
        root: &Path,
        cfg: StreamConfig,
        shards: usize,
        factory: F,
    ) -> Result<(ShardedMonitor, ShardedRecoveryReport), RecoverError>
    where
        F: Fn() -> Vec<Box<dyn Detector>>,
    {
        let monitor = ShardedMonitor::with_detector_factory(cfg, shards, factory)?;
        ShardedMonitor::replay_family(monitor, root)
    }

    fn replay_family(
        monitor: ShardedMonitor,
        root: &Path,
    ) -> Result<(ShardedMonitor, ShardedRecoveryReport), RecoverError> {
        // Pass 1: each shard's sealed-epoch frontier. The cut exists only
        // when every shard sealed something.
        let mut frontiers: Vec<Option<u64>> = Vec::with_capacity(monitor.shards.len());
        for i in 0..monitor.shards.len() {
            let mut last = None;
            let mut reader = WalReader::open(&ShardedMonitor::shard_wal_dir(root, i))?;
            for (_, record) in &mut reader {
                if let WalRecord::EpochSealed(v) = record {
                    last = Some(v);
                }
            }
            frontiers.push(last);
        }
        let epoch_cut = frontiers
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .and_then(|f| f.into_iter().min());

        // Pass 2: replay every shard, stopping after its cut marker.
        let mut reports = Vec::with_capacity(monitor.shards.len());
        let mut beyond = 0u64;
        for (i, shard) in monitor.shards.iter().enumerate() {
            let mut reader = WalReader::open(&ShardedMonitor::shard_wal_dir(root, i))?;
            let mut stopped = false;
            for (_, record) in &mut reader {
                if stopped {
                    beyond += 1;
                    continue;
                }
                let at_cut = matches!(
                    (epoch_cut, &record),
                    (Some(cut), WalRecord::EpochSealed(v)) if *v >= cut
                );
                shard.apply_replayed(record);
                stopped = at_cut;
            }
            reports.push(reader.report());
        }

        // Rebuild the global ring from the recovered shard rings.
        let mut merged: Vec<Alert> = monitor
            .shards
            .iter()
            .flat_map(StreamMonitor::peek_alerts)
            .collect();
        merged.sort_by_key(|a| {
            (
                a.at,
                a.machine,
                a.metric.index(),
                kind_rank(a.kind),
                a.severity.to_bits(),
                a.value.to_bits(),
                a.seq,
            )
        });
        let total: u64 = monitor.shards.iter().map(StreamMonitor::total_alerts).sum();
        if merged.len() > monitor.cfg.alert_capacity {
            let excess = merged.len() - monitor.cfg.alert_capacity;
            merged.drain(..excess);
        }
        let base = total - merged.len() as u64;
        for (k, alert) in merged.iter_mut().enumerate() {
            alert.seq = base + k as u64;
        }
        {
            let mut ring = monitor.ring.lock();
            ring.overflowed = base;
            ring.total = total;
            ring.alerts = merged.into();
        }

        let report = ShardedRecoveryReport {
            shards: reports,
            epoch_cut,
            records_beyond_cut: beyond,
        };
        Ok((monitor, report))
    }

    /// Fans `f` out across the shards on the exec pool, returning results
    /// in shard order.
    fn fan_out<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&StreamMonitor) -> R + Sync,
    {
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        batchlens_exec::par_map(self.threads(), &indices, |&i| f(&self.shards[i]))
    }
}

/// Deterministic total order over alert kinds for the recovery merge
/// (`AnomalyKind` is non-exhaustive and unordered upstream).
fn kind_rank(kind: AnomalyKind) -> u8 {
    match kind {
        AnomalyKind::HighUtilization => 0,
        AnomalyKind::Outlier => 1,
        AnomalyKind::Deviation => 2,
        AnomalyKind::EndSpike => 3,
        AnomalyKind::Thrashing => 4,
        _ => u8::MAX,
    }
}

impl AlertSource for ShardedMonitor {
    fn alerts_since(&self, seq: u64) -> AlertBatch {
        self.ring.lock().alerts_from(seq)
    }

    fn next_alert_seq(&self) -> u64 {
        self.ring.lock().total
    }
}

/// The facade's query surface: collection queries fan out and merge,
/// point queries route to the owning shard, and [`DatasetQuery::frame`]
/// captures **all** shards at one version cut under the exclusive epoch
/// gate. Because machines partition across shards, merged answers are
/// concatenations of disjoint sorted sets — re-sorted, they are
/// bit-identical to the single monitor's.
impl DatasetQuery for ShardedMonitor {
    fn machine_ids(&self) -> Vec<MachineId> {
        let mut out: Vec<MachineId> = self
            .fan_out(|s| DatasetQuery::machine_ids(&s.live_view()))
            .into_iter()
            .flatten()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
        // Jobs span machines, so per-shard job lists can overlap: dedup
        // after the merge.
        let mut out: Vec<JobId> = self
            .fan_out(|s| s.live_view().jobs_running_at(t))
            .into_iter()
            .flatten()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
        let mut out: Vec<(JobId, TaskId, MachineId)> = self
            .fan_out(|s| s.live_view().running_triples_at(t))
            .into_iter()
            .flatten()
            .collect();
        out.sort_unstable();
        out
    }

    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
        self.shards[self.shard_of(machine)]
            .live_view()
            .alive_at(machine, t)
    }

    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
        self.shards[self.shard_of(machine)]
            .live_view()
            .util_at(machine, t)
    }

    fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.fan_out(|s| s.live_view().running_instance_count_at(t))
            .into_iter()
            .sum()
    }

    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries> {
        self.shards[self.shard_of(machine)]
            .live_view()
            .series_window(machine, metric, window)
    }

    fn machines_active_at(&self, t: Timestamp) -> Vec<MachineId> {
        let mut out: Vec<MachineId> = self
            .fan_out(|s| s.live_view().machines_active_at(t))
            .into_iter()
            .flatten()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The facade's version: the sum of the shard versions. Each accepted
    /// delivery bumps exactly one shard by exactly what the single monitor
    /// would bump, so the sum equals the single monitor's version over the
    /// same deliveries — and it is monotone under concurrent reads.
    fn state_version(&self) -> u64 {
        self.fan_out(|s| s.state_version()).into_iter().sum()
    }

    fn util_hold(&self, machine: MachineId, t: Timestamp) -> UtilHold {
        self.shards[self.shard_of(machine)]
            .live_view()
            .util_hold(machine, t)
    }

    fn anomaly_counts(&self, machines: &[MachineId]) -> Vec<u32> {
        let mut counts = vec![0u32; machines.len()];
        for alert in &self.ring.lock().alerts {
            if let Ok(i) = machines.binary_search(&alert.machine) {
                counts[i] = counts[i].saturating_add(1);
            }
        }
        counts
    }

    fn running_delta(&self, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        // Same-triple handoffs share a machine, hence a shard: every
        // cancellation already happened shard-locally, and the merged
        // sides are disjoint sorted sets.
        let deltas = self.fan_out(|s| s.live_view().running_delta(t0, t1));
        let mut entered = Vec::new();
        let mut exited = Vec::new();
        for d in deltas {
            entered.extend(d.entered);
            exited.extend(d.exited);
        }
        entered.sort_unstable();
        exited.sort_unstable();
        RunningDelta { entered, exited }
    }

    fn liveness_delta(&self, t0: Timestamp, t1: Timestamp) -> LivenessDelta {
        let deltas = self.fan_out(|s| s.live_view().liveness_delta(t0, t1));
        let mut activated = Vec::new();
        let mut deactivated = Vec::new();
        for d in deltas {
            activated.extend(d.activated);
            deactivated.extend(d.deactivated);
        }
        activated.sort_unstable();
        deactivated.sort_unstable();
        LivenessDelta {
            activated,
            deactivated,
        }
    }

    /// The one-version-cut capture: holds the epoch gate exclusively (no
    /// delivery — single-record or batch — is in flight anywhere), locks
    /// every shard, and answers the whole frame from that simultaneous
    /// cut. The frame's version is the summed shard version at the cut, so
    /// `(version, timestamp)` stays a sound memoization key.
    fn frame(&self, at: Timestamp) -> QueryFrame {
        let _gate = self.epoch_gate.write();
        let guards: Vec<_> = self.shards.iter().map(StreamMonitor::lock_inner).collect();
        let version: u64 = guards.iter().map(|g| g.state_version()).sum();
        let mut machines: Vec<MachineId> = guards.iter().flat_map(|g| g.machine_ids()).collect();
        machines.sort_unstable();
        machines.dedup();
        let alive = machines
            .iter()
            .map(|&m| guards[self.shard_of(m)].alive_at(m, at))
            .collect();
        let utils = machines
            .iter()
            .map(|&m| guards[self.shard_of(m)].util_at(m, at))
            .collect();
        let mut triples: Vec<(JobId, TaskId, MachineId)> = guards
            .iter()
            .flat_map(|g| g.running_triples_at(at))
            .collect();
        triples.sort_unstable();
        // Anomaly counts come from the global ring under the same gate:
        // the ring retains exactly the alerts the single monitor's buffer
        // would over the same deliveries, so the per-machine counts match
        // the single-monitor frame bit for bit.
        let mut anomalies = vec![0u32; machines.len()];
        for alert in &self.ring.lock().alerts {
            if let Ok(i) = machines.binary_search(&alert.machine) {
                anomalies[i] = anomalies[i].saturating_add(1);
            }
        }
        QueryFrame::with_anomalies(at, version, triples, machines, alive, utils, anomalies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::BatchSequencer;

    fn rec(machine: u32, t: i64, cpu: f64) -> ServerUsageRecord {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(cpu, 0.3, 0.3),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "batchlens-shard-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Recursively copies a WAL family directory (shard subdirs + files).
    fn copy_dir(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            let to = dst.join(entry.file_name());
            if entry.file_type().unwrap().is_dir() {
                copy_dir(&entry.path(), &to);
            } else {
                std::fs::copy(entry.path(), &to).unwrap();
            }
        }
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let err = ShardedMonitor::new(StreamConfig::default(), 0).unwrap_err();
        assert_eq!(err, StreamConfigError::ZeroShards);
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        let m = ShardedMonitor::new(StreamConfig::default(), 4).unwrap();
        let mut hit = [false; 4];
        for id in 0..256 {
            let s = m.shard_of(MachineId::new(id));
            assert!(s < 4);
            assert_eq!(s, m.shard_of(MachineId::new(id)), "routing is stable");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 ids must land in all 4 shards");
        // The layout is pinned: FNV-1a over the LE machine-id bytes. A
        // silent hash change would orphan every existing shard WAL family.
        assert_eq!(m.shard_of(MachineId::new(0)), 1);
        assert_eq!(m.shard_of(MachineId::new(1)), 0);
        assert_eq!(m.shard_of(MachineId::new(2)), 3);
    }

    #[test]
    fn one_shard_facade_matches_the_single_monitor() {
        let sharded = ShardedMonitor::new(StreamConfig::default(), 1).unwrap();
        let single = StreamMonitor::new(StreamConfig::default()).unwrap();
        for i in 0..50u32 {
            let r = rec(
                i % 5,
                i64::from(i) * 60,
                if i % 9 == 8 { 0.96 } else { 0.4 },
            );
            assert_eq!(sharded.ingest(r), single.ingest(r));
        }
        assert_eq!(sharded.state_version(), single.state_version());
        assert_eq!(sharded.peek_alerts(), single.peek_alerts());
        assert_eq!(sharded.next_alert_seq(), single.next_alert_seq());
        let t = Timestamp::new(1_500);
        assert_eq!(sharded.frame(t), single.live_view().frame(t));
    }

    #[test]
    fn torn_epoch_recovery_cuts_at_the_common_frontier() {
        let cfg = StreamConfig::default();
        let sequencer = BatchSequencer::new();
        let live = temp_dir("torn-live");
        let torn = temp_dir("torn-crash");

        let m = ShardedMonitor::new(cfg, 2).unwrap();
        m.attach_wal_family(&live, WalConfig::default()).unwrap();
        // Machines covering both shards.
        let covering: Vec<u32> = {
            let mut ids = vec![];
            let mut seen = [false; 2];
            for id in 0..16 {
                let s = m.shard_of(MachineId::new(id));
                if !seen[s] {
                    seen[s] = true;
                    ids.push(id);
                }
            }
            assert_eq!(ids.len(), 2);
            ids
        };
        let epoch1: Vec<ServerUsageRecord> = covering
            .iter()
            .flat_map(|&id| (0..10).map(move |k| rec(id, k * 60, 0.4)))
            .collect();
        m.ingest_batch(&sequencer.seal(Timestamp::new(600), epoch1.clone()));
        m.sync_wal();
        // Crash point: every shard sealed epoch 1. Snapshot the family.
        copy_dir(&live, &torn);

        let epoch2: Vec<ServerUsageRecord> = covering
            .iter()
            .flat_map(|&id| (10..20).map(move |k| rec(id, k * 60, 0.4)))
            .collect();
        m.ingest_batch(&sequencer.seal(Timestamp::new(1_200), epoch2));
        m.sync_wal();
        m.detach_wal_family();
        // Shard 0's log survived through epoch 2; shard 1's lost the tail
        // (the snapshot). The recovered state must NOT include epoch 2
        // anywhere — the cut is the highest epoch sealed *everywhere*.
        let ahead = ShardedMonitor::shard_wal_dir(&live, 0);
        let behind = ShardedMonitor::shard_wal_dir(&torn, 0);
        std::fs::remove_dir_all(&behind).unwrap();
        copy_dir(&ahead, &behind);

        let (r, report) = ShardedMonitor::recover(&torn, cfg, 2).unwrap();
        assert_eq!(report.epoch_cut, Some(1));
        assert!(
            report.records_beyond_cut > 0,
            "shard 0's epoch-2 tail was read but not applied"
        );
        // Reference: a fresh sharded monitor fed only epoch 1.
        let reference = ShardedMonitor::new(cfg, 2).unwrap();
        reference.ingest_batch(&BatchSequencer::new().seal(Timestamp::new(600), epoch1));
        assert_eq!(r.ingested(), reference.ingested());
        assert_eq!(r.state_version(), reference.state_version());
        let t = Timestamp::new(600);
        assert_eq!(r.frame(t), reference.frame(t));
        for &id in &covering {
            assert_eq!(
                r.shard(r.shard_of(MachineId::new(id))).sealed_epoch(),
                Some(1)
            );
        }
        std::fs::remove_dir_all(&live).ok();
        std::fs::remove_dir_all(&torn).ok();
    }

    #[test]
    fn wal_family_round_trips_across_shards() {
        let cfg = StreamConfig::default();
        let dir = temp_dir("family");
        let m = ShardedMonitor::new(cfg, 4).unwrap();
        m.attach_wal_family(&dir, WalConfig::default()).unwrap();
        for i in 0..80u32 {
            m.ingest(rec(
                i % 7,
                i64::from(i / 7) * 60,
                if i % 13 == 12 { 0.97 } else { 0.4 },
            ));
        }
        m.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(3),
            Timestamp::new(30),
        );
        m.instance_finished(JobId::new(1), TaskId::new(1), 0, Timestamp::new(300));
        assert_eq!(m.wal_errors(), 0);
        assert!(m.wal_healthy());
        assert_eq!(m.shard_wal_errors(), vec![0, 0, 0, 0]);
        m.detach_wal_family();
        for i in 0..4 {
            assert!(ShardedMonitor::shard_wal_dir(&dir, i).is_dir());
        }

        let (r, report) = ShardedMonitor::recover(&dir, cfg, 4).unwrap();
        assert_eq!(report.shards.len(), 4);
        assert!(report.shards.iter().all(|s| s.reason.is_clean()));
        // Non-batch workload: no epoch frontier, full per-shard replay.
        assert_eq!(report.epoch_cut, None);
        assert_eq!(report.records_beyond_cut, 0);
        assert_eq!(r.ingested(), m.ingested());
        assert_eq!(r.live_instances(), m.live_instances());
        assert_eq!(r.state_version(), m.state_version());
        assert_eq!(r.total_alerts(), m.total_alerts());
        let t = Timestamp::new(400);
        assert_eq!(r.frame(t), m.frame(t));
        std::fs::remove_dir_all(&dir).ok();
    }
}
