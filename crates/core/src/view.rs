//! The view state: the mutable UI state a user builds up through
//! interactions, kept separate from the immutable dataset.

use batchlens_trace::{JobId, MachineId, Metric, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

/// Which metric the detail line charts plot.
pub type DetailMetric = Metric;

/// The complete interactive state of a BatchLens session.
///
/// `ViewState` is plain serializable data; [`crate::interaction`] mutates it
/// through a reducer, and [`crate::app::BatchLens`] renders from it. Nothing
/// here borrows the dataset, so a view can be saved, diffed or replayed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewState {
    /// The chosen snapshot timestamp (the bubble chart's "now").
    selected_timestamp: Timestamp,
    /// The full time extent available for brushing.
    extent: TimeRange,
    /// The active brush selection, if any.
    brush: Option<TimeRange>,
    /// The selected job (drives the detail line charts).
    selected_job: Option<JobId>,
    /// The hovered machine (drives co-allocation link highlighting).
    hovered_machine: Option<MachineId>,
    /// The detail-chart metric.
    detail_metric: DetailMetric,
    /// Jobs explicitly pinned into the detail sidebar.
    pinned_jobs: Vec<JobId>,
    /// Whether the detail views overlay detector anomaly spans.
    show_anomalies: bool,
}

impl ViewState {
    /// A fresh view over `extent`, snapped to its start.
    pub fn new(extent: TimeRange) -> Self {
        ViewState {
            selected_timestamp: extent.start(),
            extent,
            brush: None,
            selected_job: None,
            hovered_machine: None,
            detail_metric: Metric::Cpu,
            pinned_jobs: Vec::new(),
            show_anomalies: false,
        }
    }

    /// The snapshot timestamp.
    pub fn selected_timestamp(&self) -> Timestamp {
        self.selected_timestamp
    }

    /// The brushable extent.
    pub fn extent(&self) -> TimeRange {
        self.extent
    }

    /// The active brush selection, if any.
    pub fn brush(&self) -> Option<TimeRange> {
        self.brush
    }

    /// The window the detail view should display: the brush if active,
    /// otherwise the full extent.
    pub fn effective_window(&self) -> TimeRange {
        self.brush.unwrap_or(self.extent)
    }

    /// The selected job.
    pub fn selected_job(&self) -> Option<JobId> {
        self.selected_job
    }

    /// The hovered machine.
    pub fn hovered_machine(&self) -> Option<MachineId> {
        self.hovered_machine
    }

    /// The detail-chart metric.
    pub fn detail_metric(&self) -> DetailMetric {
        self.detail_metric
    }

    /// Pinned jobs in pin order.
    pub fn pinned_jobs(&self) -> &[JobId] {
        &self.pinned_jobs
    }

    /// Whether detector anomaly spans are overlaid on the detail views.
    pub fn show_anomalies(&self) -> bool {
        self.show_anomalies
    }

    // --- mutators used by the reducer ---

    pub(crate) fn set_timestamp(&mut self, t: Timestamp) {
        self.selected_timestamp = self.extent.clamp(t);
    }

    pub(crate) fn set_brush(&mut self, window: Option<TimeRange>) {
        self.brush = window
            .and_then(|w| w.intersect(&self.extent))
            .filter(|w| !w.is_empty());
    }

    pub(crate) fn set_job(&mut self, job: Option<JobId>) {
        self.selected_job = job;
    }

    pub(crate) fn set_hover(&mut self, machine: Option<MachineId>) {
        self.hovered_machine = machine;
    }

    pub(crate) fn set_metric(&mut self, metric: DetailMetric) {
        self.detail_metric = metric;
    }

    pub(crate) fn toggle_anomalies(&mut self) {
        self.show_anomalies = !self.show_anomalies;
    }

    pub(crate) fn toggle_pin(&mut self, job: JobId) {
        if let Some(pos) = self.pinned_jobs.iter().position(|&j| j == job) {
            self.pinned_jobs.remove(pos);
        } else {
            self.pinned_jobs.push(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> TimeRange {
        TimeRange::new(Timestamp::new(0), Timestamp::new(86400)).unwrap()
    }

    #[test]
    fn new_view_snaps_to_extent_start() {
        let v = ViewState::new(extent());
        assert_eq!(v.selected_timestamp(), Timestamp::new(0));
        assert!(v.brush().is_none());
        assert_eq!(v.effective_window(), extent());
        assert_eq!(v.detail_metric(), Metric::Cpu);
    }

    #[test]
    fn timestamp_is_clamped() {
        let mut v = ViewState::new(extent());
        v.set_timestamp(Timestamp::new(999_999));
        assert_eq!(v.selected_timestamp(), Timestamp::new(86400));
        v.set_timestamp(Timestamp::new(-50));
        assert_eq!(v.selected_timestamp(), Timestamp::new(0));
    }

    #[test]
    fn brush_is_intersected_with_extent() {
        let mut v = ViewState::new(extent());
        v.set_brush(Some(
            TimeRange::new(Timestamp::new(-100), Timestamp::new(200)).unwrap(),
        ));
        assert_eq!(v.brush().unwrap().start(), Timestamp::new(0));
        assert_eq!(v.effective_window().end(), Timestamp::new(200));
        // A disjoint brush is ignored.
        v.set_brush(Some(
            TimeRange::new(Timestamp::new(200_000), Timestamp::new(300_000)).unwrap(),
        ));
        assert!(v.brush().is_none());
        // Empty brush is ignored.
        v.set_brush(Some(
            TimeRange::new(Timestamp::new(10), Timestamp::new(10)).unwrap(),
        ));
        assert!(v.brush().is_none());
    }

    #[test]
    fn pins_toggle() {
        let mut v = ViewState::new(extent());
        v.toggle_pin(JobId::new(1));
        v.toggle_pin(JobId::new(2));
        assert_eq!(v.pinned_jobs(), &[JobId::new(1), JobId::new(2)]);
        v.toggle_pin(JobId::new(1));
        assert_eq!(v.pinned_jobs(), &[JobId::new(2)]);
    }

    #[test]
    fn serializes_round_trip() {
        let mut v = ViewState::new(extent());
        v.set_job(Some(JobId::new(7)));
        v.set_metric(Metric::Memory);
        let json = serde_json::to_string(&v).unwrap();
        let back: ViewState = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
