//! Session persistence and interaction logging.
//!
//! A BatchLens session can be serialized to JSON and replayed: the recorded
//! interaction log plus the view extent reconstruct the exact view state
//! deterministically. This supports the paper's workflow of users attaching
//! "more detailed information to system administrators when submitting
//! tickets" — the session log *is* that information.

use batchlens_trace::TimeRange;
use serde::{Deserialize, Serialize};

use crate::interaction::{reduce, Event, Interaction};
use crate::view::ViewState;

/// A serializable recording of an interactive session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    /// The brushable extent the session opened with.
    pub extent: TimeRange,
    /// The ordered interaction log.
    pub interactions: Vec<Interaction>,
}

impl SessionLog {
    /// Starts an empty log over `extent`.
    pub fn new(extent: TimeRange) -> Self {
        SessionLog {
            extent,
            interactions: Vec::new(),
        }
    }

    /// Appends an event with the next sequence number.
    pub fn record(&mut self, event: Event) -> &mut Self {
        let seq = self.interactions.len() as u64;
        self.interactions.push(Interaction { seq, event });
        self
    }

    /// Number of recorded interactions.
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Reconstructs the final view state by replaying the log.
    pub fn replay(&self) -> ViewState {
        let mut state = ViewState::new(self.extent);
        for interaction in &self.interactions {
            reduce(&mut state, interaction.event);
        }
        state
    }

    /// Replays the first `n` interactions (for scrubbing / debugging).
    pub fn replay_prefix(&self, n: usize) -> ViewState {
        let mut state = ViewState::new(self.extent);
        for interaction in self.interactions.iter().take(n) {
            reduce(&mut state, interaction.event);
        }
        state
    }

    /// Serializes the log to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (it should not
    /// for this plain-data type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a log from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<SessionLog, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{JobId, Metric, Timestamp};

    fn extent() -> TimeRange {
        TimeRange::new(Timestamp::new(0), Timestamp::new(86400)).unwrap()
    }

    #[test]
    fn record_assigns_sequence_numbers() {
        let mut log = SessionLog::new(extent());
        log.record(Event::SelectTimestamp(Timestamp::new(100)))
            .record(Event::SelectJob(JobId::new(7)));
        assert_eq!(log.len(), 2);
        assert_eq!(log.interactions[0].seq, 0);
        assert_eq!(log.interactions[1].seq, 1);
    }

    #[test]
    fn replay_reconstructs_state() {
        let mut log = SessionLog::new(extent());
        log.record(Event::SelectTimestamp(Timestamp::new(46200)))
            .record(Event::SelectJob(JobId::new(7901)))
            .record(Event::SetDetailMetric(Metric::Memory));
        let state = log.replay();
        assert_eq!(state.selected_timestamp(), Timestamp::new(46200));
        assert_eq!(state.selected_job(), Some(JobId::new(7901)));
        assert_eq!(state.detail_metric(), Metric::Memory);
    }

    #[test]
    fn prefix_replay_scrubs() {
        let mut log = SessionLog::new(extent());
        log.record(Event::SelectJob(JobId::new(1)))
            .record(Event::SelectJob(JobId::new(2)));
        assert_eq!(log.replay_prefix(1).selected_job(), Some(JobId::new(1)));
        assert_eq!(log.replay_prefix(2).selected_job(), Some(JobId::new(2)));
        assert_eq!(log.replay_prefix(0).selected_job(), None);
    }

    #[test]
    fn json_round_trip() {
        let mut log = SessionLog::new(extent());
        log.record(Event::SelectTimestamp(Timestamp::new(43800)))
            .record(Event::BrushTime(
                TimeRange::new(Timestamp::new(40000), Timestamp::new(45000)).unwrap(),
            ));
        let json = log.to_json().unwrap();
        let back = SessionLog::from_json(&json).unwrap();
        assert_eq!(log, back);
        assert_eq!(back.replay(), log.replay());
    }

    #[test]
    fn empty_log() {
        let log = SessionLog::new(extent());
        assert!(log.is_empty());
        assert_eq!(log.replay(), ViewState::new(extent()));
    }
}
