//! Guided analysis: automatically discover the interesting moments in a
//! trace and narrate them.
//!
//! A human analyst using BatchLens scrubs the timeline looking for regime
//! changes and anomaly onsets. [`GuidedTour`] does that scan programmatically:
//! it samples the batch grid, finds where the cluster regime shifts or an
//! anomaly is first diagnosed, and produces an ordered list of
//! [`TourStop`]s — each a timestamp worth opening the dashboard at, with a
//! one-line reason. It turns the interactive tool into a self-driving report.

use batchlens_analytics::compare::{RegimeBand, RegimeSummary, SnapshotDiff};
use batchlens_analytics::rootcause::{RootCauseAnalyzer, Verdict};
use batchlens_trace::{JobId, TimeDelta, Timestamp, TraceDataset};
use serde::{Deserialize, Serialize};

/// Why a timestamp was flagged as worth examining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StopReason {
    /// The cluster regime band changed (e.g. Low → High).
    RegimeChange {
        /// Previous band.
        from: RegimeBand,
        /// New band.
        to: RegimeBand,
    },
    /// A sharp load escalation without a band change.
    LoadSpike {
        /// Change in mean utilization (fraction points).
        delta: f64,
    },
    /// A sharp load collapse (e.g. the mass shutdown).
    LoadCollapse {
        /// Change in mean utilization (negative).
        delta: f64,
    },
    /// An anomalous job was first diagnosed here.
    AnomalyOnset {
        /// The job.
        job: JobId,
        /// Its verdict.
        verdict: Verdict,
    },
}

/// One stop on a guided tour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TourStop {
    /// When to look.
    pub at: Timestamp,
    /// Why.
    pub reason: StopReason,
    /// A human-readable one-liner.
    pub note: String,
}

/// Discovers tour stops over a dataset.
#[derive(Debug, Clone, Copy)]
pub struct GuidedTour {
    /// Sampling step across the trace.
    pub step: TimeDelta,
    /// Mean-utilization change (fraction points) counting as a spike/collapse.
    pub load_threshold: f64,
    analyzer: RootCauseAnalyzer,
}

impl GuidedTour {
    /// A tour sampling the 300 s batch grid with a 0.15 load threshold.
    pub fn new() -> Self {
        GuidedTour {
            step: TimeDelta::BATCH_RESOLUTION,
            load_threshold: 0.15,
            analyzer: RootCauseAnalyzer::new(),
        }
    }

    /// Sets the sampling step (builder).
    #[must_use]
    pub fn step(mut self, step: TimeDelta) -> Self {
        if step.is_positive() {
            self.step = step;
        }
        self
    }

    /// Computes the ordered list of interesting stops.
    pub fn discover(&self, ds: &TraceDataset) -> Vec<TourStop> {
        let Some(span) = ds.span() else {
            return Vec::new();
        };
        let times: Vec<Timestamp> = span
            .steps(self.step)
            .filter(|&t| !ds.jobs_running_at(t).is_empty())
            .collect();
        if times.is_empty() {
            return Vec::new();
        }

        let mut stops = Vec::new();
        let mut prev_band: Option<RegimeBand> = None;
        let mut seen_anomalies: std::collections::BTreeSet<JobId> =
            std::collections::BTreeSet::new();

        for w in times.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            let summary = RegimeSummary::at(ds, t1);
            let band = summary.band();

            // Regime band change.
            if let Some(pb) = prev_band {
                if pb != band {
                    stops.push(TourStop {
                        at: t1,
                        reason: StopReason::RegimeChange { from: pb, to: band },
                        note: format!(
                            "regime shifts {pb:?} → {band:?} (mean {:.0}%)",
                            summary.mean * 100.0
                        ),
                    });
                }
            }
            prev_band = Some(band);

            // Load spike / collapse.
            let diff = SnapshotDiff::between(ds, t0, t1);
            if diff.escalated(self.load_threshold) {
                stops.push(TourStop {
                    at: t1,
                    reason: StopReason::LoadSpike {
                        delta: diff.delta_mean,
                    },
                    note: format!("load spikes +{:.0} pts", diff.delta_mean * 100.0),
                });
            } else if diff.collapsed(self.load_threshold) {
                stops.push(TourStop {
                    at: t1,
                    reason: StopReason::LoadCollapse {
                        delta: diff.delta_mean,
                    },
                    note: format!("load collapses {:.0} pts", diff.delta_mean * 100.0),
                });
            }

            // Anomaly onset (first time a job is diagnosed anomalous).
            for d in self.analyzer.analyze(ds, t1) {
                if d.verdict != Verdict::Healthy && seen_anomalies.insert(d.job) {
                    stops.push(TourStop {
                        at: t1,
                        reason: StopReason::AnomalyOnset {
                            job: d.job,
                            verdict: d.verdict,
                        },
                        note: d.summary,
                    });
                }
            }
        }
        // The first active timestamp is always a stop (the "overview").
        stops.insert(
            0,
            TourStop {
                at: times[0],
                reason: StopReason::RegimeChange {
                    from: RegimeBand::Low,
                    to: RegimeSummary::at(ds, times[0]).band(),
                },
                note: "first activity on the cluster".into(),
            },
        );
        stops
    }

    /// Renders the tour as a plain-text itinerary.
    pub fn narrate(&self, ds: &TraceDataset) -> String {
        let stops = self.discover(ds);
        let mut out = format!("Guided tour: {} stop(s)\n", stops.len());
        for (i, stop) in stops.iter().enumerate() {
            out.push_str(&format!("{:>2}. {} — {}\n", i + 1, stop.at, stop.note));
        }
        out
    }
}

impl Default for GuidedTour {
    fn default() -> Self {
        GuidedTour::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn tour_finds_the_paper_day_highlights() {
        // A smaller cluster and a coarser step keep the full-day scan fast
        // while still surfacing the anomalies and the shutdown collapse.
        let ds = scenario::paper_day_with_machines(7, 32).run().unwrap();
        let tour = GuidedTour::new().step(TimeDelta::minutes(20));
        let stops = tour.discover(&ds);
        assert!(!stops.is_empty());

        // The thrashing and spike anomalies should be discovered.
        let anomaly_jobs: Vec<JobId> = stops
            .iter()
            .filter_map(|s| match &s.reason {
                StopReason::AnomalyOnset { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert!(
            anomaly_jobs.contains(&scenario::JOB_11939),
            "thrashing not discovered"
        );

        // A load collapse around the mass shutdown should appear.
        assert!(stops
            .iter()
            .any(|s| matches!(s.reason, StopReason::LoadCollapse { .. })));
    }

    #[test]
    fn narrate_is_nonempty_and_ordered() {
        let ds = scenario::fig3c(1).run().unwrap();
        let text = GuidedTour::new().narrate(&ds);
        assert!(text.contains("Guided tour"));
        // Stops are listed in time order.
        let stops = GuidedTour::new().discover(&ds);
        for w in stops.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn empty_dataset_has_no_stops() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        assert!(GuidedTour::new().discover(&ds).is_empty());
    }

    #[test]
    fn step_builder_guards_nonpositive() {
        let t = GuidedTour::new().step(TimeDelta::ZERO);
        assert!(t.step.is_positive());
    }

    #[test]
    fn anomaly_onset_reported_once_per_job() {
        let ds = scenario::fig3c(2).run().unwrap();
        let stops = GuidedTour::new().discover(&ds);
        let mut seen = std::collections::BTreeSet::new();
        for s in &stops {
            if let StopReason::AnomalyOnset { job, .. } = s.reason {
                assert!(seen.insert(job), "{job} reported twice");
            }
        }
    }
}
