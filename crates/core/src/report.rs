//! Textual case-study reports: the programmatic narrative that mirrors the
//! paper's Section IV analysis of a snapshot.

use batchlens_analytics::compare::RegimeSummary;
use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_analytics::rootcause::{render_report, RootCauseAnalyzer};
use batchlens_trace::{Timestamp, TraceDataset};

/// Builds a full case-study report for `ds` at `at`: the regime summary, the
/// hierarchy overview and the root-cause diagnoses.
pub fn case_study_report(ds: &TraceDataset, at: Timestamp) -> String {
    let regime = RegimeSummary::at(ds, at);
    let snapshot = HierarchySnapshot::at(ds, at);
    let analyzer = RootCauseAnalyzer::new();
    let diagnoses = analyzer.analyze(ds, at);

    let mut out = String::new();
    out.push_str(&format!("=== BatchLens case study @ {at} ===\n"));
    out.push_str(&format!(
        "regime: {:?} — mean utilization {:.1}% (cpu {:.1}%, mem {:.1}%, disk {:.1}%)\n",
        regime.band(),
        regime.mean * 100.0,
        regime.mean_cpu * 100.0,
        regime.mean_mem * 100.0,
        regime.mean_disk * 100.0,
    ));
    out.push_str(&format!(
        "{} job(s) running on {} machine(s); {:.0}% of machines saturated\n\n",
        snapshot.jobs.len(),
        regime.machines,
        regime.saturated_fraction * 100.0,
    ));

    // Lowest-utilization job (the paper's "job_8124 has the lowest
    // utilization" observation).
    if let Some((job, Some(util))) = snapshot.jobs_by_mean_util().into_iter().next() {
        out.push_str(&format!(
            "lowest-utilization job: {job} (mean {:.1}%)\n\n",
            util.mean().percent()
        ));
    }

    out.push_str(&render_report(at, &diagnoses));
    out
}

/// A compact one-line regime banner, for interactive status lines.
pub fn regime_banner(ds: &TraceDataset, at: Timestamp) -> String {
    let regime = RegimeSummary::at(ds, at);
    format!(
        "{at}: {:?} regime, mean {:.0}% util, {} jobs",
        regime.band(),
        regime.mean * 100.0,
        HierarchySnapshot::at(ds, at).jobs.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn report_covers_all_sections() {
        let ds = scenario::fig3c(1).run().unwrap();
        let report = case_study_report(&ds, scenario::T_FIG3C);
        assert!(report.contains("case study @"));
        assert!(report.contains("regime:"));
        assert!(report.contains("root-cause report"));
        assert!(report.contains("thrashing"));
    }

    #[test]
    fn report_names_lowest_util_job_in_healthy_regime() {
        let ds = scenario::fig3a(2).run().unwrap();
        let report = case_study_report(&ds, scenario::T_FIG3A);
        assert!(report.contains("lowest-utilization job: job_8124"));
    }

    #[test]
    fn banner_is_one_line() {
        let ds = scenario::fig3b(3).run().unwrap();
        let banner = regime_banner(&ds, scenario::T_FIG3B);
        assert_eq!(banner.lines().count(), 1);
        assert!(banner.contains("regime"));
    }
}
