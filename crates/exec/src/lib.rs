//! # batchlens-exec
//!
//! The parallel execution layer behind BatchLens' cluster-wide hot paths
//! (dataset build, timeline aggregation, detector fan-out).
//!
//! The model is a **scoped work-stealing pool**: every parallel call spawns
//! its workers inside [`std::thread::scope`] (so borrowed data flows in
//! without `'static` bounds or `Arc`s), distributes work items through the
//! `crossbeam` injector/deque surface, and joins before returning — no
//! global pool, no detached threads, no shutdown protocol.
//!
//! ## Determinism contract
//!
//! Every function here returns results **in input order**, regardless of
//! which worker computed what or in what order items finished. Callers that
//! keep their per-item closures free of shared mutable state therefore get
//! results bit-identical to a serial loop at any thread count — the
//! guarantee the `parallel == serial` differential proptests in
//! `tests/tests/parallel_differential.rs` enforce for the dataset builder,
//! the timeline sweeps and batch detection.
//!
//! ## Thread-count policy
//!
//! `threads <= 1` (or fewer than two items) is the **serial fallback**: the
//! closure runs on the calling thread, no worker is spawned, no lock is
//! touched. [`default_threads`] resolves the process-wide default: the
//! `BATCHLENS_THREADS` environment variable when set, otherwise
//! [`std::thread::available_parallelism`].
//!
//! ## Complexity / thread-safety
//!
//! * [`par_map`] / [`run_indexed`]: O(n) work items claimed in batches from
//!   a [`crossbeam::deque::Injector`]; per-item overhead is one queue pop
//!   plus one channel send. Worth it for items costing ≳ a few µs.
//! * [`try_par_map`] / [`try_run_indexed`]: same, with fail-fast
//!   cancellation; the returned error is the one with the **lowest item
//!   index** (not the first observed), so error reporting is deterministic
//!   too.
//! * All functions require `F: Sync` (shared by workers) and item results
//!   `Send`. Worker panics propagate to the caller when the scope joins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// One claim attempt: the worker's own queue first, then a batch from the
/// global injector, then a steal from a sibling's queue. Returning `None`
/// means every queue was observed empty — and since work items never spawn
/// new items, whatever remains is already being executed, so the worker can
/// exit. Peer stealing is what keeps the pool balanced when one worker
/// batch-claims more than its share of a small fan-out.
fn claim_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    my_idx: usize,
    stealers: &[Stealer<usize>],
) -> Option<usize> {
    if let Some(i) = local.pop() {
        return Some(i);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(i) => return Some(i),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    stealers
        .iter()
        .enumerate()
        .filter(|(k, _)| *k != my_idx)
        .find_map(|(_, s)| s.steal().success())
}

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "BATCHLENS_THREADS";

/// The process-wide default worker count: `BATCHLENS_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1). Resolved once and cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves a caller-supplied thread knob: `0` means "use the process
/// default", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Runs `f(0..n)` across `threads` scoped workers and returns the results
/// **in index order**.
///
/// The serial fallback (`threads <= 1` or `n <= 1`) runs `f` on the calling
/// thread. Work items are claimed in batches from a work-stealing injector,
/// so uneven per-item cost balances automatically.
///
/// # Panics
///
/// A panic inside `f` on any worker propagates to the caller.
pub fn run_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let injector: Injector<usize> = Injector::new();
    for i in 0..n {
        injector.push(i);
    }
    let (tx, rx) = channel::bounded::<(usize, R)>(n);
    let workers = threads.min(n);
    let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
    std::thread::scope(|scope| {
        for (my_idx, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some(i) = claim_task(&local, injector, my_idx, stealers) {
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx.iter() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly one result"))
            .collect()
    })
}

/// Fallible [`run_indexed`]: runs `f(0..n)` across `threads` workers,
/// returning all results in index order or the error of the **lowest
/// failing index**.
///
/// Workers observe a shared cancellation flag and stop claiming new items
/// once any item has failed, so a failing build doesn't finish the whole
/// fan-out first. Errors are surfaced as `Err` — never as a worker panic —
/// which is what lets `TraceDatasetBuilder::build` report validation
/// failures identically at every thread count.
pub fn try_run_indexed<R, E, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let injector: Injector<usize> = Injector::new();
    for i in 0..n {
        injector.push(i);
    }
    let failed = AtomicBool::new(false);
    let (tx, rx) = channel::bounded::<(usize, Result<R, E>)>(n);
    let workers = threads.min(n);
    let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
    std::thread::scope(|scope| {
        for (my_idx, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let f = &f;
            let failed = &failed;
            let tx = tx.clone();
            scope.spawn(move || {
                while !failed.load(Ordering::Relaxed) {
                    let Some(i) = claim_task(&local, injector, my_idx, stealers) else {
                        break;
                    };
                    let r = f(i);
                    if r.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, E)> = None;
        for (i, r) in rx.iter() {
            match r {
                Ok(v) => slots[i] = Some(v),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        let Some((err_idx, err)) = first_err else {
            return Ok(slots
                .into_iter()
                .map(|s| s.expect("every index produced exactly one result"))
                .collect());
        };
        // Deterministic error selection: cancellation may have skipped items
        // below the lowest observed failure, so check them serially — the
        // returned error is always the first one in index order, exactly as
        // the serial fallback reports it.
        for (i, slot) in slots.iter().enumerate().take(err_idx) {
            if slot.is_none() {
                f(i)?;
            }
        }
        Err(err)
    })
}

/// Runs `f(0..workers)` on exactly `workers` dedicated scoped threads —
/// one invocation per thread — and returns the results in worker order.
///
/// Unlike [`run_indexed`] (work items claimed from a shared queue, any
/// worker may run any number of items) this primitive pins each index to
/// its own thread for the call's whole lifetime, which is what a server
/// needs for **long-running loops**: an accept loop plus N connection
/// workers, each alive until a shutdown flag flips. Work-stealing would be
/// wrong there — a thread that batch-claimed two loops would run them
/// sequentially and the second loop would never start.
///
/// `workers == 0` is treated as 1; `workers <= 1` is the serial fallback
/// (runs `f(0)` on the calling thread). Worker panics propagate when the
/// scope joins.
pub fn run_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let f = &f;
                scope.spawn(move || f(i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(threads, items.len(), |i| f(&items[i]))
}

/// Fallible [`par_map`]: first error (by input index) wins.
///
/// # Errors
///
/// Returns the error produced by the lowest-index failing item.
pub fn try_par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_run_indexed(threads, items.len(), |i| f(&items[i]))
}

/// Splits `n` items into fixed-size chunks of `chunk` and returns the
/// `(start, end)` ranges. The chunk graph depends only on `n` and `chunk` —
/// never on the thread count — which is what keeps chunk-merged reductions
/// bit-identical at every pool size.
pub fn fixed_chunks(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1usize, 2, 7] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<i64> = (0..57).collect();
        let serial: Vec<i64> = items.iter().map(|&x| x * 3 - 1).collect();
        for threads in [1usize, 2, 7] {
            assert_eq!(par_map(threads, &items, |&x| x * 3 - 1), serial);
        }
    }

    #[test]
    fn try_run_reports_lowest_index_error() {
        for threads in [1usize, 2, 7] {
            let r: Result<Vec<usize>, usize> =
                try_run_indexed(threads, 50, |i| if i % 13 == 4 { Err(i) } else { Ok(i) });
            assert_eq!(r.unwrap_err(), 4, "threads={threads}");
        }
    }

    #[test]
    fn try_run_ok_when_all_succeed() {
        let r: Result<Vec<usize>, ()> = try_run_indexed(3, 20, Ok);
        assert_eq!(r.unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 1), vec![1]);
        let r: Result<Vec<usize>, ()> = try_run_indexed(4, 0, Ok);
        assert!(r.unwrap().is_empty());
    }

    #[test]
    fn fixed_chunks_cover_exactly() {
        assert_eq!(fixed_chunks(0, 8), Vec::<(usize, usize)>::new());
        assert_eq!(fixed_chunks(5, 8), vec![(0, 5)]);
        assert_eq!(fixed_chunks(17, 8), vec![(0, 8), (8, 16), (16, 17)]);
        // Chunk graph is independent of thread count by construction: the
        // function doesn't take one.
    }

    #[test]
    fn resolve_threads_zero_is_default() {
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn run_workers_pins_one_invocation_per_thread() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Every index runs concurrently: each worker waits until all have
        // started, which can only succeed if no thread runs two loops.
        let started = AtomicUsize::new(0);
        let out = run_workers(4, |i| {
            started.fetch_add(1, Ordering::SeqCst);
            while started.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Serial fallback and zero-normalization.
        assert_eq!(run_workers(1, |i| i), vec![0]);
        assert_eq!(run_workers(0, |i| i + 7), vec![7]);
    }

    #[test]
    fn borrowed_data_flows_into_workers() {
        // The scoped pool accepts non-'static borrows.
        let data: Vec<String> = (0..40).map(|i| format!("s{i}")).collect();
        let lens = par_map(4, &data, |s| s.len());
        assert_eq!(
            lens.iter().sum::<usize>(),
            data.iter().map(|s| s.len()).sum()
        );
    }
}
