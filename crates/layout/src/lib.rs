//! # batchlens-layout
//!
//! Visualization layout algorithms for BatchLens, implemented from scratch
//! (the paper's prototype used D3.js; this crate is the Rust equivalent of
//! the parts of D3 it relied on, with identical algorithmic behaviour):
//!
//! * [`geometry`] — points, circles, rectangles.
//! * [`enclose`] — Welzl-style smallest enclosing circle of circles
//!   (`d3.packEnclose`).
//! * [`pack`] — front-chain circle packing (`d3.packSiblings`) and the
//!   hierarchical pack layout with padding that produces the paper's
//!   three-level bubble nesting.
//! * [`scale`] — linear scales with "nice" tick generation (`d3.scaleLinear`).
//! * [`color`] — RGBA colors, the utilization colormap of Fig 1's legend and
//!   the categorical task palette of the detail line charts.
//! * [`line`] — polyline simplification: largest-triangle-three-buckets and
//!   Douglas–Peucker, for drawing day-long series at screen resolution.
//! * [`brush`] — the 1-D brush model behind "selecting the time range via
//!   brushing".
//! * [`annotation`] — 1-D clustering of annotation-line positions (the
//!   paper's "lines bundling into one cluster" observation, made
//!   computable).
//!
//! The crate is deliberately dependency-light (no trace types): everything
//! operates on `f64`, and callers map timestamps/utilizations in and out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotation;
pub mod brush;
pub mod color;
pub mod enclose;
pub mod geometry;
pub mod line;
pub mod pack;
pub mod scale;

pub use brush::Brush;
pub use color::Color;
pub use enclose::enclose;
pub use geometry::{Circle, Point, Rect};
pub use pack::{pack_siblings, PackNode};
pub use scale::LinearScale;
