//! Polyline simplification for drawing long series at screen resolution.
//!
//! A 24-hour trace at 60 s resolution is 1440 points per line and the Fig 3
//! views draw dozens of lines; the paper's D3 frontend relies on the browser
//! for this, we downsample explicitly. Two standard algorithms:
//!
//! * [`lttb`] — largest-triangle-three-buckets, the de-facto standard for
//!   time-series *visual* downsampling (preserves spikes and valleys, which
//!   is exactly what anomaly inspection needs);
//! * [`douglas_peucker`] — tolerance-driven shape simplification, better
//!   when an error bound matters more than a point budget.

/// Downsamples `points` (x ascending) to at most `threshold` points using
/// largest-triangle-three-buckets. The first and last points are always
/// kept. A `threshold < 3` or an input already small enough is returned
/// unchanged.
pub fn lttb(points: &[(f64, f64)], threshold: usize) -> Vec<(f64, f64)> {
    let n = points.len();
    if threshold >= n || threshold < 3 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(threshold);
    out.push(points[0]);

    // Bucket size excluding the two endpoints.
    let every = (n - 2) as f64 / (threshold - 2) as f64;
    let mut a = 0usize; // index of the previously selected point

    for i in 0..threshold - 2 {
        // Average of the next bucket — the "third point" of the triangle.
        let avg_start = ((i as f64 + 1.0) * every) as usize + 1;
        let avg_end = (((i as f64 + 2.0) * every) as usize + 1).min(n);
        let len = (avg_end - avg_start).max(1) as f64;
        let (mut avg_x, mut avg_y) = (0.0, 0.0);
        for p in &points[avg_start.min(n - 1)..avg_end] {
            avg_x += p.0;
            avg_y += p.1;
        }
        avg_x /= len;
        avg_y /= len;

        // Current bucket: pick the point forming the largest triangle with
        // the previous selection and the next bucket's average.
        let range_start = (i as f64 * every) as usize + 1;
        let range_end = (((i as f64 + 1.0) * every) as usize + 1).min(n - 1);
        let (ax, ay) = points[a];
        let mut best = range_start;
        let mut best_area = -1.0f64;
        for (j, p) in points[range_start..range_end].iter().enumerate() {
            let area = ((ax - avg_x) * (p.1 - ay) - (ax - p.0) * (avg_y - ay)).abs();
            if area > best_area {
                best_area = area;
                best = range_start + j;
            }
        }
        out.push(points[best]);
        a = best;
    }

    out.push(points[n - 1]);
    out
}

/// Simplifies a polyline with the Douglas–Peucker algorithm: removes points
/// whose perpendicular distance to the local chord is below `epsilon`.
/// Endpoints are always kept.
pub fn douglas_peucker(points: &[(f64, f64)], epsilon: f64) -> Vec<(f64, f64)> {
    if points.len() < 3 || epsilon <= 0.0 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    dp_recurse(points, 0, points.len() - 1, epsilon, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

#[allow(clippy::needless_range_loop)] // indexing two parallel arrays by i
fn dp_recurse(points: &[(f64, f64)], lo: usize, hi: usize, epsilon: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (x0, y0) = points[lo];
    let (x1, y1) = points[hi];
    let dx = x1 - x0;
    let dy = y1 - y0;
    let len = dx.hypot(dy).max(f64::EPSILON);
    let mut worst = lo;
    let mut worst_d = -1.0f64;
    for i in lo + 1..hi {
        let (px, py) = points[i];
        let d = ((px - x0) * dy - (py - y0) * dx).abs() / len;
        if d > worst_d {
            worst_d = d;
            worst = i;
        }
    }
    if worst_d > epsilon {
        keep[worst] = true;
        dp_recurse(points, lo, worst, epsilon, keep);
        dp_recurse(points, worst, hi, epsilon, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_wave(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                // Flat with a single tall spike at 70 % through.
                let y = if i == n * 7 / 10 {
                    10.0
                } else {
                    (x * 0.1).sin() * 0.5
                };
                (x, y)
            })
            .collect()
    }

    #[test]
    fn lttb_respects_budget_and_endpoints() {
        let pts = spike_wave(1440);
        let out = lttb(&pts, 100);
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], pts[0]);
        assert_eq!(*out.last().unwrap(), *pts.last().unwrap());
        // x stays ascending.
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn lttb_preserves_the_spike() {
        let pts = spike_wave(1440);
        let spike = pts[1440 * 7 / 10];
        let out = lttb(&pts, 50);
        assert!(
            out.iter().any(|p| (p.1 - spike.1).abs() < 1e-9),
            "spike lost in downsampling"
        );
    }

    #[test]
    fn lttb_small_inputs_pass_through() {
        let pts = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(lttb(&pts, 100), pts);
        assert_eq!(lttb(&pts, 2), pts);
        assert!(lttb(&[], 10).is_empty());
    }

    #[test]
    fn douglas_peucker_collapses_straight_lines() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let out = douglas_peucker(&pts, 0.01);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], pts[0]);
        assert_eq!(out[1], *pts.last().unwrap());
    }

    #[test]
    fn douglas_peucker_keeps_corners() {
        let pts = vec![(0.0, 0.0), (5.0, 0.0), (5.0, 5.0), (10.0, 5.0)];
        let out = douglas_peucker(&pts, 0.1);
        assert_eq!(out.len(), 4, "corners must survive");
    }

    #[test]
    fn douglas_peucker_epsilon_controls_detail() {
        let pts: Vec<(f64, f64)> = (0..500)
            .map(|i| (i as f64, (i as f64 * 0.1).sin()))
            .collect();
        let fine = douglas_peucker(&pts, 0.01);
        let coarse = douglas_peucker(&pts, 0.5);
        assert!(fine.len() > coarse.len());
        assert!(coarse.len() >= 2);
    }

    #[test]
    fn douglas_peucker_error_bound_holds() {
        let pts: Vec<(f64, f64)> = (0..300)
            .map(|i| (i as f64, (i as f64 * 0.05).sin() * 3.0))
            .collect();
        let eps = 0.2;
        let out = douglas_peucker(&pts, eps);
        // Every original point is within eps (perpendicular distance to the
        // line of its spanning segment) of the simplified polyline.
        for &(px, py) in &pts {
            let mut perp = f64::INFINITY;
            for w in out.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                if px >= x0 - 1e-9 && px <= x1 + 1e-9 {
                    let dx = x1 - x0;
                    let dy = y1 - y0;
                    let len = dx.hypot(dy).max(f64::EPSILON);
                    perp = ((px - x0) * dy - (py - y0) * dx).abs() / len;
                    break;
                }
            }
            assert!(perp <= eps + 1e-9, "point ({px}, {py}) off by {perp}");
        }
    }
}
