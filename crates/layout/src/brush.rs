//! The 1-D brush model: "after selecting the time range via brushing, a
//! detailed view of the selected part is generated".
//!
//! A [`Brush`] owns an extent (the full domain shown in the overview chart)
//! and an optional selection inside it. All mutation goes through methods
//! that clamp and normalize, so a selection is always a valid, in-extent,
//! non-inverted interval — the invariant property tests in the workspace
//! exercise.

use serde::{Deserialize, Serialize};

/// A brushable 1-D selection over `[extent.0, extent.1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Brush {
    extent: (f64, f64),
    selection: Option<(f64, f64)>,
}

impl Brush {
    /// Creates a brush over the given extent (swapped if inverted), with no
    /// selection.
    pub fn new(extent: (f64, f64)) -> Brush {
        let (a, b) = extent;
        Brush {
            extent: if a <= b { (a, b) } else { (b, a) },
            selection: None,
        }
    }

    /// The full extent.
    pub fn extent(&self) -> (f64, f64) {
        self.extent
    }

    /// The current selection, if any.
    pub fn selection(&self) -> Option<(f64, f64)> {
        self.selection
    }

    /// True when a non-empty selection exists.
    pub fn is_active(&self) -> bool {
        self.selection.is_some()
    }

    /// Sets the selection; endpoints are swapped if inverted and clamped to
    /// the extent. A zero-length result clears the selection instead.
    pub fn select(&mut self, a: f64, b: f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let lo = lo.clamp(self.extent.0, self.extent.1);
        let hi = hi.clamp(self.extent.0, self.extent.1);
        self.selection = if hi - lo > 0.0 { Some((lo, hi)) } else { None };
    }

    /// Clears the selection (the "click outside the brush" gesture).
    pub fn clear(&mut self) {
        self.selection = None;
    }

    /// Translates the selection by `delta`, sliding against the extent
    /// bounds without changing its width. No-op without a selection.
    pub fn pan(&mut self, delta: f64) {
        if let Some((lo, hi)) = self.selection {
            let width = hi - lo;
            // A selection can fill the whole extent; guard the clamp bounds
            // against float rounding that would put max below min.
            let max_lo = (self.extent.1 - width).max(self.extent.0);
            let new_lo = (lo + delta).clamp(self.extent.0, max_lo);
            self.selection = Some((new_lo, (new_lo + width).min(self.extent.1)));
        }
    }

    /// Scales the selection about its center by `factor` (> 1 widens),
    /// clamped to the extent. No-op without a selection.
    pub fn zoom(&mut self, factor: f64) {
        if factor <= 0.0 {
            return;
        }
        if let Some((lo, hi)) = self.selection {
            let mid = (lo + hi) / 2.0;
            let half = (hi - lo) / 2.0 * factor;
            self.select(mid - half, mid + half);
        }
    }

    /// The selection if active, otherwise the full extent — what the detail
    /// view should display.
    pub fn effective(&self) -> (f64, f64) {
        self.selection.unwrap_or(self.extent)
    }

    /// Fraction `[0, 1]` of the extent covered by the selection (0 when
    /// inactive).
    pub fn coverage(&self) -> f64 {
        match self.selection {
            Some((lo, hi)) => {
                let span = self.extent.1 - self.extent.0;
                if span <= 0.0 {
                    0.0
                } else {
                    (hi - lo) / span
                }
            }
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_brush_is_inactive() {
        let b = Brush::new((0.0, 100.0));
        assert!(!b.is_active());
        assert_eq!(b.effective(), (0.0, 100.0));
        assert_eq!(b.coverage(), 0.0);
    }

    #[test]
    fn inverted_extent_is_normalized() {
        let b = Brush::new((100.0, 0.0));
        assert_eq!(b.extent(), (0.0, 100.0));
    }

    #[test]
    fn select_clamps_and_orders() {
        let mut b = Brush::new((0.0, 100.0));
        b.select(150.0, 30.0);
        assert_eq!(b.selection(), Some((30.0, 100.0)));
        b.select(-10.0, -5.0); // entirely outside → zero width → cleared
        assert!(!b.is_active());
    }

    #[test]
    fn zero_width_selection_clears() {
        let mut b = Brush::new((0.0, 100.0));
        b.select(40.0, 40.0);
        assert!(!b.is_active());
    }

    #[test]
    fn pan_slides_without_resizing() {
        let mut b = Brush::new((0.0, 100.0));
        b.select(10.0, 30.0);
        b.pan(20.0);
        assert_eq!(b.selection(), Some((30.0, 50.0)));
        b.pan(1000.0); // hits the right wall
        assert_eq!(b.selection(), Some((80.0, 100.0)));
        b.pan(-1000.0);
        assert_eq!(b.selection(), Some((0.0, 20.0)));
    }

    #[test]
    fn zoom_scales_about_center() {
        let mut b = Brush::new((0.0, 100.0));
        b.select(40.0, 60.0);
        b.zoom(2.0);
        assert_eq!(b.selection(), Some((30.0, 70.0)));
        b.zoom(0.5);
        assert_eq!(b.selection(), Some((40.0, 60.0)));
        b.zoom(-1.0); // ignored
        assert_eq!(b.selection(), Some((40.0, 60.0)));
    }

    #[test]
    fn coverage_fraction() {
        let mut b = Brush::new((0.0, 200.0));
        b.select(50.0, 100.0);
        assert!((b.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pan_without_selection_is_noop() {
        let mut b = Brush::new((0.0, 10.0));
        b.pan(5.0);
        b.zoom(2.0);
        assert!(!b.is_active());
    }
}
