//! Minimal 2-D geometry used by the packing and rendering layers.

use serde::{Deserialize, Serialize};

/// A point in view coordinates (x right, y down, as in SVG).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        (*self - *other).norm()
    }

    /// Vector length from the origin.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Linear interpolation toward `other` at `t`.
    #[must_use]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl std::ops::Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

/// A circle `(x, y, r)` — the unit of the packing algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Circle {
    /// Center x.
    pub x: f64,
    /// Center y.
    pub y: f64,
    /// Radius (non-negative).
    pub r: f64,
}

impl Circle {
    /// Creates a circle.
    pub const fn new(x: f64, y: f64, r: f64) -> Self {
        Circle { x, y, r }
    }

    /// The center point.
    pub const fn center(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// True when `p` lies inside or on the circle.
    pub fn contains_point(&self, p: &Point) -> bool {
        (p.x - self.x).hypot(p.y - self.y) <= self.r + 1e-9
    }

    /// True when `other` lies entirely inside (or on) this circle, with a
    /// relative tolerance — the d3 `enclosesWeak` predicate.
    pub fn contains_circle(&self, other: &Circle) -> bool {
        let dr = self.r - other.r + self.r.max(other.r).max(1.0) * 1e-9;
        if dr < 0.0 {
            return false;
        }
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        dr * dr > dx * dx + dy * dy || (dx == 0.0 && dy == 0.0 && dr >= 0.0)
    }

    /// True when the two circles' interiors overlap (tangency excluded, with
    /// the d3 packing epsilon).
    pub fn intersects(&self, other: &Circle) -> bool {
        let dr = self.r + other.r - 1e-6;
        if dr <= 0.0 {
            return false;
        }
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        dr * dr > dx * dx + dy * dy
    }

    /// Translates by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64) -> Circle {
        Circle::new(self.x + dx, self.y + dy, self.r)
    }
}

/// An axis-aligned rectangle (origin at top-left, SVG convention).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width (non-negative).
    pub width: f64,
    /// Height (non-negative).
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// The center point.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f64 {
        self.y + self.height
    }

    /// True when `p` lies inside (closed).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x && p.x <= self.right() && p.y >= self.y && p.y <= self.bottom()
    }

    /// Shrinks all four sides by `margin` (clamped at zero size).
    #[must_use]
    pub fn inset(&self, margin: f64) -> Rect {
        let w = (self.width - 2.0 * margin).max(0.0);
        let h = (self.height - 2.0 * margin).max(0.0);
        Rect::new(self.x + margin, self.y + margin, w, h)
    }

    /// The largest circle fitting inside, centered.
    pub fn inscribed_circle(&self) -> Circle {
        let c = self.center();
        Circle::new(c.x, c.y, self.width.min(self.height) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!((b - a).norm(), 5.0);
        assert_eq!(a.lerp(&b, 0.5), Point::new(2.5, 4.0));
        assert_eq!(a + b, Point::new(5.0, 8.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn circle_containment() {
        let big = Circle::new(0.0, 0.0, 10.0);
        let small = Circle::new(3.0, 0.0, 2.0);
        assert!(big.contains_circle(&small));
        assert!(!small.contains_circle(&big));
        // Internally tangent counts as contained (weak).
        let tangent = Circle::new(8.0, 0.0, 2.0);
        assert!(big.contains_circle(&tangent));
        assert!(big.contains_point(&Point::new(0.0, 10.0)));
        assert!(!big.contains_point(&Point::new(0.0, 10.1)));
    }

    #[test]
    fn circle_intersection_excludes_tangency() {
        let a = Circle::new(0.0, 0.0, 1.0);
        let b = Circle::new(2.0, 0.0, 1.0); // externally tangent
        assert!(!a.intersects(&b));
        let c = Circle::new(1.5, 0.0, 1.0);
        assert!(a.intersects(&c));
        let far = Circle::new(5.0, 0.0, 1.0);
        assert!(!a.intersects(&far));
    }

    #[test]
    fn rect_operations() {
        let r = Rect::new(10.0, 20.0, 100.0, 50.0);
        assert_eq!(r.center(), Point::new(60.0, 45.0));
        assert_eq!(r.right(), 110.0);
        assert_eq!(r.bottom(), 70.0);
        assert!(r.contains(&Point::new(10.0, 20.0)));
        assert!(!r.contains(&Point::new(9.9, 20.0)));
        let inner = r.inset(5.0);
        assert_eq!(inner, Rect::new(15.0, 25.0, 90.0, 40.0));
        // Over-inset clamps to zero.
        assert_eq!(r.inset(100.0).width, 0.0);
        let c = r.inscribed_circle();
        assert_eq!(c.r, 25.0);
        assert_eq!(c.center(), r.center());
    }
}
