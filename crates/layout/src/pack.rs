//! Circle packing: the `d3.packSiblings` front-chain algorithm and the
//! hierarchical pack layout that nests job → task → node bubbles.

use serde::{Deserialize, Serialize};

use crate::enclose::enclose;
use crate::geometry::Circle;

/// Packs circles (radii given, positions ignored) tightly around the origin
/// using the front-chain algorithm; returns the enclosing radius.
///
/// On return every circle has its `(x, y)` set; the layout is centered so
/// the smallest enclosing circle sits at the origin.
///
/// # Example
///
/// ```
/// use batchlens_layout::{pack_siblings, Circle};
///
/// let mut circles = vec![Circle::new(0.0, 0.0, 2.0); 5];
/// let r = pack_siblings(&mut circles);
/// assert!(r > 2.0);
/// for (i, a) in circles.iter().enumerate() {
///     for b in &circles[i + 1..] {
///         assert!(!a.intersects(b));
///     }
/// }
/// ```
pub fn pack_siblings(circles: &mut [Circle]) -> f64 {
    let n = circles.len();
    if n == 0 {
        return 0.0;
    }
    // First circle at the origin.
    circles[0].x = 0.0;
    circles[0].y = 0.0;
    if n == 1 {
        return circles[0].r;
    }
    // Second circle to the right of the first.
    let (r0, r1) = (circles[0].r, circles[1].r);
    circles[0].x = -r1;
    circles[1].x = r0;
    circles[1].y = 0.0;
    if n == 2 {
        return r0 + r1;
    }
    // Third circle tangent to the first two.
    let c2 = place(&circles[1], &circles[0], circles[2].r);
    circles[2] = c2;

    // Front chain as index-linked nodes over `circles`, replicating d3's
    // initialization: a.next = c.previous = b; b.next = a.previous = c;
    // c.next = b.previous = a (for a=0, b=1, c=2).
    let mut next = vec![0usize; n];
    let mut prev = vec![0usize; n];
    next[0] = 1;
    prev[2] = 1;
    next[1] = 2;
    prev[0] = 2;
    next[2] = 0;
    prev[1] = 0;
    let (mut a, mut b) = (0usize, 1usize);

    let mut i = 3usize;
    'pack: while i < n {
        let candidate = place(&circles[a], &circles[b], circles[i].r);
        circles[i] = candidate;

        // Walk the chain outward from (a, b) looking for an intersection.
        let mut j = next[b];
        let mut k = prev[a];
        let mut sj = circles[b].r;
        let mut sk = circles[a].r;
        loop {
            if sj <= sk {
                if circles[j].intersects(&circles[i]) {
                    b = j;
                    next[a] = b;
                    prev[b] = a;
                    continue 'pack; // retry the same circle i
                }
                sj += circles[j].r;
                j = next[j];
            } else {
                if circles[k].intersects(&circles[i]) {
                    a = k;
                    next[a] = b;
                    prev[b] = a;
                    continue 'pack;
                }
                sk += circles[k].r;
                k = prev[k];
            }
            if j == next[k] {
                break;
            }
        }

        // Success: insert i between a and b.
        prev[i] = a;
        next[i] = b;
        next[a] = i;
        prev[b] = i;
        b = i;

        // Advance (a, b) to the pair closest to the origin.
        let score = |idx: usize, next: &[usize]| -> f64 {
            let ca = &circles[idx];
            let cb = &circles[next[idx]];
            let ab = ca.r + cb.r;
            let dx = (ca.x * cb.r + cb.x * ca.r) / ab;
            let dy = (ca.y * cb.r + cb.y * ca.r) / ab;
            dx * dx + dy * dy
        };
        let mut aa = score(a, &next);
        // b currently equals the inserted node; walk the ring once.
        let stop = b;
        let mut cur = next[stop];
        while cur != stop {
            let ca = score(cur, &next);
            if ca < aa {
                a = cur;
                aa = ca;
            }
            cur = next[cur];
        }
        b = next[a];
        i += 1;
    }

    // Enclose the front chain and recenter everything on the origin.
    let mut chain = vec![circles[b]];
    let mut cur = next[b];
    while cur != b {
        chain.push(circles[cur]);
        cur = next[cur];
    }
    let e = enclose(&chain).expect("chain is non-empty");
    for c in circles.iter_mut() {
        c.x -= e.x;
        c.y -= e.y;
    }
    e.r
}

/// Positions a circle of radius `r` tangent to `b` and `a` (d3's `place`).
fn place(b: &Circle, a: &Circle, r: f64) -> Circle {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let d2 = dx * dx + dy * dy;
    if d2 > 1e-12 {
        let a2 = (a.r + r) * (a.r + r);
        let b2 = (b.r + r) * (b.r + r);
        if a2 > b2 {
            let x = (d2 + b2 - a2) / (2.0 * d2);
            let y = (b2 / d2 - x * x).max(0.0).sqrt();
            Circle::new(b.x - x * dx - y * dy, b.y - x * dy + y * dx, r)
        } else {
            let x = (d2 + a2 - b2) / (2.0 * d2);
            let y = (a2 / d2 - x * x).max(0.0).sqrt();
            Circle::new(a.x + x * dx - y * dy, a.y + x * dy + y * dx, r)
        }
    } else {
        Circle::new(a.x + a.r + r, a.y, r)
    }
}

/// A node of the hierarchical pack layout.
///
/// Build the tree with [`PackNode::leaf`] / [`PackNode::parent`], lay it out
/// with [`PackNode::pack`], then read absolute circles via
/// [`PackNode::visit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackNode<T> {
    /// User payload (job id, task id, machine id, …).
    pub data: T,
    /// Layout circle (absolute coordinates after [`PackNode::pack`]).
    pub circle: Circle,
    /// Children (empty for leaves).
    pub children: Vec<PackNode<T>>,
}

impl<T> PackNode<T> {
    /// A leaf with a fixed radius.
    pub fn leaf(data: T, radius: f64) -> Self {
        PackNode {
            data,
            circle: Circle::new(0.0, 0.0, radius.max(0.0)),
            children: Vec::new(),
        }
    }

    /// An internal node; its radius is computed from its children.
    pub fn parent(data: T, children: Vec<PackNode<T>>) -> Self {
        PackNode {
            data,
            circle: Circle::default(),
            children,
        }
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Lays out the subtree: packs children recursively (each child inflated
    /// by `padding` during packing), computes this node's radius, then
    /// positions everything in absolute coordinates centered at `(cx, cy)`.
    ///
    /// Returns this node's final radius.
    pub fn pack(&mut self, cx: f64, cy: f64, padding: f64) -> f64 {
        self.pack_relative(padding);
        self.absolutize(cx, cy);
        self.circle.r
    }

    /// Bottom-up pass: children positioned relative to this node's center.
    fn pack_relative(&mut self, padding: f64) -> f64 {
        if self.is_leaf() {
            return self.circle.r;
        }
        for child in &mut self.children {
            child.pack_relative(padding);
        }
        let mut circles: Vec<Circle> = self
            .children
            .iter()
            .map(|c| Circle::new(0.0, 0.0, c.circle.r + padding))
            .collect();
        let r = pack_siblings(&mut circles);
        for (child, packed) in self.children.iter_mut().zip(&circles) {
            child.circle.x = packed.x;
            child.circle.y = packed.y;
        }
        self.circle = Circle::new(0.0, 0.0, r + padding);
        self.circle.r
    }

    /// Top-down pass: convert relative child offsets into absolute centers.
    fn absolutize(&mut self, cx: f64, cy: f64) {
        self.circle.x = cx;
        self.circle.y = cy;
        let (px, py) = (cx, cy);
        for child in &mut self.children {
            let (ox, oy) = (child.circle.x, child.circle.y);
            child.absolutize(px + ox, py + oy);
        }
    }

    /// Depth-first visit: `f(depth, node)`.
    pub fn visit<F: FnMut(usize, &PackNode<T>)>(&self, f: &mut F) {
        self.visit_inner(0, f);
    }

    fn visit_inner<F: FnMut(usize, &PackNode<T>)>(&self, depth: usize, f: &mut F) {
        f(depth, self);
        for child in &self.children {
            child.visit_inner(depth + 1, f);
        }
    }

    /// Scales the whole layout about `(cx, cy)` so this node's radius
    /// becomes `target_r`. Call after [`PackNode::pack`] to fit a viewport.
    pub fn scale_to(&mut self, cx: f64, cy: f64, target_r: f64) {
        if self.circle.r <= 0.0 {
            return;
        }
        let k = target_r / self.circle.r;
        self.rescale(cx, cy, k);
    }

    fn rescale(&mut self, cx: f64, cy: f64, k: f64) {
        self.circle.x = cx + (self.circle.x - cx) * k;
        self.circle.y = cy + (self.circle.y - cy) * k;
        self.circle.r *= k;
        for child in &mut self.children {
            child.rescale(cx, cy, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_disjoint(circles: &[Circle]) {
        for (i, a) in circles.iter().enumerate() {
            for b in &circles[i + 1..] {
                let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                assert!(
                    d + 1e-6 >= a.r + b.r,
                    "overlap: {a:?} vs {b:?} (gap {})",
                    d - a.r - b.r
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut none: Vec<Circle> = vec![];
        assert_eq!(pack_siblings(&mut none), 0.0);
        let mut one = vec![Circle::new(9.0, 9.0, 3.0)];
        assert_eq!(pack_siblings(&mut one), 3.0);
        assert_eq!((one[0].x, one[0].y), (0.0, 0.0));
    }

    #[test]
    fn two_circles_touch() {
        let mut cs = vec![Circle::new(0.0, 0.0, 1.0), Circle::new(0.0, 0.0, 2.0)];
        let r = pack_siblings(&mut cs);
        assert!((r - 3.0).abs() < 1e-9);
        let d = ((cs[0].x - cs[1].x).powi(2) + (cs[0].y - cs[1].y).powi(2)).sqrt();
        assert!((d - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equal_circles_pack_without_overlap() {
        for n in [3usize, 5, 10, 30, 100] {
            let mut cs = vec![Circle::new(0.0, 0.0, 1.0); n];
            let r = pack_siblings(&mut cs);
            assert_disjoint(&cs);
            // Everything inside the reported enclosure.
            for c in &cs {
                let d = (c.x * c.x + c.y * c.y).sqrt();
                assert!(d + c.r <= r + 1e-6, "n={n}: circle escapes enclosure");
            }
            // Density sanity: the packing should not be catastrophically loose.
            let used = n as f64; // Σ r² of unit circles
            let density = used / (r * r);
            assert!(density > 0.5, "n={n}: density {density} too low (r={r})");
        }
    }

    #[test]
    fn mixed_radii_pack() {
        let radii = [5.0, 1.0, 3.0, 2.0, 8.0, 1.5, 0.5, 4.0, 2.5, 1.0];
        let mut cs: Vec<Circle> = radii.iter().map(|&r| Circle::new(0.0, 0.0, r)).collect();
        let enclosure = pack_siblings(&mut cs);
        assert_disjoint(&cs);
        assert!(enclosure >= 8.0);
        for (c, &r) in cs.iter().zip(&radii) {
            assert_eq!(c.r, r, "radius must be preserved");
        }
    }

    #[test]
    fn pack_is_deterministic() {
        let mk = || {
            let mut cs: Vec<Circle> = (1..=20)
                .map(|i| Circle::new(0.0, 0.0, i as f64 / 3.0))
                .collect();
            pack_siblings(&mut cs);
            cs
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn hierarchy_nests_children_inside_parents() {
        // job with two tasks: 3 and 4 nodes.
        let t1 = PackNode::parent(
            "task1",
            (0..3)
                .map(|i| PackNode::leaf("n", 4.0 + i as f64))
                .collect(),
        );
        let t2 = PackNode::parent("task2", (0..4).map(|_| PackNode::leaf("n", 5.0)).collect());
        let mut job = PackNode::parent("job", vec![t1, t2]);
        let r = job.pack(100.0, 100.0, 2.0);
        assert!(r > 0.0);
        assert_eq!(job.circle.center().x, 100.0);

        // Every child strictly inside its parent.
        fn check<T>(node: &PackNode<T>) {
            for child in &node.children {
                let d = node.circle.center().distance(&child.circle.center());
                assert!(
                    d + child.circle.r <= node.circle.r + 1e-6,
                    "child escapes parent by {}",
                    d + child.circle.r - node.circle.r
                );
                check(child);
            }
        }
        check(&job);

        // Siblings disjoint at every level.
        let tasks: Vec<Circle> = job.children.iter().map(|c| c.circle).collect();
        assert_disjoint(&tasks);
        for t in &job.children {
            let leaves: Vec<Circle> = t.children.iter().map(|c| c.circle).collect();
            assert_disjoint(&leaves);
        }
    }

    #[test]
    fn visit_reports_depths() {
        let mut job = PackNode::parent(
            0usize,
            vec![PackNode::parent(1, vec![PackNode::leaf(2, 1.0)])],
        );
        job.pack(0.0, 0.0, 1.0);
        let mut depths = Vec::new();
        job.visit(&mut |d, n| depths.push((d, n.data)));
        assert_eq!(depths, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn scale_to_fits_viewport() {
        let mut job = PackNode::parent((), (0..6).map(|_| PackNode::leaf((), 3.0)).collect());
        job.pack(50.0, 50.0, 1.0);
        job.scale_to(50.0, 50.0, 40.0);
        assert!((job.circle.r - 40.0).abs() < 1e-9);
        for child in &job.children {
            let d = job.circle.center().distance(&child.circle.center());
            assert!(d + child.circle.r <= 40.0 + 1e-6);
        }
    }

    #[test]
    fn zero_radius_leaves_are_tolerated() {
        let mut cs = vec![Circle::new(0.0, 0.0, 0.0), Circle::new(0.0, 0.0, 1.0)];
        let r = pack_siblings(&mut cs);
        assert!(r >= 1.0);
    }
}
