//! Smallest enclosing circle of a set of circles — the `d3.packEnclose`
//! algorithm (Welzl's move-to-front with a basis of at most three circles),
//! made deterministic with a seeded LCG shuffle.

use crate::geometry::Circle;

/// Computes the smallest circle enclosing every input circle.
///
/// Returns `None` for empty input. The result is deterministic: the
/// algorithm's internal shuffle uses a fixed-seed LCG.
///
/// # Example
///
/// ```
/// use batchlens_layout::{enclose, Circle};
///
/// let e = enclose(&[Circle::new(0.0, 0.0, 1.0), Circle::new(4.0, 0.0, 1.0)]).unwrap();
/// assert!((e.r - 3.0).abs() < 1e-9);
/// assert!((e.x - 2.0).abs() < 1e-9);
/// ```
pub fn enclose(circles: &[Circle]) -> Option<Circle> {
    if circles.is_empty() {
        return None;
    }
    let mut shuffled = circles.to_vec();
    lcg_shuffle(&mut shuffled);

    let mut basis: Vec<Circle> = Vec::new();
    let mut e: Option<Circle> = None;
    let mut i = 0usize;
    while i < shuffled.len() {
        let p = shuffled[i];
        match e {
            Some(ref cur) if cur.contains_circle(&p) => i += 1,
            _ => {
                basis = extend_basis(&basis, p);
                e = Some(enclose_basis(&basis));
                i = 0;
            }
        }
    }
    e
}

/// Deterministic Fisher–Yates with d3's LCG (a=1664525, c=1013904223, m=2³²).
fn lcg_shuffle(items: &mut [Circle]) {
    let mut s: u64 = 1;
    let mut next = || {
        s = (1664525u64.wrapping_mul(s).wrapping_add(1013904223)) % 4294967296;
        s as f64 / 4294967296.0
    };
    let mut m = items.len();
    while m > 0 {
        let i = (next() * m as f64) as usize;
        m -= 1;
        items.swap(m, i.min(m));
    }
}

fn encloses_not(a: &Circle, b: &Circle) -> bool {
    let dr = a.r - b.r;
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    dr < 0.0 || dr * dr < dx * dx + dy * dy
}

fn encloses_weak_all(a: &Circle, basis: &[Circle]) -> bool {
    basis.iter().all(|b| a.contains_circle(b))
}

fn extend_basis(basis: &[Circle], p: Circle) -> Vec<Circle> {
    if encloses_weak_all(&p, basis) {
        return vec![p];
    }
    for b in basis {
        if encloses_not(&p, b) && encloses_weak_all(&enclose_basis2(b, &p), basis) {
            return vec![*b, p];
        }
    }
    for i in 0..basis.len().saturating_sub(1) {
        for j in i + 1..basis.len() {
            let (bi, bj) = (&basis[i], &basis[j]);
            if encloses_not(&enclose_basis2(bi, bj), &p)
                && encloses_not(&enclose_basis2(bi, &p), bj)
                && encloses_not(&enclose_basis2(bj, &p), bi)
                && encloses_weak_all(&enclose_basis3(bi, bj, &p), basis)
            {
                return vec![*bi, *bj, p];
            }
        }
    }
    unreachable!("Welzl basis extension failed — numerically degenerate input");
}

fn enclose_basis(basis: &[Circle]) -> Circle {
    match basis {
        [a] => *a,
        [a, b] => enclose_basis2(a, b),
        [a, b, c] => enclose_basis3(a, b, c),
        _ => unreachable!("basis holds at most three circles"),
    }
}

fn enclose_basis2(a: &Circle, b: &Circle) -> Circle {
    let (x1, y1, r1) = (a.x, a.y, a.r);
    let (x2, y2, r2) = (b.x, b.y, b.r);
    let x21 = x2 - x1;
    let y21 = y2 - y1;
    let r21 = r2 - r1;
    let l = (x21 * x21 + y21 * y21).sqrt();
    if l < 1e-12 {
        // Concentric: the larger circle is the enclosure.
        return if r1 >= r2 { *a } else { *b };
    }
    Circle::new(
        (x1 + x2 + x21 / l * r21) / 2.0,
        (y1 + y2 + y21 / l * r21) / 2.0,
        (l + r1 + r2) / 2.0,
    )
}

fn enclose_basis3(a: &Circle, b: &Circle, c: &Circle) -> Circle {
    let (x1, y1, r1) = (a.x, a.y, a.r);
    let (x2, y2, r2) = (b.x, b.y, b.r);
    let (x3, y3, r3) = (c.x, c.y, c.r);
    let a2 = x1 - x2;
    let a3 = x1 - x3;
    let b2 = y1 - y2;
    let b3 = y1 - y3;
    let c2 = r2 - r1;
    let c3 = r3 - r1;
    let d1 = x1 * x1 + y1 * y1 - r1 * r1;
    let d2 = d1 - x2 * x2 - y2 * y2 + r2 * r2;
    let d3 = d1 - x3 * x3 - y3 * y3 + r3 * r3;
    let ab = a3 * b2 - a2 * b3;
    let xa = (b2 * d3 - b3 * d2) / (ab * 2.0) - x1;
    let xb = (b3 * c2 - b2 * c3) / ab;
    let ya = (a3 * d2 - a2 * d3) / (ab * 2.0) - y1;
    let yb = (a2 * c3 - a3 * c2) / ab;
    let qa = xb * xb + yb * yb - 1.0;
    let qb = 2.0 * (r1 + xa * xb + ya * yb);
    let qc = xa * xa + ya * ya - r1 * r1;
    let r = -(if qa.abs() > 1e-6 {
        (qb + (qb * qb - 4.0 * qa * qc).max(0.0).sqrt()) / (2.0 * qa)
    } else {
        qc / qb
    });
    Circle::new(x1 + xa + xb * r, y1 + ya + yb * r, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_encloses(e: &Circle, circles: &[Circle]) {
        for c in circles {
            let d = ((c.x - e.x).powi(2) + (c.y - e.y).powi(2)).sqrt();
            assert!(
                d + c.r <= e.r + 1e-6,
                "circle {c:?} sticks out of {e:?} by {}",
                d + c.r - e.r
            );
        }
    }

    #[test]
    fn single_circle_is_its_own_enclosure() {
        let c = Circle::new(3.0, 4.0, 2.0);
        let e = enclose(&[c]).unwrap();
        assert_eq!(e, c);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(enclose(&[]).is_none());
    }

    #[test]
    fn two_disjoint_circles() {
        let a = Circle::new(0.0, 0.0, 1.0);
        let b = Circle::new(10.0, 0.0, 2.0);
        let e = enclose(&[a, b]).unwrap();
        assert_encloses(&e, &[a, b]);
        // Optimal: spans from -1 to 12 → r = 6.5 centered at 5.5.
        assert!((e.r - 6.5).abs() < 1e-9);
        assert!((e.x - 5.5).abs() < 1e-9);
    }

    #[test]
    fn contained_circle_is_free() {
        let big = Circle::new(0.0, 0.0, 10.0);
        let small = Circle::new(1.0, 1.0, 1.0);
        let e = enclose(&[big, small]).unwrap();
        assert!((e.r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_triple() {
        // Three unit circles at the vertices of an equilateral triangle.
        let h = 3.0f64.sqrt();
        let circles = [
            Circle::new(0.0, 0.0, 1.0),
            Circle::new(2.0, 0.0, 1.0),
            Circle::new(1.0, h, 1.0),
        ];
        let e = enclose(&circles).unwrap();
        assert_encloses(&e, &circles);
        // Circumradius of the triangle is 2/√3; enclosure adds the unit radius.
        let expected = 2.0 / h + 1.0;
        assert!(
            (e.r - expected).abs() < 1e-6,
            "r = {}, expected {expected}",
            e.r
        );
    }

    #[test]
    fn enclosure_is_tight_for_many_random_circles() {
        // Deterministic pseudo-random layout.
        let mut s = 42u64;
        let mut rnd = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let circles: Vec<Circle> = (0..200)
            .map(|_| Circle::new(rnd() * 100.0, rnd() * 100.0, rnd() * 5.0 + 0.1))
            .collect();
        let e = enclose(&circles).unwrap();
        assert_encloses(&e, &circles);
        // Tightness: at least one circle must touch the boundary.
        let touches = circles.iter().any(|c| {
            let d = ((c.x - e.x).powi(2) + (c.y - e.y).powi(2)).sqrt();
            (d + c.r - e.r).abs() < 1e-6
        });
        assert!(touches, "enclosure is not tight");
    }

    #[test]
    fn determinism() {
        let circles = [
            Circle::new(0.0, 0.0, 1.0),
            Circle::new(5.0, 1.0, 2.0),
            Circle::new(2.0, 7.0, 1.5),
        ];
        assert_eq!(enclose(&circles), enclose(&circles));
    }

    #[test]
    fn concentric_circles() {
        let a = Circle::new(1.0, 1.0, 3.0);
        let b = Circle::new(1.0, 1.0, 1.0);
        let e = enclose(&[a, b]).unwrap();
        assert!((e.r - 3.0).abs() < 1e-9);
    }
}
