//! Linear scales with d3-style "nice" tick generation — the mapping layer
//! between data coordinates (seconds, utilization fractions) and view
//! coordinates (pixels).

use serde::{Deserialize, Serialize};

/// A linear mapping `domain → range` with tick generation and inversion.
///
/// # Example
///
/// ```
/// use batchlens_layout::LinearScale;
///
/// let x = LinearScale::new((0.0, 86400.0), (0.0, 960.0));
/// assert_eq!(x.scale(43200.0), 480.0);
/// assert_eq!(x.invert(480.0), 43200.0);
/// let ticks = x.ticks(5);
/// assert!(ticks.len() >= 4 && ticks.len() <= 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearScale {
    domain: (f64, f64),
    range: (f64, f64),
    clamped: bool,
}

impl LinearScale {
    /// Creates a scale. A degenerate domain (`d0 == d1`) maps everything to
    /// the middle of the range.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        LinearScale {
            domain,
            range,
            clamped: false,
        }
    }

    /// Enables clamping: outputs are confined to the range.
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.clamped = true;
        self
    }

    /// The domain.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// The range.
    pub fn range(&self) -> (f64, f64) {
        self.range
    }

    /// Maps a domain value to the range.
    pub fn scale(&self, v: f64) -> f64 {
        let (d0, d1) = self.domain;
        let (r0, r1) = self.range;
        if (d1 - d0).abs() < f64::EPSILON {
            return (r0 + r1) / 2.0;
        }
        let t = (v - d0) / (d1 - d0);
        let out = r0 + t * (r1 - r0);
        if self.clamped {
            let (lo, hi) = if r0 <= r1 { (r0, r1) } else { (r1, r0) };
            out.clamp(lo, hi)
        } else {
            out
        }
    }

    /// Maps a range value back to the domain (ignores clamping).
    pub fn invert(&self, v: f64) -> f64 {
        let (d0, d1) = self.domain;
        let (r0, r1) = self.range;
        if (r1 - r0).abs() < f64::EPSILON {
            return (d0 + d1) / 2.0;
        }
        let t = (v - r0) / (r1 - r0);
        d0 + t * (d1 - d0)
    }

    /// Expands the domain to nice round bounds (d3's `nice`).
    #[must_use]
    pub fn nice(mut self, count: usize) -> Self {
        let (mut d0, mut d1) = self.domain;
        let reversed = d1 < d0;
        if reversed {
            std::mem::swap(&mut d0, &mut d1);
        }
        let step = tick_increment(d0, d1, count.max(1));
        if step > 0.0 {
            d0 = (d0 / step).floor() * step;
            d1 = (d1 / step).ceil() * step;
        }
        self.domain = if reversed { (d1, d0) } else { (d0, d1) };
        self
    }

    /// Roughly `count` nice tick values inside the domain (d3's `ticks`).
    pub fn ticks(&self, count: usize) -> Vec<f64> {
        let (mut d0, mut d1) = self.domain;
        let reversed = d1 < d0;
        if reversed {
            std::mem::swap(&mut d0, &mut d1);
        }
        if (d1 - d0).abs() < f64::EPSILON {
            return vec![d0];
        }
        let step = tick_increment(d0, d1, count.max(1));
        if step <= 0.0 || !step.is_finite() {
            return vec![d0, d1];
        }
        let start = (d0 / step).ceil();
        let stop = (d1 / step).floor();
        let n = (stop - start + 1.0).max(0.0) as usize;
        let mut out: Vec<f64> = (0..n).map(|i| (start + i as f64) * step).collect();
        if reversed {
            out.reverse();
        }
        out
    }
}

/// The d3 tick-increment rule: a power of ten times 1, 2 or 5.
fn tick_increment(start: f64, stop: f64, count: usize) -> f64 {
    let step = (stop - start) / count.max(1) as f64;
    if step <= 0.0 || !step.is_finite() {
        return 0.0;
    }
    let power = step.log10().floor();
    let error = step / 10f64.powf(power);
    let factor = if error >= 50f64.sqrt() {
        10.0
    } else if error >= 10f64.sqrt() {
        5.0
    } else if error >= 2f64.sqrt() {
        2.0
    } else {
        1.0
    };
    factor * 10f64.powf(power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_invert_round_trip() {
        let s = LinearScale::new((10.0, 20.0), (100.0, 300.0));
        assert_eq!(s.scale(15.0), 200.0);
        assert_eq!(s.invert(200.0), 15.0);
        for v in [10.0, 12.5, 19.0] {
            assert!((s.invert(s.scale(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn reversed_range_works() {
        // SVG y axes run downward: utilization 0 at the bottom.
        let y = LinearScale::new((0.0, 1.0), (200.0, 0.0));
        assert_eq!(y.scale(0.0), 200.0);
        assert_eq!(y.scale(1.0), 0.0);
        assert_eq!(y.scale(0.25), 150.0);
        assert_eq!(y.invert(150.0), 0.25);
    }

    #[test]
    fn clamping() {
        let s = LinearScale::new((0.0, 1.0), (0.0, 100.0)).clamped();
        assert_eq!(s.scale(2.0), 100.0);
        assert_eq!(s.scale(-1.0), 0.0);
        let rev = LinearScale::new((0.0, 1.0), (100.0, 0.0)).clamped();
        assert_eq!(rev.scale(2.0), 0.0);
    }

    #[test]
    fn degenerate_domain_maps_to_mid_range() {
        let s = LinearScale::new((5.0, 5.0), (0.0, 10.0));
        assert_eq!(s.scale(5.0), 5.0);
        assert_eq!(s.ticks(5), vec![5.0]);
    }

    #[test]
    fn ticks_are_nice_and_inside_domain() {
        let s = LinearScale::new((0.0, 1.0), (0.0, 100.0));
        let ticks = s.ticks(5);
        assert_eq!(ticks, vec![0.0, 0.2, 0.4, 0.6000000000000001, 0.8, 1.0]);
        let s = LinearScale::new((0.0, 86400.0), (0.0, 960.0));
        for t in s.ticks(6) {
            assert!((0.0..=86400.0).contains(&t));
        }
    }

    #[test]
    fn ticks_handle_reversed_domain() {
        let s = LinearScale::new((1.0, 0.0), (0.0, 100.0));
        let ticks = s.ticks(5);
        assert!(ticks.first().unwrap() > ticks.last().unwrap());
    }

    #[test]
    fn nice_rounds_outward() {
        let s = LinearScale::new((0.13, 0.87), (0.0, 1.0)).nice(5);
        let (d0, d1) = s.domain();
        assert!(d0 <= 0.13 && d1 >= 0.87);
        // Nice bounds land on the tick grid.
        assert_eq!(d0, 0.0);
        assert!((d1 - 0.9).abs() < 1e-12 || (d1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tick_increment_uses_1_2_5() {
        for (start, stop, count) in [
            (0.0, 1.0, 10),
            (0.0, 100.0, 7),
            (0.0, 86400.0, 6),
            (3.0, 17.0, 4),
        ] {
            let step = tick_increment(start, stop, count);
            let mant = step / 10f64.powf(step.log10().floor());
            assert!(
                [1.0, 2.0, 5.0, 10.0]
                    .iter()
                    .any(|m| (mant - m).abs() < 1e-9),
                "step {step} has mantissa {mant}"
            );
        }
    }
}
