//! Colors and the BatchLens color scales.
//!
//! Two scales matter in the paper:
//!
//! * the **utilization colormap** of Fig 1's legend (0 % → cool/light,
//!   100 % → hot/dark), painting the three annuli of every node glyph —
//!   implemented as a light-yellow → orange → dark-red ramp
//!   (YlOrRd-style, the standard sequential "heat" map);
//! * the **categorical task palette** coloring per-task lines and end
//!   annotations in the detail charts — the classic 10-hue wheel.

use serde::{Deserialize, Serialize};

/// An sRGB color with alpha, each channel in `0..=255`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
    /// Alpha channel (255 = opaque).
    pub a: u8,
}

impl Color {
    /// Opaque black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Opaque white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Fully transparent.
    pub const TRANSPARENT: Color = Color {
        r: 0,
        g: 0,
        b: 0,
        a: 0,
    };

    /// Opaque color from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b, a: 255 }
    }

    /// Color with alpha.
    pub const fn rgba(r: u8, g: u8, b: u8, a: u8) -> Color {
        Color { r, g, b, a }
    }

    /// Parses `#rrggbb` or `#rrggbbaa`.
    pub fn from_hex(s: &str) -> Option<Color> {
        let s = s.strip_prefix('#')?;
        let parse = |i: usize| u8::from_str_radix(s.get(i..i + 2)?, 16).ok();
        match s.len() {
            6 => Some(Color::rgb(parse(0)?, parse(2)?, parse(4)?)),
            8 => Some(Color::rgba(parse(0)?, parse(2)?, parse(4)?, parse(6)?)),
            _ => None,
        }
    }

    /// Renders as `#rrggbb` (alpha omitted when opaque) or `#rrggbbaa`.
    pub fn to_hex(&self) -> String {
        if self.a == 255 {
            format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
        } else {
            format!("#{:02x}{:02x}{:02x}{:02x}", self.r, self.g, self.b, self.a)
        }
    }

    /// Linear interpolation in sRGB space at `t ∈ [0, 1]`.
    #[must_use]
    pub fn lerp(&self, other: &Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let ch = |a: u8, b: u8| -> u8 {
            (a as f64 + (b as f64 - a as f64) * t)
                .round()
                .clamp(0.0, 255.0) as u8
        };
        Color {
            r: ch(self.r, other.r),
            g: ch(self.g, other.g),
            b: ch(self.b, other.b),
            a: ch(self.a, other.a),
        }
    }

    /// Returns the color with a new alpha.
    #[must_use]
    pub fn with_alpha(mut self, a: u8) -> Color {
        self.a = a;
        self
    }

    /// Relative luminance in `[0, 1]` (for choosing label contrast).
    pub fn luminance(&self) -> f64 {
        (0.2126 * self.r as f64 + 0.7152 * self.g as f64 + 0.0722 * self.b as f64) / 255.0
    }
}

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A multi-stop linear gradient evaluated at `t ∈ [0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gradient {
    /// `(position, color)` stops, positions ascending in `[0, 1]`.
    stops: Vec<(f64, Color)>,
}

impl Gradient {
    /// Builds a gradient from stops; positions are sorted and clamped.
    ///
    /// # Panics
    ///
    /// Panics when `stops` is empty.
    pub fn new(mut stops: Vec<(f64, Color)>) -> Gradient {
        assert!(!stops.is_empty(), "gradient needs at least one stop");
        for s in &mut stops {
            s.0 = s.0.clamp(0.0, 1.0);
        }
        stops.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Gradient { stops }
    }

    /// Samples the gradient.
    pub fn at(&self, t: f64) -> Color {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let first = self.stops[0];
        if t <= first.0 {
            return first.1;
        }
        for w in self.stops.windows(2) {
            let (p0, c0) = w[0];
            let (p1, c1) = w[1];
            if t <= p1 {
                let span = (p1 - p0).max(f64::EPSILON);
                return c0.lerp(&c1, (t - p0) / span);
            }
        }
        self.stops.last().expect("non-empty").1
    }
}

/// The utilization colormap of Fig 1's legend: 0 % light yellow → 50 %
/// orange → 100 % dark red.
pub fn utilization_colormap() -> Gradient {
    Gradient::new(vec![
        (0.0, Color::from_hex("#ffffcc").expect("static hex")),
        (0.25, Color::from_hex("#fed976").expect("static hex")),
        (0.5, Color::from_hex("#fd8d3c").expect("static hex")),
        (0.75, Color::from_hex("#e31a1c").expect("static hex")),
        (1.0, Color::from_hex("#800026").expect("static hex")),
    ])
}

/// The categorical palette for per-task lines (d3 `schemeCategory10`).
pub const TASK_PALETTE: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// The color for the `i`-th task (wraps past 10).
pub fn task_color(i: usize) -> Color {
    Color::from_hex(TASK_PALETTE[i % TASK_PALETTE.len()]).expect("static hex")
}

/// The paper's fixed annotation colors: job-start lines are green.
pub fn start_annotation_color() -> Color {
    Color::from_hex("#2ca02c").expect("static hex")
}

/// Job-bubble outline (blue dotted in Fig 1).
pub fn job_outline_color() -> Color {
    Color::from_hex("#4477cc").expect("static hex")
}

/// Task-bubble outline (purple dotted in Fig 1).
pub fn task_outline_color() -> Color {
    Color::from_hex("#9467bd").expect("static hex")
}

/// Link colors for co-allocation dotted lines (green, orange, purple — the
/// colors called out in Fig 3(b)).
pub fn link_color(i: usize) -> Color {
    const LINKS: [&str; 3] = ["#2ca02c", "#ff7f0e", "#9467bd"];
    Color::from_hex(LINKS[i % LINKS.len()]).expect("static hex")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let c = Color::rgb(0x12, 0xab, 0xef);
        assert_eq!(Color::from_hex(&c.to_hex()), Some(c));
        let t = Color::rgba(1, 2, 3, 128);
        assert_eq!(t.to_hex(), "#01020380");
        assert_eq!(Color::from_hex("#01020380"), Some(t));
        assert_eq!(Color::from_hex("nope"), None);
        assert_eq!(Color::from_hex("#12345"), None);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(200, 100, 50);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Color::rgb(100, 50, 25));
        // Clamps out-of-range t.
        assert_eq!(a.lerp(&b, 2.0), b);
    }

    #[test]
    fn gradient_interpolates_between_stops() {
        let g = Gradient::new(vec![
            (0.0, Color::rgb(0, 0, 0)),
            (1.0, Color::rgb(100, 100, 100)),
        ]);
        assert_eq!(g.at(0.5), Color::rgb(50, 50, 50));
        assert_eq!(g.at(-1.0), Color::rgb(0, 0, 0));
        assert_eq!(g.at(2.0), Color::rgb(100, 100, 100));
        assert_eq!(g.at(f64::NAN), Color::rgb(0, 0, 0));
    }

    #[test]
    fn utilization_map_gets_hotter() {
        let map = utilization_colormap();
        let cold = map.at(0.0);
        let mid = map.at(0.5);
        let hot = map.at(1.0);
        // Luminance strictly decreases: light → dark.
        assert!(cold.luminance() > mid.luminance());
        assert!(mid.luminance() > hot.luminance());
        // Hot end is red-dominated.
        assert!(hot.r > hot.g && hot.r > hot.b);
    }

    #[test]
    fn task_palette_wraps_and_is_distinct() {
        assert_eq!(task_color(0), task_color(10));
        let unique: std::collections::HashSet<String> =
            (0..10).map(|i| task_color(i).to_hex()).collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn fixed_role_colors_parse() {
        // Exercise every static color path (panics would fail the test).
        let _ = start_annotation_color();
        let _ = job_outline_color();
        let _ = task_outline_color();
        assert_ne!(link_color(0), link_color(1));
        assert_eq!(link_color(0), link_color(3));
    }

    #[test]
    #[should_panic(expected = "at least one stop")]
    fn empty_gradient_panics() {
        Gradient::new(vec![]);
    }
}
