//! 1-D clustering of annotation-line positions.
//!
//! The paper reads meaning out of how vertical annotation lines *bundle*:
//! "All lines bundling into one cluster indicates that the job is scheduled
//! for all nodes at the same time. Red lines … are bundled as two clusters,
//! as job 7339 includes two tasks and each has a different end timestamp."
//! This module makes bundling computable: positions within `gap` of their
//! neighbour merge into one cluster.

use serde::{Deserialize, Serialize};

/// A bundle of nearby 1-D positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Mean position of the members.
    pub center: f64,
    /// Indices into the input slice, in ascending position order.
    pub members: Vec<usize>,
    /// Smallest member position.
    pub min: f64,
    /// Largest member position.
    pub max: f64,
}

impl Cluster {
    /// Number of bundled positions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by
    /// [`cluster_1d`], which only emits non-empty clusters).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True when the cluster is a single line.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// Clusters `positions` by single-linkage with threshold `gap`: two
/// positions belong to the same cluster when a chain of neighbours at
/// distance ≤ `gap` connects them. Returns clusters ordered by center.
///
/// NaN positions are ignored.
pub fn cluster_1d(positions: &[f64], gap: f64) -> Vec<Cluster> {
    let mut order: Vec<usize> = (0..positions.len())
        .filter(|&i| !positions[i].is_nan())
        .collect();
    order.sort_by(|&a, &b| {
        positions[a]
            .partial_cmp(&positions[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out: Vec<Cluster> = Vec::new();
    for idx in order {
        let p = positions[idx];
        match out.last_mut() {
            Some(c) if p - c.max <= gap => {
                c.members.push(idx);
                c.max = p;
                // Incremental mean.
                c.center += (p - c.center) / c.members.len() as f64;
            }
            _ => out.push(Cluster {
                center: p,
                members: vec![idx],
                min: p,
                max: p,
            }),
        }
    }
    out
}

/// How many clusters `positions` form at threshold `gap` — the assertion
/// the Fig 2 / Fig 3 tests make ("one start cluster, two end clusters").
pub fn cluster_count(positions: &[f64], gap: f64) -> usize {
    cluster_1d(positions, gap).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_starts_form_one_cluster() {
        // 20 node start times within a few seconds of each other.
        let starts: Vec<f64> = (0..20).map(|i| 1200.0 + (i % 7) as f64).collect();
        let clusters = cluster_1d(&starts, 30.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 20);
        assert!((clusters[0].center - 1203.0).abs() < 2.0);
    }

    #[test]
    fn two_task_ends_form_two_clusters() {
        let mut ends: Vec<f64> = (0..10).map(|i| 3600.0 + i as f64 * 5.0).collect();
        ends.extend((0..10).map(|i| 5100.0 + i as f64 * 5.0));
        let clusters = cluster_1d(&ends, 120.0);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 10);
        assert_eq!(clusters[1].len(), 10);
        assert!(clusters[0].center < clusters[1].center);
    }

    #[test]
    fn chain_linkage_merges_through_neighbours() {
        // 0, 10, 20: pairwise gaps of 10 chain into one cluster at gap=10,
        // though 0 and 20 are farther apart than the gap.
        let clusters = cluster_1d(&[0.0, 10.0, 20.0], 10.0);
        assert_eq!(clusters.len(), 1);
        let clusters = cluster_1d(&[0.0, 10.0, 21.0], 10.0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let clusters = cluster_1d(&[50.0, 0.0, 52.0, 1.0], 5.0);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![1, 3]);
        assert_eq!(clusters[1].members, vec![0, 2]);
    }

    #[test]
    fn empty_and_nan() {
        assert!(cluster_1d(&[], 1.0).is_empty());
        let clusters = cluster_1d(&[1.0, f64::NAN, 1.5], 1.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn singleton_flag() {
        let clusters = cluster_1d(&[5.0, 100.0], 1.0);
        assert!(clusters.iter().all(Cluster::is_singleton));
        assert_eq!(cluster_count(&[5.0, 100.0], 1.0), 2);
        assert_eq!(cluster_count(&[5.0, 100.0], 1000.0), 1);
    }
}
