use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::TraceError;

macro_rules! id_type {
    (
        $(#[$meta:meta])*
        $name:ident, $prefix:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The textual prefix used in the trace dumps (e.g. `"job"`).
            pub const fn prefix() -> &'static str {
                $prefix
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "_{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl FromStr for $name {
            type Err = TraceError;

            /// Parses either the bare number (`"7399"`) or the prefixed trace
            /// form (`"job_7399"`).
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let digits = s.strip_prefix(concat!($prefix, "_")).unwrap_or(s);
                digits.parse::<u32>().map($name).map_err(|_| TraceError::ParseField {
                    field: stringify!($name),
                    value: s.to_owned(),
                })
            }
        }
    };
}

id_type!(
    /// Identifier of a batch job, rendered as `job_<n>` like the paper
    /// (`job_7399`, `job_8124`, …).
    ///
    /// A job is the root of the batch hierarchy and owns one or more
    /// [`TaskId`]s. Per the paper's Section II, about 75 % of jobs in the
    /// Alibaba v2017 trace contain exactly one task.
    JobId, "job"
);

id_type!(
    /// Identifier of a task within a job, rendered as `task_<n>`.
    ///
    /// Task ids are scoped to their owning job: `(JobId, TaskId)` is the
    /// globally unique key. About 94 % of tasks have multiple instances.
    TaskId, "task"
);

id_type!(
    /// Identifier of a compute node (machine), rendered as `machine_<n>`.
    ///
    /// Each batch instance runs on exactly one machine; a machine runs many
    /// instances concurrently.
    MachineId, "machine"
);

/// Globally unique identity of a batch instance: `(job, task, seq)`.
///
/// The v2017 `batch_instance` table keys instances by their sequence number
/// within the owning task. Each instance executes on exactly one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId {
    /// Owning job.
    pub job: JobId,
    /// Owning task within the job.
    pub task: TaskId,
    /// Sequence number within the task, `0..total`.
    pub seq: u32,
}

impl InstanceId {
    /// Creates an instance identity.
    pub const fn new(job: JobId, task: TaskId, seq: u32) -> Self {
        Self { job, task, seq }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/inst_{}", self.job, self.task, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(JobId::new(7399).to_string(), "job_7399");
        assert_eq!(TaskId::new(2).to_string(), "task_2");
        assert_eq!(MachineId::new(1299).to_string(), "machine_1299");
    }

    #[test]
    fn parse_round_trips_prefixed_and_bare() {
        let id: JobId = "job_8124".parse().unwrap();
        assert_eq!(id, JobId::new(8124));
        let id: JobId = "8124".parse().unwrap();
        assert_eq!(id, JobId::new(8124));
        let id: MachineId = "machine_5".parse().unwrap();
        assert_eq!(id, MachineId::new(5));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("job_x".parse::<JobId>().is_err());
        assert!("task_".parse::<TaskId>().is_err());
        assert!("".parse::<MachineId>().is_err());
        // A foreign prefix is not silently accepted as digits.
        assert!("job_12".parse::<TaskId>().is_err());
    }

    #[test]
    fn instance_id_orders_by_job_task_seq() {
        let a = InstanceId::new(JobId::new(1), TaskId::new(1), 0);
        let b = InstanceId::new(JobId::new(1), TaskId::new(1), 1);
        let c = InstanceId::new(JobId::new(1), TaskId::new(2), 0);
        let d = InstanceId::new(JobId::new(2), TaskId::new(0), 0);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn instance_display_is_hierarchical() {
        let id = InstanceId::new(JobId::new(3), TaskId::new(1), 7);
        assert_eq!(id.to_string(), "job_3/task_1/inst_7");
    }

    #[test]
    fn ids_implement_common_traits() {
        fn assert_common<T: Copy + Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug>() {}
        assert_common::<JobId>();
        assert_common::<TaskId>();
        assert_common::<MachineId>();
        assert_common::<InstanceId>();
    }
}
