use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::TraceError;

/// The three general performance metrics BatchLens visualizes.
///
/// The paper's Fig 1 encodes each compute node as three annuli colored by
/// these metrics; the detailed line charts plot one metric at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// CPU utilization (inner annulus in Fig 1).
    Cpu,
    /// Memory utilization (middle annulus).
    Memory,
    /// Disk I/O utilization (outer annulus).
    Disk,
}

impl Metric {
    /// All metrics in the paper's annulus order (inner → outer).
    pub const ALL: [Metric; 3] = [Metric::Cpu, Metric::Memory, Metric::Disk];

    /// Stable index `0..3`, usable for dense per-metric arrays.
    pub const fn index(self) -> usize {
        match self {
            Metric::Cpu => 0,
            Metric::Memory => 1,
            Metric::Disk => 2,
        }
    }

    /// Short lowercase name used in CSV headers and filenames.
    pub const fn short_name(self) -> &'static str {
        match self {
            Metric::Cpu => "cpu",
            Metric::Memory => "mem",
            Metric::Disk => "disk",
        }
    }

    /// Human-readable label used for chart titles and legends.
    pub const fn label(self) -> &'static str {
        match self {
            Metric::Cpu => "CPU utilization",
            Metric::Memory => "Memory utilization",
            Metric::Disk => "Disk utilization",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Metric {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu" | "CPU" => Ok(Metric::Cpu),
            "mem" | "memory" | "Memory" => Ok(Metric::Memory),
            "disk" | "Disk" | "io" => Ok(Metric::Disk),
            other => Err(TraceError::ParseField {
                field: "Metric",
                value: other.to_owned(),
            }),
        }
    }
}

/// A utilization fraction in `0.0..=1.0`.
///
/// The trace dumps report utilization as percentages; this type stores the
/// fraction and formats as a percentage. Construction clamps by default
/// ([`Utilization::clamped`]); [`Utilization::checked`] rejects out-of-range
/// values instead, for validating external data (C-VALIDATE).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Utilization(f64);

impl Utilization {
    /// Fully idle.
    pub const ZERO: Utilization = Utilization(0.0);
    /// Fully saturated.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization, clamping into `0.0..=1.0`; NaN becomes `0.0`.
    pub fn clamped(fraction: f64) -> Self {
        if fraction.is_nan() {
            Utilization(0.0)
        } else {
            Utilization(fraction.clamp(0.0, 1.0))
        }
    }

    /// Creates a utilization, rejecting values outside `0.0..=1.0`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UtilizationOutOfRange`] for NaN or out-of-range
    /// input.
    pub fn checked(fraction: f64) -> Result<Self, TraceError> {
        if fraction.is_nan() || !(0.0..=1.0).contains(&fraction) {
            Err(TraceError::UtilizationOutOfRange { value: fraction })
        } else {
            Ok(Utilization(fraction))
        }
    }

    /// Creates a utilization from a percentage in `0..=100`, clamping.
    pub fn from_percent(percent: f64) -> Self {
        Self::clamped(percent / 100.0)
    }

    /// The fraction in `0.0..=1.0`.
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// The percentage in `0.0..=100.0`.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Saturating addition (caps at 100 %).
    #[must_use]
    pub fn saturating_add(self, other: Utilization) -> Utilization {
        Utilization::clamped(self.0 + other.0)
    }

    /// Linear interpolation between `self` and `other` at `t ∈ [0, 1]`.
    #[must_use]
    pub fn lerp(self, other: Utilization, t: f64) -> Utilization {
        Utilization::clamped(self.0 + (other.0 - self.0) * t)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

impl From<Utilization> for f64 {
    fn from(u: Utilization) -> f64 {
        u.0
    }
}

/// Per-machine utilization of all three metrics at one point in time.
///
/// This is the payload of a `server_usage` row and the color input of the
/// node glyph (three annuli) in the hierarchical bubble chart.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationTriple {
    /// CPU utilization.
    pub cpu: Utilization,
    /// Memory utilization.
    pub mem: Utilization,
    /// Disk I/O utilization.
    pub disk: Utilization,
}

impl UtilizationTriple {
    /// Creates a triple from three fractions, clamping each into `0..=1`.
    pub fn clamped(cpu: f64, mem: f64, disk: f64) -> Self {
        UtilizationTriple {
            cpu: Utilization::clamped(cpu),
            mem: Utilization::clamped(mem),
            disk: Utilization::clamped(disk),
        }
    }

    /// The arithmetic mean of the three metrics, used for "how busy is this
    /// node overall" orderings in the case study.
    pub fn mean(&self) -> Utilization {
        Utilization::clamped(
            (self.cpu.fraction() + self.mem.fraction() + self.disk.fraction()) / 3.0,
        )
    }

    /// The hottest of the three metrics.
    pub fn max(&self) -> Utilization {
        let m = self
            .cpu
            .fraction()
            .max(self.mem.fraction())
            .max(self.disk.fraction());
        Utilization::clamped(m)
    }

    /// Element-wise mean of many triples; `None` on empty input.
    pub fn mean_of<'a, I>(triples: I) -> Option<UtilizationTriple>
    where
        I: IntoIterator<Item = &'a UtilizationTriple>,
    {
        let mut n = 0usize;
        let (mut c, mut m, mut d) = (0.0, 0.0, 0.0);
        for t in triples {
            c += t.cpu.fraction();
            m += t.mem.fraction();
            d += t.disk.fraction();
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let n = n as f64;
        Some(UtilizationTriple::clamped(c / n, m / n, d / n))
    }
}

impl Index<Metric> for UtilizationTriple {
    type Output = Utilization;

    fn index(&self, metric: Metric) -> &Utilization {
        match metric {
            Metric::Cpu => &self.cpu,
            Metric::Memory => &self.mem,
            Metric::Disk => &self.disk,
        }
    }
}

impl IndexMut<Metric> for UtilizationTriple {
    fn index_mut(&mut self, metric: Metric) -> &mut Utilization {
        match metric {
            Metric::Cpu => &mut self.cpu,
            Metric::Memory => &mut self.mem,
            Metric::Disk => &mut self.disk,
        }
    }
}

impl fmt::Display for UtilizationTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {} / mem {} / disk {}",
            self.cpu, self.mem, self.disk
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_order_matches_annulus_order() {
        assert_eq!(Metric::ALL, [Metric::Cpu, Metric::Memory, Metric::Disk]);
        assert_eq!(Metric::Cpu.index(), 0);
        assert_eq!(Metric::Disk.index(), 2);
    }

    #[test]
    fn metric_parse_round_trip() {
        for m in Metric::ALL {
            let parsed: Metric = m.short_name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("gpu".parse::<Metric>().is_err());
    }

    #[test]
    fn utilization_clamps_and_checks() {
        assert_eq!(Utilization::clamped(1.5).fraction(), 1.0);
        assert_eq!(Utilization::clamped(-0.5).fraction(), 0.0);
        assert_eq!(Utilization::clamped(f64::NAN).fraction(), 0.0);
        assert!(Utilization::checked(0.5).is_ok());
        assert!(Utilization::checked(1.01).is_err());
        assert!(Utilization::checked(f64::NAN).is_err());
    }

    #[test]
    fn percent_round_trip() {
        let u = Utilization::from_percent(37.5);
        assert!((u.percent() - 37.5).abs() < 1e-9);
        assert_eq!(u.to_string(), "37.5%");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Utilization::clamped(0.2);
        let b = Utilization::clamped(0.8);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triple_mean_and_max() {
        let t = UtilizationTriple::clamped(0.2, 0.4, 0.9);
        assert!((t.mean().fraction() - 0.5).abs() < 1e-12);
        assert!((t.max().fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn triple_indexing() {
        let mut t = UtilizationTriple::default();
        t[Metric::Memory] = Utilization::clamped(0.7);
        assert!((t[Metric::Memory].fraction() - 0.7).abs() < 1e-12);
        assert_eq!(t[Metric::Cpu], Utilization::ZERO);
    }

    #[test]
    fn mean_of_triples() {
        let ts = [
            UtilizationTriple::clamped(0.0, 0.2, 0.4),
            UtilizationTriple::clamped(1.0, 0.4, 0.6),
        ];
        let m = UtilizationTriple::mean_of(ts.iter()).unwrap();
        assert!((m.cpu.fraction() - 0.5).abs() < 1e-12);
        assert!((m.mem.fraction() - 0.3).abs() < 1e-12);
        assert!((m.disk.fraction() - 0.5).abs() < 1e-12);
        assert!(UtilizationTriple::mean_of([].iter()).is_none());
    }

    #[test]
    fn saturating_add_caps() {
        let a = Utilization::clamped(0.7);
        assert_eq!(a.saturating_add(a), Utilization::FULL);
    }
}
