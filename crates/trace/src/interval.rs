//! A static interval index for half-open time windows.
//!
//! Built once over a batch of `[start, end)` intervals, it answers two
//! queries the BatchLens views hammer:
//!
//! * **stab** — which intervals contain `t` — in O(log n + k) via a
//!   centered interval tree: each node owns the intervals straddling its
//!   center timestamp, kept in two sorted lists so a query only touches
//!   matching intervals (plus one miss) per node on its root-to-leaf path.
//!   Long-running straggler intervals cannot degrade the bound the way
//!   they poison max-end pruning in augmented start-sorted layouts.
//! * **count** — how many intervals contain `t` — in O(log n) from the
//!   sorted start/end arrays alone.
//!
//! [`crate::TraceDataset`] builds one over every `batch_instance` window at
//! construction time (plus one per machine), which turns
//! `jobs_running_at`-style snapshot queries from full-table scans into
//! index lookups.

use serde::{Deserialize, Serialize};

use crate::Timestamp;

/// One node of the centered tree. Intervals with `start <= center < end`
/// live here; strictly-earlier intervals descend left, strictly-later ones
/// right.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    center: Timestamp,
    /// `(start, id)` of the straddling intervals, ascending start.
    by_start: Vec<(Timestamp, u32)>,
    /// `(end, id)` of the straddling intervals, descending end.
    by_end: Vec<(Timestamp, u32)>,
    /// Index of the left child in `nodes`, or `u32::MAX`.
    left: u32,
    /// Index of the right child in `nodes`, or `u32::MAX`.
    right: u32,
}

const NO_CHILD: u32 = u32::MAX;

/// A static stabbing index over half-open `[start, end)` intervals.
///
/// Each interval carries a `u32` payload id (typically an index into the
/// caller's record table). Empty intervals (`end <= start`) are accepted
/// but never reported by queries, matching
/// `BatchInstanceRecord::running_at`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalIndex {
    nodes: Vec<Node>,
    /// Non-empty interval starts, sorted ascending (for counting/sweeps).
    sorted_starts: Vec<Timestamp>,
    /// Non-empty interval ends, sorted ascending (for counting/sweeps).
    sorted_ends: Vec<Timestamp>,
    /// Total intervals indexed (including empty ones).
    len: usize,
}

impl IntervalIndex {
    /// Builds the index from `(start, end, id)` triples (any order).
    pub fn build(intervals: impl IntoIterator<Item = (Timestamp, Timestamp, u32)>) -> Self {
        let rows: Vec<(Timestamp, Timestamp, u32)> = intervals.into_iter().collect();
        let len = rows.len();
        // Empty intervals can never be stabbed; keep them out of the tree
        // and the counting arrays so both queries agree.
        let rows: Vec<(Timestamp, Timestamp, u32)> =
            rows.into_iter().filter(|&(s, e, _)| s < e).collect();
        let mut sorted_starts: Vec<Timestamp> = rows.iter().map(|r| r.0).collect();
        let mut sorted_ends: Vec<Timestamp> = rows.iter().map(|r| r.1).collect();
        sorted_starts.sort_unstable();
        sorted_ends.sort_unstable();
        let mut index = IntervalIndex {
            nodes: Vec::new(),
            sorted_starts,
            sorted_ends,
            len,
        };
        if !rows.is_empty() {
            index.build_node(rows);
        }
        index
    }

    /// Recursively builds a subtree; returns its node index.
    fn build_node(&mut self, rows: Vec<(Timestamp, Timestamp, u32)>) -> u32 {
        debug_assert!(!rows.is_empty());
        // Center on the median start: cheap, and splits straddler-free sets
        // roughly in half.
        let mut starts: Vec<Timestamp> = rows.iter().map(|r| r.0).collect();
        let mid = starts.len() / 2;
        let (_, &mut center, _) = starts.select_nth_unstable(mid);
        let mut here: Vec<(Timestamp, Timestamp, u32)> = Vec::new();
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for row in rows {
            if row.1 <= center {
                left_rows.push(row);
            } else if row.0 > center {
                right_rows.push(row);
            } else {
                here.push(row);
            }
        }
        // `here` is never empty: the interval contributing the median start
        // has `start <= center` and (being non-empty) `end > center`, so it
        // straddles. That also bounds both partitions at n/2 — the median
        // property caps `start > center` (right) and `start < center`
        // (superset of left) — giving O(log n) depth.
        debug_assert!(!here.is_empty());
        self.place_node(center, here, left_rows, right_rows)
    }

    fn place_node(
        &mut self,
        center: Timestamp,
        here: Vec<(Timestamp, Timestamp, u32)>,
        left_rows: Vec<(Timestamp, Timestamp, u32)>,
        right_rows: Vec<(Timestamp, Timestamp, u32)>,
    ) -> u32 {
        debug_assert!(here.iter().all(|&(s, e, _)| s <= center && center < e));
        let mut by_start: Vec<(Timestamp, u32)> = here.iter().map(|r| (r.0, r.2)).collect();
        by_start.sort_unstable();
        let mut by_end: Vec<(Timestamp, u32)> = here.iter().map(|r| (r.1, r.2)).collect();
        by_end.sort_unstable_by(|a, b| b.cmp(a));
        let slot = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            by_start,
            by_end,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        if !left_rows.is_empty() {
            let left = self.build_node(left_rows);
            self.nodes[slot as usize].left = left;
        }
        if !right_rows.is_empty() {
            let right = self.build_node(right_rows);
            self.nodes[slot as usize].right = right;
        }
        slot
    }

    /// Number of indexed intervals (including empty ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `visit` with the payload id of every interval containing `t`
    /// (`start <= t < end`). Order is unspecified.
    pub fn stab_with(&self, t: Timestamp, mut visit: impl FnMut(u32)) {
        if self.nodes.is_empty() {
            return;
        }
        let mut node = 0u32;
        loop {
            let n = &self.nodes[node as usize];
            if t < n.center {
                // Straddlers have end > center > t: they contain t iff
                // start <= t. The by-start list stops at the first miss.
                for &(start, id) in &n.by_start {
                    if start > t {
                        break;
                    }
                    visit(id);
                }
                node = n.left;
            } else {
                // t >= center: straddlers have start <= center <= t; they
                // contain t iff end > t. The by-end list is descending.
                for &(end, id) in &n.by_end {
                    if end <= t {
                        break;
                    }
                    visit(id);
                }
                if t == n.center {
                    return;
                }
                node = n.right;
            }
            if node == NO_CHILD {
                return;
            }
        }
    }

    /// The payload ids of every interval containing `t`, unspecified order.
    pub fn stab(&self, t: Timestamp) -> Vec<u32> {
        let mut out = Vec::new();
        self.stab_with(t, |id| out.push(id));
        out
    }

    /// How many intervals contain `t` — O(log n), independent of the answer.
    pub fn count_at(&self, t: Timestamp) -> usize {
        let started = self.sorted_starts.partition_point(|&s| s <= t);
        let ended = self.sorted_ends.partition_point(|&e| e <= t);
        started - ended
    }

    /// Non-empty interval starts, sorted ascending (for event sweeps).
    pub fn sorted_starts(&self) -> &[Timestamp] {
        &self.sorted_starts
    }

    /// Non-empty interval ends, sorted ascending (for event sweeps).
    pub fn sorted_ends(&self) -> &[Timestamp] {
        &self.sorted_ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: i64) -> Timestamp {
        Timestamp::new(t)
    }

    fn scan(rows: &[(i64, i64)], t: i64) -> Vec<u32> {
        rows.iter()
            .enumerate()
            .filter(|(_, &(s, e))| s <= t && t < e)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn build(rows: &[(i64, i64)]) -> IntervalIndex {
        IntervalIndex::build(
            rows.iter()
                .enumerate()
                .map(|(i, &(s, e))| (ts(s), ts(e), i as u32)),
        )
    }

    #[test]
    fn stab_matches_linear_scan() {
        let rows = [
            (0, 10),
            (5, 8),
            (5, 20),
            (9, 9), // empty
            (12, 15),
            (-3, 2),
            (2, 3),
            (0, 1000), // straggler spanning everything
        ];
        let idx = build(&rows);
        for t in -5..25 {
            let mut got = idx.stab(ts(t));
            got.sort_unstable();
            assert_eq!(got, scan(&rows, t), "stab at t={t}");
            assert_eq!(idx.count_at(ts(t)), scan(&rows, t).len(), "count at t={t}");
        }
    }

    #[test]
    fn randomized_against_scan() {
        // Deterministic pseudo-random intervals incl. duplicates, empties
        // and stragglers.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<(i64, i64)> = (0..500)
            .map(|_| {
                let s = (next() % 2000) as i64;
                let dur = match next() % 10 {
                    0 => 0,                     // empty
                    1 => 5000,                  // straggler
                    _ => (next() % 120) as i64, // typical
                };
                (s, s + dur)
            })
            .collect();
        let idx = build(&rows);
        for probe in (-10..2200).step_by(17) {
            let mut got = idx.stab(ts(probe));
            got.sort_unstable();
            assert_eq!(got, scan(&rows, probe), "stab at t={probe}");
            assert_eq!(idx.count_at(ts(probe)), scan(&rows, probe).len());
        }
    }

    #[test]
    fn empty_index_behaves() {
        let idx = IntervalIndex::build(std::iter::empty());
        assert!(idx.is_empty());
        assert!(idx.stab(ts(0)).is_empty());
        assert_eq!(idx.count_at(ts(0)), 0);
    }

    #[test]
    fn duplicate_intervals_all_reported() {
        let rows = [(0, 10), (0, 10), (0, 10)];
        let idx = build(&rows);
        assert_eq!(idx.stab(ts(5)).len(), 3);
        assert_eq!(idx.count_at(ts(5)), 3);
        assert_eq!(idx.count_at(ts(10)), 0);
    }

    #[test]
    fn survives_serde_round_trip() {
        let rows = [(0, 10), (5, 8)];
        let idx = build(&rows);
        let v = serde::Serialize::to_value(&idx);
        let back: IntervalIndex = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.stab(ts(6)).len(), 2);
    }
}
