//! A static interval index for half-open time windows.
//!
//! Built once over a batch of `[start, end)` intervals, it answers two
//! queries the BatchLens views hammer:
//!
//! * **stab** — which intervals contain `t` — in O(log n + k) via a
//!   centered interval tree: each node owns the intervals straddling its
//!   center timestamp, kept in two sorted lists so a query only touches
//!   matching intervals (plus one miss) per node on its root-to-leaf path.
//!   Long-running straggler intervals cannot degrade the bound the way
//!   they poison max-end pruning in augmented start-sorted layouts.
//! * **count** — how many intervals contain `t` — in O(log n) from the
//!   sorted start/end arrays alone.
//!
//! [`crate::TraceDataset`] builds one over every `batch_instance` window at
//! construction time (plus one per machine), which turns
//! `jobs_running_at`-style snapshot queries from full-table scans into
//! index lookups.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::Timestamp;

/// One node of the centered tree. Intervals with `start <= center < end`
/// live here; strictly-earlier intervals descend left, strictly-later ones
/// right.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    center: Timestamp,
    /// `(start, id)` of the straddling intervals, ascending start.
    by_start: Vec<(Timestamp, u32)>,
    /// `(end, id)` of the straddling intervals, descending end.
    by_end: Vec<(Timestamp, u32)>,
    /// Index of the left child in `nodes`, or `u32::MAX`.
    left: u32,
    /// Index of the right child in `nodes`, or `u32::MAX`.
    right: u32,
}

const NO_CHILD: u32 = u32::MAX;

/// A static stabbing index over half-open `[start, end)` intervals.
///
/// Each interval carries a `u32` payload id (typically an index into the
/// caller's record table). Empty intervals (`end <= start`) are accepted
/// but never reported by queries, matching
/// `BatchInstanceRecord::running_at`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalIndex {
    nodes: Vec<Node>,
    /// Non-empty interval starts, sorted ascending (for counting/sweeps).
    sorted_starts: Vec<Timestamp>,
    /// Non-empty interval ends, sorted ascending (for counting/sweeps).
    sorted_ends: Vec<Timestamp>,
    /// Non-empty `(start, end, id)` rows sorted by `(start, id)` — the
    /// entry side of [`IntervalIndex::running_delta_with`].
    start_rows: Vec<(Timestamp, Timestamp, u32)>,
    /// Non-empty `(end, start, id)` rows sorted by `(end, id)` — the exit
    /// side of [`IntervalIndex::running_delta_with`].
    end_rows: Vec<(Timestamp, Timestamp, u32)>,
    /// Total intervals indexed (including empty ones).
    len: usize,
}

impl IntervalIndex {
    /// Builds the index from `(start, end, id)` triples (any order).
    pub fn build(intervals: impl IntoIterator<Item = (Timestamp, Timestamp, u32)>) -> Self {
        let rows: Vec<(Timestamp, Timestamp, u32)> = intervals.into_iter().collect();
        let len = rows.len();
        // Empty intervals can never be stabbed; keep them out of the tree
        // and the counting arrays so both queries agree.
        let rows: Vec<(Timestamp, Timestamp, u32)> =
            rows.into_iter().filter(|&(s, e, _)| s < e).collect();
        let mut sorted_starts: Vec<Timestamp> = rows.iter().map(|r| r.0).collect();
        let mut sorted_ends: Vec<Timestamp> = rows.iter().map(|r| r.1).collect();
        sorted_starts.sort_unstable();
        sorted_ends.sort_unstable();
        let mut start_rows: Vec<(Timestamp, Timestamp, u32)> = rows.clone();
        start_rows.sort_unstable_by_key(|&(s, _, id)| (s, id));
        let mut end_rows: Vec<(Timestamp, Timestamp, u32)> =
            rows.iter().map(|&(s, e, id)| (e, s, id)).collect();
        end_rows.sort_unstable_by_key(|&(e, _, id)| (e, id));
        let mut index = IntervalIndex {
            nodes: Vec::new(),
            sorted_starts,
            sorted_ends,
            start_rows,
            end_rows,
            len,
        };
        if !rows.is_empty() {
            index.build_node(rows);
        }
        index
    }

    /// Recursively builds a subtree; returns its node index.
    fn build_node(&mut self, rows: Vec<(Timestamp, Timestamp, u32)>) -> u32 {
        debug_assert!(!rows.is_empty());
        // Center on the median start: cheap, and splits straddler-free sets
        // roughly in half.
        let mut starts: Vec<Timestamp> = rows.iter().map(|r| r.0).collect();
        let mid = starts.len() / 2;
        let (_, &mut center, _) = starts.select_nth_unstable(mid);
        let mut here: Vec<(Timestamp, Timestamp, u32)> = Vec::new();
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for row in rows {
            if row.1 <= center {
                left_rows.push(row);
            } else if row.0 > center {
                right_rows.push(row);
            } else {
                here.push(row);
            }
        }
        // `here` is never empty: the interval contributing the median start
        // has `start <= center` and (being non-empty) `end > center`, so it
        // straddles. That also bounds both partitions at n/2 — the median
        // property caps `start > center` (right) and `start < center`
        // (superset of left) — giving O(log n) depth.
        debug_assert!(!here.is_empty());
        self.place_node(center, here, left_rows, right_rows)
    }

    fn place_node(
        &mut self,
        center: Timestamp,
        here: Vec<(Timestamp, Timestamp, u32)>,
        left_rows: Vec<(Timestamp, Timestamp, u32)>,
        right_rows: Vec<(Timestamp, Timestamp, u32)>,
    ) -> u32 {
        debug_assert!(here.iter().all(|&(s, e, _)| s <= center && center < e));
        let mut by_start: Vec<(Timestamp, u32)> = here.iter().map(|r| (r.0, r.2)).collect();
        by_start.sort_unstable();
        let mut by_end: Vec<(Timestamp, u32)> = here.iter().map(|r| (r.1, r.2)).collect();
        by_end.sort_unstable_by(|a, b| b.cmp(a));
        let slot = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            by_start,
            by_end,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        if !left_rows.is_empty() {
            let left = self.build_node(left_rows);
            self.nodes[slot as usize].left = left;
        }
        if !right_rows.is_empty() {
            let right = self.build_node(right_rows);
            self.nodes[slot as usize].right = right;
        }
        slot
    }

    /// Number of indexed intervals (including empty ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `visit` with the payload id of every interval containing `t`
    /// (`start <= t < end`). Order is unspecified.
    pub fn stab_with(&self, t: Timestamp, mut visit: impl FnMut(u32)) {
        if self.nodes.is_empty() {
            return;
        }
        let mut node = 0u32;
        loop {
            let n = &self.nodes[node as usize];
            if t < n.center {
                // Straddlers have end > center > t: they contain t iff
                // start <= t. The by-start list stops at the first miss.
                for &(start, id) in &n.by_start {
                    if start > t {
                        break;
                    }
                    visit(id);
                }
                node = n.left;
            } else {
                // t >= center: straddlers have start <= center <= t; they
                // contain t iff end > t. The by-end list is descending.
                for &(end, id) in &n.by_end {
                    if end <= t {
                        break;
                    }
                    visit(id);
                }
                if t == n.center {
                    return;
                }
                node = n.right;
            }
            if node == NO_CHILD {
                return;
            }
        }
    }

    /// The payload ids of every interval containing `t`, unspecified order.
    pub fn stab(&self, t: Timestamp) -> Vec<u32> {
        let mut out = Vec::new();
        self.stab_with(t, |id| out.push(id));
        out
    }

    /// How many intervals contain `t` — O(log n), independent of the answer.
    pub fn count_at(&self, t: Timestamp) -> usize {
        let started = self.sorted_starts.partition_point(|&s| s <= t);
        let ended = self.sorted_ends.partition_point(|&e| e <= t);
        started - ended
    }

    /// Calls `enter` with the id of every interval running at `t1` but not
    /// at `t0`, and `exit` with every interval running at `t0` but not at
    /// `t1` — the **structural delta** between two stabs, without computing
    /// either stab.
    ///
    /// Complexity: O(log n + S + E) where S and E are the endpoint events
    /// (starts/ends) strictly inside the hop — a walk of the two sorted
    /// endpoint arrays between binary-searched bounds, never a scan of the
    /// index. Stepping a cursor across the whole span therefore touches
    /// every endpoint exactly once in total. `t0 > t1` (a backward hop)
    /// swaps the roles; `t0 == t1` reports nothing. Callback order is
    /// unspecified.
    pub fn running_delta_with(
        &self,
        t0: Timestamp,
        t1: Timestamp,
        mut enter: impl FnMut(u32),
        mut exit: impl FnMut(u32),
    ) {
        let (lo, hi, forward) = if t0 <= t1 {
            (t0, t1, true)
        } else {
            (t1, t0, false)
        };
        if lo == hi {
            return;
        }
        // Running at `hi` but not `lo`: started inside `(lo, hi]` and still
        // running at `hi`. Starts at `lo` itself were already running at
        // `lo` (or are covered by the exit side).
        let a = self.start_rows.partition_point(|&(s, _, _)| s <= lo);
        let b = self.start_rows.partition_point(|&(s, _, _)| s <= hi);
        for &(_, end, id) in &self.start_rows[a..b] {
            if end > hi {
                if forward {
                    enter(id);
                } else {
                    exit(id);
                }
            }
        }
        // Running at `lo` but not `hi`: ended inside `(lo, hi]` after
        // starting at or before `lo`. Intervals that both start and end
        // inside the hop appear on neither side.
        let a = self.end_rows.partition_point(|&(e, _, _)| e <= lo);
        let b = self.end_rows.partition_point(|&(e, _, _)| e <= hi);
        for &(_, start, id) in &self.end_rows[a..b] {
            if start <= lo {
                if forward {
                    exit(id);
                } else {
                    enter(id);
                }
            }
        }
    }

    /// Non-empty interval starts, sorted ascending (for event sweeps).
    pub fn sorted_starts(&self) -> &[Timestamp] {
        &self.sorted_starts
    }

    /// Non-empty interval ends, sorted ascending (for event sweeps).
    pub fn sorted_ends(&self) -> &[Timestamp] {
        &self.sorted_ends
    }
}

/// Number of dyadic levels: 64 internal (one per branching bit of the
/// order-mapped `u64` timestamp) plus the unit-interval leaf level 0.
const LEVELS: usize = 65;

/// Maps a timestamp onto `u64` preserving order (two's-complement sign flip),
/// so dyadic-prefix arithmetic works for negative times too.
fn enc(t: Timestamp) -> u64 {
    (t.seconds() as u64) ^ (1u64 << 63)
}

/// The dyadic node a non-empty `[start, end)` interval straddles:
/// `(level, center)` where `center`'s lowest set bit is `level - 1`. Level 0
/// is the unit-interval leaf (`end == start + 1`), keyed by the encoded
/// start itself.
fn node_key(start: Timestamp, end: Timestamp) -> (u8, u64) {
    debug_assert!(start < end);
    let us = enc(start);
    // Last instant the half-open interval contains; `end > start` makes the
    // subtraction safe.
    let ul = enc(Timestamp::new(end.seconds() - 1));
    if us == ul {
        return (0, us);
    }
    // Highest differing bit = the branching level; the center is the shared
    // prefix with that bit set (the dyadic midpoint both endpoints straddle).
    let b = 63 - (us ^ ul).leading_zeros();
    let prefix = if b == 63 {
        0
    } else {
        (us >> (b + 1)) << (b + 1)
    };
    ((b + 1) as u8, prefix | (1u64 << b))
}

/// One dyadic node of the rolling index: the intervals straddling its
/// center, in two ordered sets so a stab only touches matching intervals.
#[derive(Debug, Clone, Default, PartialEq)]
struct RollingNode {
    /// `(start, id)` ascending: for `t <` center, matches are the prefix
    /// with `start <= t`.
    by_start: BTreeSet<(Timestamp, u32)>,
    /// `(end, id)` ascending: for `t >=` center, matches are the suffix
    /// with `end > t`.
    by_end: BTreeSet<(Timestamp, u32)>,
}

/// A **dynamic** stabbing index over half-open `[start, end)` intervals: the
/// online counterpart of the static [`IntervalIndex`], built for live
/// rolling windows that insert, close and evict intervals one at a time.
///
/// Where the static index places each interval on the node of a centered
/// tree built from the batch, this one places it on the node of the
/// **fixed dyadic hierarchy** over the (order-mapped) 64-bit timestamp
/// space: the node whose dyadic midpoint the interval straddles, computed
/// in O(1) from the endpoints' highest differing bit. Each node keeps its
/// straddlers in two ordered sets, so queries touch only matching
/// intervals — exactly the static tree's query discipline, but on a
/// skeleton that never needs rebalancing.
///
/// Complexity contracts (n = currently indexed intervals):
///
/// * [`RollingIntervalIndex::insert`] / [`RollingIntervalIndex::open`] /
///   [`RollingIntervalIndex::close`] / eviction per interval — O(log n).
/// * [`RollingIntervalIndex::stab_with`] /
///   [`RollingIntervalIndex::count_at`] — O(log n + k) for k matches,
///   treating the walk down the ≤ 64 dyadic levels as the constant it is in
///   practice: only levels that currently hold an interval are visited
///   (≤ log₂ of the window's time span — ~17 for a 24 h window), mirroring
///   the root-to-leaf path of the static tree. Long stragglers cannot
///   degrade the bound: they sit on high levels and are matched or skipped
///   by the same prefix test as everything else. **Never** a scan of the
///   window.
///
/// Intervals carry a caller-assigned `u32` id, **unique among currently
/// indexed intervals** (re-inserting an id replaces its previous window).
/// Empty intervals (`end <= start`) are accepted and dropped, matching the
/// static index's query behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingIntervalIndex {
    /// Dyadic `(level, center)` → straddling intervals.
    nodes: BTreeMap<(u8, u64), RollingNode>,
    /// How many closed intervals live on each level, so stabs skip empty
    /// levels without a map lookup.
    level_len: [usize; LEVELS],
    /// id → window, for replacement and eviction.
    closed: BTreeMap<u32, (Timestamp, Timestamp)>,
    /// `(start, id)` ascending over the closed intervals — the entry side
    /// of [`RollingIntervalIndex::running_delta_with`].
    starts: BTreeSet<(Timestamp, u32)>,
    /// `(end, id)` ascending — the eviction queue and the exit side of
    /// [`RollingIntervalIndex::running_delta_with`].
    ends: BTreeSet<(Timestamp, u32)>,
    /// Open (started, not yet closed) intervals: id → start.
    open: BTreeMap<u32, Timestamp>,
    /// `(start, id)` ascending over the open intervals, for stabbing.
    open_by_start: BTreeSet<(Timestamp, u32)>,
}

impl Default for RollingIntervalIndex {
    fn default() -> Self {
        RollingIntervalIndex {
            nodes: BTreeMap::new(),
            level_len: [0; LEVELS],
            closed: BTreeMap::new(),
            starts: BTreeSet::new(),
            ends: BTreeSet::new(),
            open: BTreeMap::new(),
            open_by_start: BTreeSet::new(),
        }
    }
}

impl RollingIntervalIndex {
    /// Creates an empty rolling index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently indexed intervals (closed + open; evicted and
    /// empty ones excluded).
    pub fn len(&self) -> usize {
        self.closed.len() + self.open.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of currently open (unclosed) intervals.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Inserts a closed interval — O(log n). An existing interval (open or
    /// closed) under the same id is replaced; empty intervals (`end <=
    /// start`) just remove any previous entry.
    pub fn insert(&mut self, start: Timestamp, end: Timestamp, id: u32) {
        self.remove(id);
        if start >= end {
            return;
        }
        let key = node_key(start, end);
        let node = self.nodes.entry(key).or_default();
        node.by_start.insert((start, id));
        node.by_end.insert((end, id));
        self.level_len[key.0 as usize] += 1;
        self.closed.insert(id, (start, end));
        self.starts.insert((start, id));
        self.ends.insert((end, id));
    }

    /// Starts a live interval `[start, ∞)` — O(log n). It matches every
    /// stab at `t >= start` until [`RollingIntervalIndex::close`] gives it
    /// an end. Replaces any existing interval under the same id.
    pub fn open(&mut self, start: Timestamp, id: u32) {
        self.remove(id);
        self.open.insert(id, start);
        self.open_by_start.insert((start, id));
    }

    /// Closes the open interval `id` at `end`, moving it into the indexed
    /// set — O(log n). Returns the start time when `id` was open, `None`
    /// otherwise (closing an unknown or already-closed id is a no-op). An
    /// `end` at or before the recorded start drops the interval as empty.
    pub fn close(&mut self, id: u32, end: Timestamp) -> Option<Timestamp> {
        let start = self.open.remove(&id)?;
        self.open_by_start.remove(&(start, id));
        self.insert(start, end, id);
        Some(start)
    }

    /// Removes the interval `id` (open or closed) — O(log n). Returns true
    /// when something was removed.
    pub fn remove(&mut self, id: u32) -> bool {
        if let Some(start) = self.open.remove(&id) {
            self.open_by_start.remove(&(start, id));
            return true;
        }
        let Some((start, end)) = self.closed.remove(&id) else {
            return false;
        };
        self.starts.remove(&(start, id));
        self.ends.remove(&(end, id));
        let key = node_key(start, end);
        if let Some(node) = self.nodes.get_mut(&key) {
            node.by_start.remove(&(start, id));
            node.by_end.remove(&(end, id));
            if node.by_start.is_empty() {
                self.nodes.remove(&key);
            }
        }
        self.level_len[key.0 as usize] -= 1;
        true
    }

    /// Evicts every closed interval that ended at or before `cutoff` (it can
    /// never again match a stab at `t >= cutoff`), returning the evicted
    /// ids in ascending end order — O(log n) per evicted interval. Open
    /// intervals are never evicted: they are still running.
    pub fn evict_before(&mut self, cutoff: Timestamp) -> Vec<u32> {
        let mut evicted = Vec::new();
        while let Some(&(end, id)) = self.ends.iter().next() {
            if end > cutoff {
                break;
            }
            self.remove(id);
            evicted.push(id);
        }
        evicted
    }

    /// Calls `visit` with the id of every interval containing `t`
    /// (`start <= t < end`, open intervals count as unbounded). Order is
    /// unspecified. O(log n + k) — see the type-level contract.
    pub fn stab_with(&self, t: Timestamp, mut visit: impl FnMut(u32)) {
        // Open intervals: contain t iff they started at or before it.
        for &(_, id) in self.open_by_start.range(..=(t, u32::MAX)) {
            visit(id);
        }
        let ut = enc(t);
        // Unit-interval leaves: everything there is exactly [t, t+1).
        if self.level_len[0] > 0 {
            if let Some(node) = self.nodes.get(&(0, ut)) {
                for &(_, id) in &node.by_start {
                    visit(id);
                }
            }
        }
        // Internal levels on t's root-to-leaf dyadic path.
        for b in 0..64u32 {
            if self.level_len[(b + 1) as usize] == 0 {
                continue;
            }
            let prefix = if b == 63 {
                0
            } else {
                (ut >> (b + 1)) << (b + 1)
            };
            let center = prefix | (1u64 << b);
            let Some(node) = self.nodes.get(&((b + 1) as u8, center)) else {
                continue;
            };
            if ut < center {
                // Straddlers end after the center (> t): match iff start <= t.
                for &(_, id) in node.by_start.range(..=(t, u32::MAX)) {
                    visit(id);
                }
            } else if ut > center {
                // Straddlers start at or before the center (<= t): match iff
                // end > t.
                let after = (
                    std::ops::Bound::Excluded((t, u32::MAX)),
                    std::ops::Bound::Unbounded,
                );
                for &(_, id) in node.by_end.range(after) {
                    visit(id);
                }
            } else {
                // t is the center: every straddler contains it.
                for &(_, id) in &node.by_start {
                    visit(id);
                }
            }
        }
    }

    /// The ids of every interval containing `t`, unspecified order.
    pub fn stab(&self, t: Timestamp) -> Vec<u32> {
        let mut out = Vec::new();
        self.stab_with(t, |id| out.push(id));
        out
    }

    /// How many intervals contain `t` — O(log n + k), no allocation.
    pub fn count_at(&self, t: Timestamp) -> usize {
        let mut n = 0usize;
        self.stab_with(t, |_| n += 1);
        n
    }

    /// Calls `enter` with the id of every interval (closed or open) running
    /// at `t1` but not at `t0`, and `exit` with every one running at `t0`
    /// but not at `t1` — the dynamic twin of
    /// [`IntervalIndex::running_delta_with`], with identical semantics
    /// against the **current** index contents.
    ///
    /// Complexity: O(log n + (S + E) log n) for the S starts and E ends
    /// inside the hop — ordered-set range walks plus one window lookup per
    /// candidate; never a scan. Open intervals run unbounded, so they can
    /// only appear on the enter side of a forward hop (or the exit side of
    /// a backward one). Deltas are only meaningful between two queries of
    /// the **same** index state: inserts, closes and evictions in between
    /// invalidate them (callers track state versions for that).
    pub fn running_delta_with(
        &self,
        t0: Timestamp,
        t1: Timestamp,
        mut enter: impl FnMut(u32),
        mut exit: impl FnMut(u32),
    ) {
        use std::ops::Bound::{Excluded, Included};
        let (lo, hi, forward) = if t0 <= t1 {
            (t0, t1, true)
        } else {
            (t1, t0, false)
        };
        if lo == hi {
            return;
        }
        let hop = (Excluded((lo, u32::MAX)), Included((hi, u32::MAX)));
        // Closed intervals that started inside `(lo, hi]` and outlive `hi`.
        for &(_, id) in self.starts.range(hop) {
            let (_, end) = self.closed[&id];
            if end > hi {
                if forward {
                    enter(id);
                } else {
                    exit(id);
                }
            }
        }
        // Closed intervals that ended inside `(lo, hi]` after starting at or
        // before `lo`; both-inside-the-hop intervals appear on neither side.
        for &(_, id) in self.ends.range(hop) {
            let (start, _) = self.closed[&id];
            if start <= lo {
                if forward {
                    exit(id);
                } else {
                    enter(id);
                }
            }
        }
        // Open intervals: running from their start forever, so the hop
        // crosses exactly the ones starting inside `(lo, hi]`.
        for &(_, id) in self.open_by_start.range(hop) {
            if forward {
                enter(id);
            } else {
                exit(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: i64) -> Timestamp {
        Timestamp::new(t)
    }

    fn scan(rows: &[(i64, i64)], t: i64) -> Vec<u32> {
        rows.iter()
            .enumerate()
            .filter(|(_, &(s, e))| s <= t && t < e)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn build(rows: &[(i64, i64)]) -> IntervalIndex {
        IntervalIndex::build(
            rows.iter()
                .enumerate()
                .map(|(i, &(s, e))| (ts(s), ts(e), i as u32)),
        )
    }

    #[test]
    fn stab_matches_linear_scan() {
        let rows = [
            (0, 10),
            (5, 8),
            (5, 20),
            (9, 9), // empty
            (12, 15),
            (-3, 2),
            (2, 3),
            (0, 1000), // straggler spanning everything
        ];
        let idx = build(&rows);
        for t in -5..25 {
            let mut got = idx.stab(ts(t));
            got.sort_unstable();
            assert_eq!(got, scan(&rows, t), "stab at t={t}");
            assert_eq!(idx.count_at(ts(t)), scan(&rows, t).len(), "count at t={t}");
        }
    }

    #[test]
    fn randomized_against_scan() {
        // Deterministic pseudo-random intervals incl. duplicates, empties
        // and stragglers.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<(i64, i64)> = (0..500)
            .map(|_| {
                let s = (next() % 2000) as i64;
                let dur = match next() % 10 {
                    0 => 0,                     // empty
                    1 => 5000,                  // straggler
                    _ => (next() % 120) as i64, // typical
                };
                (s, s + dur)
            })
            .collect();
        let idx = build(&rows);
        for probe in (-10..2200).step_by(17) {
            let mut got = idx.stab(ts(probe));
            got.sort_unstable();
            assert_eq!(got, scan(&rows, probe), "stab at t={probe}");
            assert_eq!(idx.count_at(ts(probe)), scan(&rows, probe).len());
        }
    }

    #[test]
    fn empty_index_behaves() {
        let idx = IntervalIndex::build(std::iter::empty());
        assert!(idx.is_empty());
        assert!(idx.stab(ts(0)).is_empty());
        assert_eq!(idx.count_at(ts(0)), 0);
    }

    #[test]
    fn duplicate_intervals_all_reported() {
        let rows = [(0, 10), (0, 10), (0, 10)];
        let idx = build(&rows);
        assert_eq!(idx.stab(ts(5)).len(), 3);
        assert_eq!(idx.count_at(ts(5)), 3);
        assert_eq!(idx.count_at(ts(10)), 0);
    }

    #[test]
    fn survives_serde_round_trip() {
        let rows = [(0, 10), (5, 8)];
        let idx = build(&rows);
        let v = serde::Serialize::to_value(&idx);
        let back: IntervalIndex = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.stab(ts(6)).len(), 2);
    }

    fn rolling(rows: &[(i64, i64)]) -> RollingIntervalIndex {
        let mut idx = RollingIntervalIndex::new();
        for (i, &(s, e)) in rows.iter().enumerate() {
            idx.insert(ts(s), ts(e), i as u32);
        }
        idx
    }

    #[test]
    fn rolling_stab_matches_linear_scan() {
        let rows = [
            (0, 10),
            (5, 8),
            (5, 20),
            (9, 9), // empty: dropped
            (12, 15),
            (-3, 2),   // negative times cross the sign flip
            (2, 3),    // unit interval (leaf level)
            (0, 1000), // straggler spanning everything
            (-40, 60),
        ];
        let idx = rolling(&rows);
        assert_eq!(idx.len(), rows.len() - 1); // the empty one dropped
        for t in -50..70 {
            let mut got = idx.stab(ts(t));
            got.sort_unstable();
            assert_eq!(got, scan(&rows, t), "stab at t={t}");
            assert_eq!(idx.count_at(ts(t)), scan(&rows, t).len(), "count at t={t}");
        }
    }

    #[test]
    fn rolling_randomized_against_scan_and_static() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<(i64, i64)> = (0..400)
            .map(|_| {
                let s = (next() % 3000) as i64 - 500;
                let dur = match next() % 10 {
                    0 => 0,                     // empty
                    1 => 1,                     // unit (leaf)
                    2 => 7000,                  // straggler
                    _ => (next() % 150) as i64, // typical
                };
                (s, s + dur)
            })
            .collect();
        let dynamic = rolling(&rows);
        let fixed = build(&rows);
        for probe in (-520..2700).step_by(13) {
            let mut got = dynamic.stab(ts(probe));
            got.sort_unstable();
            let mut want = fixed.stab(ts(probe));
            want.sort_unstable();
            assert_eq!(got, want, "rolling vs static at t={probe}");
            assert_eq!(dynamic.count_at(ts(probe)), want.len());
        }
    }

    #[test]
    fn rolling_open_close_lifecycle() {
        let mut idx = RollingIntervalIndex::new();
        idx.open(ts(10), 1);
        assert_eq!(idx.open_len(), 1);
        // Open intervals match any t at or after their start.
        assert!(idx.stab(ts(9)).is_empty());
        assert_eq!(idx.stab(ts(10)), vec![1]);
        assert_eq!(idx.stab(ts(1_000_000)), vec![1]);
        // Closing bounds it.
        assert_eq!(idx.close(1, ts(20)), Some(ts(10)));
        assert_eq!(idx.open_len(), 0);
        assert_eq!(idx.stab(ts(15)), vec![1]);
        assert!(idx.stab(ts(20)).is_empty());
        // Closing again is a no-op; closing unknown ids too.
        assert_eq!(idx.close(1, ts(30)), None);
        assert_eq!(idx.close(99, ts(30)), None);
        // Closing at/before the start drops the interval as empty.
        idx.open(ts(50), 2);
        assert_eq!(idx.close(2, ts(50)), Some(ts(50)));
        assert!(idx.stab(ts(50)).is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn rolling_eviction_drops_only_expired() {
        let rows = [(0, 10), (5, 30), (20, 25), (28, 40)];
        let mut idx = rolling(&rows);
        idx.open(ts(2), 9); // open: never evicted
        let evicted = idx.evict_before(ts(25));
        // Ends <= 25: interval 0 (end 10) and 2 (end 25).
        assert_eq!(evicted, vec![0, 2]);
        assert_eq!(idx.len(), 3);
        // Queries at t >= cutoff are unaffected by eviction.
        for t in 25..45 {
            let mut got = idx.stab(ts(t));
            got.retain(|&id| id != 9);
            got.sort_unstable();
            assert_eq!(got, scan(&rows, t), "post-eviction stab at t={t}");
        }
        assert!(idx.stab(ts(100_000)).contains(&9));
    }

    #[test]
    fn rolling_insert_replaces_same_id() {
        let mut idx = RollingIntervalIndex::new();
        idx.insert(ts(0), ts(10), 7);
        idx.insert(ts(100), ts(110), 7);
        assert_eq!(idx.len(), 1);
        assert!(idx.stab(ts(5)).is_empty());
        assert_eq!(idx.stab(ts(105)), vec![7]);
        // Replacing with an empty window removes it.
        idx.insert(ts(3), ts(3), 7);
        assert!(idx.is_empty());
        assert!(!idx.remove(7));
    }

    /// Scan-derived reference delta: running at t1 minus running at t0 and
    /// vice versa, as sorted id sets.
    fn scan_delta(rows: &[(i64, i64)], t0: i64, t1: i64) -> (Vec<u32>, Vec<u32>) {
        let at0: BTreeSet<u32> = scan(rows, t0).into_iter().collect();
        let at1: BTreeSet<u32> = scan(rows, t1).into_iter().collect();
        (
            at1.difference(&at0).copied().collect(),
            at0.difference(&at1).copied().collect(),
        )
    }

    #[test]
    fn running_delta_matches_scan_on_both_indexes() {
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<(i64, i64)> = (0..300)
            .map(|_| {
                let s = (next() % 2500) as i64 - 300;
                let dur = match next() % 10 {
                    0 => 0,                     // empty: never in any delta
                    1 => 1,                     // unit
                    2 => 6000,                  // straggler
                    _ => (next() % 200) as i64, // typical
                };
                (s, s + dur)
            })
            .collect();
        let fixed = build(&rows);
        let dynamic = rolling(&rows);
        let probes: Vec<i64> = (-400..2900).step_by(97).collect();
        for win in probes.windows(2) {
            for (t0, t1) in [(win[0], win[1]), (win[1], win[0]), (win[0], win[0])] {
                let (want_in, want_out) = scan_delta(&rows, t0, t1);
                // Static index.
                let (mut got_in, mut got_out) = (Vec::new(), Vec::new());
                fixed.running_delta_with(
                    ts(t0),
                    ts(t1),
                    |id| got_in.push(id),
                    |id| got_out.push(id),
                );
                got_in.sort_unstable();
                got_out.sort_unstable();
                assert_eq!(got_in, want_in, "static enter {t0}->{t1}");
                assert_eq!(got_out, want_out, "static exit {t0}->{t1}");
                // Rolling index.
                let (mut got_in, mut got_out) = (Vec::new(), Vec::new());
                dynamic.running_delta_with(
                    ts(t0),
                    ts(t1),
                    |id| got_in.push(id),
                    |id| got_out.push(id),
                );
                got_in.sort_unstable();
                got_out.sort_unstable();
                assert_eq!(got_in, want_in, "rolling enter {t0}->{t1}");
                assert_eq!(got_out, want_out, "rolling exit {t0}->{t1}");
            }
        }
    }

    #[test]
    fn running_delta_covers_open_intervals() {
        let mut idx = RollingIntervalIndex::new();
        idx.insert(ts(0), ts(100), 0);
        idx.open(ts(50), 1);
        let delta = |idx: &RollingIntervalIndex, t0: i64, t1: i64| {
            let (mut i, mut o) = (Vec::new(), Vec::new());
            idx.running_delta_with(ts(t0), ts(t1), |id| i.push(id), |id| o.push(id));
            i.sort_unstable();
            o.sort_unstable();
            (i, o)
        };
        // Forward across the open start: it enters and never exits.
        assert_eq!(delta(&idx, 40, 60), (vec![1], vec![]));
        assert_eq!(delta(&idx, 60, 1_000_000), (vec![], vec![0]));
        // Backward across it: it exits.
        assert_eq!(delta(&idx, 60, 40), (vec![], vec![1]));
        // Closing it turns the far hop into a normal exit.
        idx.close(1, ts(80));
        assert_eq!(delta(&idx, 60, 90), (vec![], vec![1]));
        // An interval both entering and leaving inside the hop is invisible.
        assert_eq!(delta(&idx, -10, 1_000_000), (vec![], vec![]));
    }

    #[test]
    fn rolling_duplicate_windows_distinct_ids() {
        let mut idx = RollingIntervalIndex::new();
        for id in 0..3 {
            idx.insert(ts(0), ts(10), id);
        }
        assert_eq!(idx.count_at(ts(5)), 3);
        assert_eq!(idx.count_at(ts(10)), 0);
        assert!(idx.remove(1));
        assert_eq!(idx.count_at(ts(5)), 2);
    }
}
