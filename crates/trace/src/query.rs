//! Convenience queries and roll-ups over a [`crate::TraceDataset`].
//!
//! These are ergonomic wrappers the views and examples reach for: "the N
//! busiest machines at t", "a job's full timeline", "which machines a job
//! touched". They live in their own module so the core dataset API stays
//! small while downstream code gets rich, intention-revealing helpers.

use crate::{JobId, MachineId, Metric, TaskId, TimeRange, Timestamp, TraceDataset, Utilization};

/// One entry of a busiest-machines ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineLoad {
    /// The machine.
    pub machine: MachineId,
    /// Its mean-of-triple utilization at the query time.
    pub utilization: Utilization,
    /// Instances running on it at the query time.
    pub instances: usize,
}

/// The `n` busiest machines at `t`, by mean utilization, descending. Machines
/// without usage data at `t` are excluded.
pub fn busiest_machines(ds: &TraceDataset, t: Timestamp, n: usize) -> Vec<MachineLoad> {
    let mut loads: Vec<MachineLoad> = ds
        .machines()
        .filter_map(|m| {
            let u = m.util_at(t)?;
            let instances = m.running_instances_at(t);
            Some(MachineLoad {
                machine: m.id(),
                utilization: u.mean(),
                instances,
            })
        })
        .collect();
    loads.sort_by(|a, b| {
        b.utilization
            .fraction()
            .partial_cmp(&a.utilization.fraction())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.machine.cmp(&b.machine))
    });
    loads.truncate(n);
    loads
}

/// A task's observed execution window (min start … max end of its instances).
pub fn task_window(ds: &TraceDataset, job: JobId, task: TaskId) -> Option<TimeRange> {
    let job_view = ds.job(job)?;
    let tv = job_view.tasks().find(|t| t.id() == task)?;
    let start = tv.observed_start()?;
    let end = tv.observed_end()?;
    TimeRange::new(start, end.max(start + crate::TimeDelta::seconds(1))).ok()
}

/// A job's observed execution window (union of its tasks).
pub fn job_window(ds: &TraceDataset, job: JobId) -> Option<TimeRange> {
    ds.job(job)?.lifetime()
}

/// The distinct machines a job touched over its whole lifetime.
pub fn job_footprint(ds: &TraceDataset, job: JobId) -> Vec<MachineId> {
    ds.job(job).map(|j| j.machines()).unwrap_or_default()
}

/// Peak concurrent instance count on `machine` over the whole trace.
pub fn machine_peak_concurrency(ds: &TraceDataset, machine: MachineId) -> usize {
    let Some(m) = ds.machine(machine) else {
        return 0;
    };
    crate::stats::max_concurrency(
        m.instances()
            .map(|i| (i.record.start_time, i.record.end_time)),
    )
}

/// The single hottest `(machine, metric, value, time)` sample over `window`,
/// scanning every machine's series through borrowed views — no allocation
/// per machine per metric. `None` for an empty dataset/window.
pub fn hottest_sample(
    ds: &TraceDataset,
    window: &TimeRange,
) -> Option<(MachineId, Metric, f64, Timestamp)> {
    let mut best: Option<(MachineId, Metric, f64, Timestamp)> = None;
    for m in ds.machines() {
        for metric in Metric::ALL {
            let Some(series) = m.usage(metric) else {
                continue;
            };
            for (t, v) in series.slice_view(window).iter() {
                if best.is_none_or(|(_, _, bv, _)| v > bv) {
                    best = Some((m.id(), metric, v, t));
                }
            }
        }
    }
    best
}

/// Windowed summary statistics for one machine/metric without copying the
/// series — the view-based counterpart of slicing then calling `stats`.
pub fn stats_in(
    ds: &TraceDataset,
    machine: MachineId,
    metric: Metric,
    window: &TimeRange,
) -> Option<crate::SeriesStats> {
    ds.machine(machine)?
        .usage(metric)?
        .slice_view(window)
        .stats()
}

/// Total instance-seconds of work executed on `machine` (a crude "how much
/// did this node do" measure).
pub fn machine_instance_seconds(ds: &TraceDataset, machine: MachineId) -> i64 {
    let Some(m) = ds.machine(machine) else {
        return 0;
    };
    m.instances()
        .map(|i| {
            (i.record.end_time - i.record.start_time)
                .as_seconds()
                .max(0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BatchInstanceRecord, BatchTaskRecord, ServerUsageRecord, TaskStatus, TraceDatasetBuilder,
        UtilizationTriple,
    };

    fn dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        // job 1, one task, 3 instances on machines 0,1,2.
        b.push_task(BatchTaskRecord {
            create_time: Timestamp::new(0),
            modify_time: Timestamp::new(1000),
            job: JobId::new(1),
            task: TaskId::new(1),
            instance_count: 3,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        });
        for m in 0..3u32 {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(0),
                end_time: Timestamp::new(1000),
                job: JobId::new(1),
                task: TaskId::new(1),
                seq: m,
                total: 3,
                machine: MachineId::new(m),
                status: TaskStatus::Terminated,
                cpu_avg: 0.3,
                cpu_max: 0.5,
                mem_avg: 0.2,
                mem_max: 0.4,
            });
        }
        for t in [0i64, 300, 600, 900] {
            for m in 0..3u32 {
                // Machine m runs hotter the higher its id.
                let level = 0.2 + 0.2 * m as f64;
                b.push_usage(ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(m),
                    util: UtilizationTriple::clamped(level, level, level),
                });
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn busiest_ranks_descending() {
        let ds = dataset();
        let top = busiest_machines(&ds, Timestamp::new(300), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].machine, MachineId::new(2));
        assert_eq!(top[1].machine, MachineId::new(1));
        assert!(top[0].utilization.fraction() > top[1].utilization.fraction());
        assert_eq!(top[0].instances, 1);
    }

    #[test]
    fn windows_and_footprint() {
        let ds = dataset();
        let jw = job_window(&ds, JobId::new(1)).unwrap();
        assert_eq!(jw.start(), Timestamp::new(0));
        let tw = task_window(&ds, JobId::new(1), TaskId::new(1)).unwrap();
        assert_eq!(tw.end(), Timestamp::new(1000));
        assert_eq!(
            job_footprint(&ds, JobId::new(1)),
            vec![MachineId::new(0), MachineId::new(1), MachineId::new(2)]
        );
        assert!(job_window(&ds, JobId::new(99)).is_none());
    }

    #[test]
    fn peak_concurrency_and_instance_seconds() {
        let ds = dataset();
        // Each machine runs exactly one instance here.
        assert_eq!(machine_peak_concurrency(&ds, MachineId::new(0)), 1);
        assert_eq!(machine_instance_seconds(&ds, MachineId::new(0)), 1000);
        assert_eq!(machine_peak_concurrency(&ds, MachineId::new(99)), 0);
    }

    #[test]
    fn hottest_sample_found() {
        let ds = dataset();
        let (m, _metric, v, _t) = hottest_sample(&ds, &ds.span().unwrap()).unwrap();
        assert_eq!(m, MachineId::new(2)); // hottest machine
        assert!((v - 0.6).abs() < 1e-9);
    }

    #[test]
    fn windowed_stats_match_sliced_series() {
        let ds = dataset();
        let window = TimeRange::new(Timestamp::new(300), Timestamp::new(900)).unwrap();
        let viewed = stats_in(&ds, MachineId::new(1), Metric::Cpu, &window).unwrap();
        let sliced = ds
            .machine(MachineId::new(1))
            .unwrap()
            .usage(Metric::Cpu)
            .unwrap()
            .slice(&window)
            .stats()
            .unwrap();
        assert_eq!(viewed, sliced);
        assert!(stats_in(&ds, MachineId::new(99), Metric::Cpu, &window).is_none());
    }

    #[test]
    fn empty_queries() {
        let ds = TraceDatasetBuilder::new().build().unwrap();
        assert!(busiest_machines(&ds, Timestamp::ZERO, 5).is_empty());
        assert!(hottest_sample(&ds, &TimeRange::full_day()).is_none());
    }
}
