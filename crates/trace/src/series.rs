use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::{TimeDelta, TimeRange, Timestamp, TraceError};

/// A time-ordered series of `(Timestamp, f64)` samples.
///
/// This is the workhorse behind every line chart in BatchLens: per-machine
/// metric series, per-job aggregates and the system-wide timeline are all
/// `TimeSeries`. Samples are kept sorted by timestamp; duplicate timestamps
/// are rejected at push time so lookups are unambiguous.
///
/// Values are plain `f64` rather than [`crate::Utilization`] so the type can
/// also carry derived quantities (z-scores, EWMA residuals, counts).
///
/// # Example
///
/// ```
/// use batchlens_trace::{TimeSeries, Timestamp, TimeDelta, TimeRange};
///
/// let mut s = TimeSeries::new();
/// for i in 0..10 {
///     s.push(Timestamp::new(i * 60), i as f64)?;
/// }
/// let window = TimeRange::new(Timestamp::new(120), Timestamp::new(300))?;
/// let cut = s.slice(&window);
/// assert_eq!(cut.len(), 3); // t=120, 180, 240
/// # Ok::<(), batchlens_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<Timestamp>,
    values: Vec<f64>,
}

/// How [`TimeSeries::resample`] combines the samples that fall into a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resample {
    /// Arithmetic mean of the bucket.
    Mean,
    /// Maximum of the bucket.
    Max,
    /// Minimum of the bucket.
    Min,
    /// Last sample in the bucket (sample-and-hold downsampling).
    Last,
    /// Sum of the bucket (for counts/loads).
    Sum,
}

/// Summary statistics of a series or a window of it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl SeriesStats {
    fn from_values<'a, I: IntoIterator<Item = &'a f64>>(values: I) -> Option<SeriesStats> {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for &v in values {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sum_sq += v * v;
        }
        if count == 0 {
            return None;
        }
        let n = count as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        Some(SeriesStats {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        })
    }
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Builds a series from unordered `(t, v)` pairs, sorting by time.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnorderedSamples`] if two samples share a
    /// timestamp (the series would be ambiguous).
    pub fn from_samples<I>(samples: I) -> Result<Self, TraceError>
    where
        I: IntoIterator<Item = (Timestamp, f64)>,
    {
        let mut pairs: Vec<(Timestamp, f64)> = samples.into_iter().collect();
        pairs.sort_by_key(|(t, _)| *t);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(TraceError::UnorderedSamples {
                    previous: w[0].0,
                    offending: w[1].0,
                });
            }
        }
        let mut s = TimeSeries::with_capacity(pairs.len());
        for (t, v) in pairs {
            s.times.push(t);
            s.values.push(v);
        }
        Ok(s)
    }

    /// Builds a series from parts the caller has already verified to be
    /// strictly time-ascending and equal-length — the segment-store fast
    /// path, which checks order while scanning the mapped time column and
    /// must not pay for a second sort-and-scan here.
    pub(crate) fn from_sorted_parts(times: Vec<Timestamp>, values: Vec<f64>) -> TimeSeries {
        debug_assert_eq!(times.len(), values.len());
        debug_assert!(times.windows(2).all(|w| w[0] < w[1]));
        TimeSeries { times, values }
    }

    /// Appends a sample; timestamps must be strictly increasing.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnorderedSamples`] when `t` is not after the
    /// last timestamp.
    pub fn push(&mut self, t: Timestamp, value: f64) -> Result<(), TraceError> {
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(TraceError::UnorderedSamples {
                    previous: last,
                    offending: t,
                });
            }
        }
        self.times.push(t);
        self.values.push(value);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The timestamps, sorted ascending.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// The values, parallel to [`TimeSeries::times`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(timestamp, value)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<(Timestamp, f64)> {
        Some((*self.times.first()?, *self.values.first()?))
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(Timestamp, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// The closed span `[first, last]` as a half-open range `[first, last+1)`,
    /// or `None` when empty.
    pub fn span(&self) -> Option<TimeRange> {
        let (first, _) = self.first()?;
        let (last, _) = self.last()?;
        TimeRange::new(first, last + TimeDelta::seconds(1)).ok()
    }

    /// Exact-match lookup.
    pub fn value_at(&self, t: Timestamp) -> Option<f64> {
        let i = self.times.binary_search(&t).ok()?;
        Some(self.values[i])
    }

    /// Sample-and-hold lookup: the value of the latest sample at or before
    /// `t`, or `None` when `t` precedes the first sample.
    ///
    /// This matches how a 300 s-resolution trace is read: between reports the
    /// previous report stands.
    pub fn value_at_or_before(&self, t: Timestamp) -> Option<f64> {
        match self.times.binary_search(&t) {
            Ok(i) => Some(self.values[i]),
            Err(0) => None,
            Err(i) => Some(self.values[i - 1]),
        }
    }

    /// Linear interpolation at `t`; clamps to the boundary values outside the
    /// sampled span. `None` on an empty series.
    pub fn interpolate(&self, t: Timestamp) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        match self.times.binary_search(&t) {
            Ok(i) => Some(self.values[i]),
            Err(0) => Some(self.values[0]),
            Err(i) if i == self.len() => Some(self.values[self.len() - 1]),
            Err(i) => {
                let (t0, v0) = (self.times[i - 1], self.values[i - 1]);
                let (t1, v1) = (self.times[i], self.values[i]);
                let span = (t1 - t0).as_secs_f64();
                let frac = (t - t0).as_secs_f64() / span;
                Some(v0 + (v1 - v0) * frac)
            }
        }
    }

    /// Copies the samples whose timestamps fall inside `range` (half-open).
    ///
    /// Prefer [`TimeSeries::slice_view`] on hot paths — it borrows instead
    /// of copying.
    pub fn slice(&self, range: &TimeRange) -> TimeSeries {
        self.slice_view(range).to_owned()
    }

    /// A borrowed view of the whole series.
    pub fn view(&self) -> SeriesView<'_> {
        SeriesView {
            times: &self.times,
            values: &self.values,
        }
    }

    /// A borrowed view of the samples inside `range` (half-open). No
    /// allocation: window scans over many machines should use this instead
    /// of [`TimeSeries::slice`].
    pub fn slice_view(&self, range: &TimeRange) -> SeriesView<'_> {
        let start = self.times.partition_point(|&t| t < range.start());
        let end = self.times.partition_point(|&t| t < range.end());
        SeriesView {
            times: &self.times[start..end],
            values: &self.values[start..end],
        }
    }

    /// Re-buckets the series onto a regular grid of `resolution`, combining
    /// each bucket's samples with `how`. Empty buckets produce no sample.
    ///
    /// Bucket `k` covers `[k*resolution, (k+1)*resolution)` and is stamped at
    /// its left edge, matching the trace's reporting convention.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidResolution`] for non-positive resolutions.
    pub fn resample(&self, resolution: TimeDelta, how: Resample) -> Result<TimeSeries, TraceError> {
        if !resolution.is_positive() {
            return Err(TraceError::InvalidResolution {
                seconds: resolution.as_seconds(),
            });
        }
        let mut out = TimeSeries::new();
        let mut i = 0usize;
        while i < self.len() {
            let bucket_start = self.times[i].align_down(resolution)?;
            let bucket_end = bucket_start + resolution;
            let mut j = i;
            while j < self.len() && self.times[j] < bucket_end {
                j += 1;
            }
            let bucket = &self.values[i..j];
            let v = match how {
                Resample::Mean => bucket.iter().sum::<f64>() / bucket.len() as f64,
                Resample::Max => bucket.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Resample::Min => bucket.iter().copied().fold(f64::INFINITY, f64::min),
                Resample::Last => bucket[bucket.len() - 1],
                Resample::Sum => bucket.iter().sum::<f64>(),
            };
            out.push(bucket_start, v)?;
            i = j;
        }
        Ok(out)
    }

    /// Summary statistics over the whole series; `None` when empty.
    pub fn stats(&self) -> Option<SeriesStats> {
        SeriesStats::from_values(&self.values)
    }

    /// Summary statistics over a window; `None` when the window is empty.
    pub fn stats_in(&self, range: &TimeRange) -> Option<SeriesStats> {
        let start = self.times.partition_point(|&t| t < range.start());
        let end = self.times.partition_point(|&t| t < range.end());
        SeriesStats::from_values(&self.values[start..end])
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
    /// statistics; `None` when empty or `q` is out of range / NaN.
    ///
    /// Runs in O(n) expected time via selection rather than a full sort.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() || q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut scratch = self.values.clone();
        Some(quantile_select(&mut scratch, q))
    }

    /// Maps every value through `f`, keeping timestamps.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> TimeSeries {
        TimeSeries {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Pointwise mean of many series evaluated on the union of their time
    /// grids using sample-and-hold semantics. Series that have not started
    /// yet at a grid point do not contribute there.
    ///
    /// This is the aggregation behind the paper's system-wide timeline view.
    /// It runs a single k-way merge sweep holding one cursor per series —
    /// O(total samples · log M) for M series — instead of a binary search
    /// per series per union-grid point.
    pub fn mean_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        sweep_aggregate(series, MeanAccum::default())
    }

    /// Pointwise sum of many series on the union grid (sample-and-hold),
    /// by the same sweep as [`TimeSeries::mean_of`]. Series that have not
    /// started yet contribute nothing.
    pub fn sum_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        sweep_aggregate(series, SumAccum::default())
    }

    /// Pointwise maximum of many series on the union grid (sample-and-hold),
    /// by the same sweep as [`TimeSeries::mean_of`]. The running maximum is
    /// maintained in an ordered multiset, so one series dropping from the
    /// top never forces a rescan of the others.
    pub fn max_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        sweep_aggregate(series, MaxAccum::default())
    }

    /// Pointwise difference `self - other` on `self`'s grid using
    /// sample-and-hold lookups into `other`; grid points where `other` has
    /// no value yet are skipped.
    ///
    /// A two-cursor merge: O(n + m) instead of a binary search into `other`
    /// per sample of `self`.
    #[must_use]
    pub fn sub_series(&self, other: &TimeSeries) -> TimeSeries {
        let mut out = TimeSeries::with_capacity(self.len());
        let mut j = 0usize; // first index of `other` with time > t
        for (t, v) in self.iter() {
            while j < other.len() && other.times[j] <= t {
                j += 1;
            }
            if j > 0 {
                out.push(t, v - other.values[j - 1])
                    .expect("self grid is strictly increasing");
            }
        }
        out
    }
}

/// Interpolated `q`-quantile of `values` by in-place selection — O(n)
/// expected, no full sort. Shared by [`TimeSeries::quantile`] and the
/// median/MAD paths in the analytics crate.
///
/// # Panics
///
/// Panics when `values` is empty or `q` is outside `[0, 1]` / NaN.
pub fn quantile_select(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction {q} outside [0, 1]"
    );
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let (_, &mut lo_v, rest) = values.select_nth_unstable_by(lo, f64::total_cmp);
    let frac = pos - lo as f64;
    if frac == 0.0 {
        return lo_v;
    }
    // The hi = lo+1 order statistic is the minimum of the right partition.
    let hi_v = rest.iter().copied().fold(f64::INFINITY, f64::min);
    lo_v + (hi_v - lo_v) * frac
}

// ------------------------------------------------------- k-way merge sweep --

/// Folds the per-series sample-and-hold state of a sweep into one output
/// value per union-grid point.
trait SweepAccum {
    /// A series produced its first sample, `new`.
    fn enter(&mut self, new: f64);
    /// A started series moved from value `old` to `new`.
    fn update(&mut self, old: f64, new: f64);
    /// The aggregate over the currently started series.
    fn emit(&self) -> f64;
}

#[derive(Default)]
struct MeanAccum {
    sum: f64,
    count: usize,
}

impl SweepAccum for MeanAccum {
    fn enter(&mut self, new: f64) {
        self.sum += new;
        self.count += 1;
    }
    fn update(&mut self, old: f64, new: f64) {
        self.sum += new - old;
    }
    fn emit(&self) -> f64 {
        self.sum / self.count as f64
    }
}

#[derive(Default)]
struct SumAccum {
    sum: f64,
}

impl SweepAccum for SumAccum {
    fn enter(&mut self, new: f64) {
        self.sum += new;
    }
    fn update(&mut self, old: f64, new: f64) {
        self.sum += new - old;
    }
    fn emit(&self) -> f64 {
        self.sum
    }
}

/// Ordered multiset of the started series' current values (total order over
/// f64 bits), so the maximum survives arbitrary per-series updates.
#[derive(Default)]
struct MaxAccum {
    values: std::collections::BTreeMap<u64, u32>,
}

/// Monotone bijection from f64 to u64 preserving `total_cmp` order.
fn f64_order_key(v: f64) -> u64 {
    let bits = v.to_bits();
    bits ^ (((bits as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

fn f64_from_order_key(k: u64) -> f64 {
    let bits = k ^ ((((k ^ 0x8000_0000_0000_0000) as i64 >> 63) as u64) | 0x8000_0000_0000_0000);
    f64::from_bits(bits)
}

impl SweepAccum for MaxAccum {
    fn enter(&mut self, new: f64) {
        *self.values.entry(f64_order_key(new)).or_insert(0) += 1;
    }
    fn update(&mut self, old: f64, new: f64) {
        let old_key = f64_order_key(old);
        if let Some(n) = self.values.get_mut(&old_key) {
            *n -= 1;
            if *n == 0 {
                self.values.remove(&old_key);
            }
        }
        self.enter(new);
    }
    fn emit(&self) -> f64 {
        self.values
            .keys()
            .next_back()
            .copied()
            .map(f64_from_order_key)
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// The shared k-way merge loop behind both the serial sweeps and the
/// parallel chunk partials: one cursor per series, a min-heap of `(next
/// time, series)`, and a running accumulator over the started series'
/// current values. Calls `emit(t, &acc)` once per distinct timestamp in the
/// union grid, after every sample stamped exactly `t` has been consumed.
fn kway_sweep<A: SweepAccum>(
    series: &[&TimeSeries],
    acc: &mut A,
    mut emit: impl FnMut(Timestamp, &A),
) {
    let mut heap: BinaryHeap<Reverse<(Timestamp, usize)>> = series
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| Reverse((s.times[0], i)))
        .collect();
    // cursor[i] = index of the *next* unconsumed sample of series i.
    let mut cursor = vec![0usize; series.len()];
    let mut current = vec![0.0f64; series.len()];
    while let Some(&Reverse((t, _))) = heap.peek() {
        // Consume every series sample stamped exactly `t`.
        while let Some(mut top) = heap.peek_mut() {
            let Reverse((next_t, i)) = *top;
            if next_t != t {
                break;
            }
            let j = cursor[i];
            let new = series[i].values[j];
            if j == 0 {
                acc.enter(new);
            } else {
                acc.update(current[i], new);
            }
            current[i] = new;
            cursor[i] = j + 1;
            if j + 1 < series[i].len() {
                // Replace the root in place: one sift instead of pop+push.
                *top = Reverse((series[i].times[j + 1], i));
            } else {
                std::collections::binary_heap::PeekMut::pop(top);
            }
        }
        emit(t, acc);
    }
}

/// [`kway_sweep`] finalized per grid point into a series — the serial
/// `mean_of`/`sum_of`/`max_of` driver.
fn sweep_aggregate<'a, I, A>(series: I, mut acc: A) -> TimeSeries
where
    I: IntoIterator<Item = &'a TimeSeries>,
    A: SweepAccum,
{
    let series: Vec<&TimeSeries> = series.into_iter().filter(|s| !s.is_empty()).collect();
    let total: usize = series.iter().map(|s| s.len()).sum();
    let mut out = TimeSeries::with_capacity(total.min(1 << 20));
    kway_sweep(&series, &mut acc, |t, acc| {
        // Union grid timestamps strictly increase across iterations.
        out.push(t, acc.emit())
            .expect("sweep emits strictly increasing grid");
    });
    out
}

// ---------------------------------------------- parallel chunk-merge sweep --

/// Series per leaf chunk of the parallel aggregation tree. Fixed (never a
/// function of the thread count) so the reduction graph — and therefore
/// every floating-point result — is identical at any pool size.
const PAR_SERIES_CHUNK: usize = 64;

/// Which reduction a partial sweep carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParOp {
    Mean,
    Sum,
    Max,
}

/// A chunk's sweep state sampled at each of its union-grid points: the
/// running `(value, started-count)` pair that two chunks can combine
/// pointwise with sample-and-hold semantics.
#[derive(Debug, Clone, Default)]
struct PartialSweep {
    times: Vec<Timestamp>,
    values: Vec<f64>,
    counts: Vec<u32>,
}

/// The chunk accumulator: the same enter/update/emit algebra as the serial
/// accumulators (it delegates to [`MaxAccum`] for max and mirrors
/// `MeanAccum`/`SumAccum`'s running sum for the additive ops), plus the
/// started-series count the combine step needs.
struct PartAccum {
    op: ParOp,
    sum: f64,
    count: u32,
    max: MaxAccum,
}

impl SweepAccum for PartAccum {
    fn enter(&mut self, new: f64) {
        self.count += 1;
        match self.op {
            ParOp::Mean | ParOp::Sum => self.sum += new,
            ParOp::Max => self.max.enter(new),
        }
    }
    fn update(&mut self, old: f64, new: f64) {
        match self.op {
            ParOp::Mean | ParOp::Sum => self.sum += new - old,
            ParOp::Max => self.max.update(old, new),
        }
    }
    fn emit(&self) -> f64 {
        match self.op {
            ParOp::Mean | ParOp::Sum => self.sum,
            ParOp::Max => self.max.emit(),
        }
    }
}

/// Runs the [`kway_sweep`] over one chunk, emitting the partial accumulator
/// state instead of the finalized aggregate.
fn partial_sweep(series: &[&TimeSeries], op: ParOp) -> PartialSweep {
    let mut acc = PartAccum {
        op,
        sum: 0.0,
        count: 0,
        max: MaxAccum::default(),
    };
    let mut out = PartialSweep::default();
    kway_sweep(series, &mut acc, |t, acc| {
        out.times.push(t);
        out.values.push(acc.emit());
        out.counts.push(acc.count);
    });
    out
}

/// Combines two partial sweeps on the union of their grids with
/// sample-and-hold semantics: a side that has not started yet at a grid
/// point contributes nothing there. The left operand always folds first
/// (`left + right` for sums), so the combine tree fixes the floating-point
/// order.
fn combine_partials(a: &PartialSweep, b: &PartialSweep, op: ParOp) -> PartialSweep {
    let mut out = PartialSweep {
        times: Vec::with_capacity(a.times.len() + b.times.len()),
        values: Vec::with_capacity(a.times.len() + b.times.len()),
        counts: Vec::with_capacity(a.times.len() + b.times.len()),
    };
    let (mut i, mut j) = (0usize, 0usize);
    let mut a_cur: Option<(f64, u32)> = None;
    let mut b_cur: Option<(f64, u32)> = None;
    while i < a.times.len() || j < b.times.len() {
        let ta = a.times.get(i).copied();
        let tb = b.times.get(j).copied();
        let t = match (ta, tb) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => unreachable!("loop condition"),
        };
        if ta == Some(t) {
            a_cur = Some((a.values[i], a.counts[i]));
            i += 1;
        }
        if tb == Some(t) {
            b_cur = Some((b.values[j], b.counts[j]));
            j += 1;
        }
        let (v, n) = match (a_cur, b_cur) {
            (Some((va, na)), Some((vb, nb))) => {
                let v = match op {
                    ParOp::Mean | ParOp::Sum => va + vb,
                    // Match MaxAccum's total_cmp ordering exactly.
                    ParOp::Max => {
                        if va.total_cmp(&vb) == std::cmp::Ordering::Less {
                            vb
                        } else {
                            va
                        }
                    }
                };
                (v, na + nb)
            }
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => unreachable!("t came from one of the sides"),
        };
        out.times.push(t);
        out.values.push(v);
        out.counts.push(n);
    }
    out
}

/// Finalizes a fully combined partial sweep into the aggregate series.
fn finalize_partial(p: PartialSweep, op: ParOp) -> TimeSeries {
    let values = match op {
        ParOp::Mean => p
            .values
            .iter()
            .zip(&p.counts)
            .map(|(&s, &n)| s / n as f64)
            .collect(),
        ParOp::Sum | ParOp::Max => p.values,
    };
    TimeSeries {
        times: p.times,
        values,
    }
}

/// The shared chunk-merge driver behind the `*_of_par` aggregations.
///
/// The series list is split into fixed [`PAR_SERIES_CHUNK`]-sized chunks;
/// each chunk runs the k-way merge sweep to a partial state series, and the
/// partials fold in a fixed pairwise tree (`(c0+c1) + (c2+c3) + …`). Both
/// levels fan out across `threads` workers, but the reduction graph depends
/// only on the input, so the output is **bit-identical at every thread
/// count** — including the `threads = 1` serial fallback, which runs the
/// same graph inline. With a single chunk (≤ 64 series) the result is also
/// bit-identical to the serial [`TimeSeries::mean_of`]-family sweep; above
/// that, per-point sums associate differently (same values up to float
/// rounding), which is why the timeline paths use the `_par` kernels for
/// *both* their serial and parallel modes.
fn sweep_aggregate_par(series: &[&TimeSeries], op: ParOp, threads: usize) -> TimeSeries {
    let chunks = batchlens_exec::fixed_chunks(series.len(), PAR_SERIES_CHUNK);
    if chunks.is_empty() {
        return TimeSeries::new();
    }
    let mut partials: Vec<PartialSweep> = batchlens_exec::run_indexed(threads, chunks.len(), |c| {
        let (lo, hi) = chunks[c];
        partial_sweep(&series[lo..hi], op)
    });
    while partials.len() > 1 {
        let pairs = partials.len() / 2;
        let mut next = batchlens_exec::run_indexed(threads, pairs, |p| {
            combine_partials(&partials[2 * p], &partials[2 * p + 1], op)
        });
        if partials.len() % 2 == 1 {
            next.push(partials.pop().expect("odd leftover"));
        }
        partials = next;
    }
    finalize_partial(partials.pop().expect("at least one chunk"), op)
}

impl TimeSeries {
    /// Parallel [`TimeSeries::mean_of`]: the union-grid sample-and-hold mean
    /// computed by the fixed chunk-merge tree described in the module's
    /// parallel section, fanned out across `threads` workers
    /// (`threads = 0` uses [`batchlens_exec::default_threads`]).
    ///
    /// O(total samples · log chunk-size) sweep work split across workers
    /// plus O(union-grid · log chunks) combine work; deterministic and
    /// bit-identical at every thread count.
    pub fn mean_of_par<'a, I>(series: I, threads: usize) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let series: Vec<&TimeSeries> = series.into_iter().collect();
        sweep_aggregate_par(&series, ParOp::Mean, threads)
    }

    /// Parallel [`TimeSeries::sum_of`] by the same chunk-merge tree as
    /// [`TimeSeries::mean_of_par`]; deterministic and bit-identical at every
    /// thread count.
    pub fn sum_of_par<'a, I>(series: I, threads: usize) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let series: Vec<&TimeSeries> = series.into_iter().collect();
        sweep_aggregate_par(&series, ParOp::Sum, threads)
    }

    /// Parallel [`TimeSeries::max_of`] by the same chunk-merge tree as
    /// [`TimeSeries::mean_of_par`]. The chunk maxima combine with
    /// `total_cmp`, exactly like the serial ordered-multiset accumulator, so
    /// this one is bit-identical to the serial sweep at *any* chunk count —
    /// max is associative.
    pub fn max_of_par<'a, I>(series: I, threads: usize) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let series: Vec<&TimeSeries> = series.into_iter().collect();
        sweep_aggregate_par(&series, ParOp::Max, threads)
    }
}

/// A borrowed, zero-copy window over a [`TimeSeries`].
///
/// Window scans that previously cloned sub-series per machine per metric
/// (hottest-sample search, windowed stats) borrow the underlying sample
/// storage instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesView<'a> {
    times: &'a [Timestamp],
    values: &'a [f64],
}

impl<'a> SeriesView<'a> {
    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The timestamps, sorted ascending.
    pub fn times(&self) -> &'a [Timestamp] {
        self.times
    }

    /// The values, parallel to [`SeriesView::times`].
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Iterates `(timestamp, value)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + 'a {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<(Timestamp, f64)> {
        Some((*self.times.first()?, *self.values.first()?))
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(Timestamp, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Narrows the view to `range` (half-open), still without copying.
    pub fn slice(&self, range: &TimeRange) -> SeriesView<'a> {
        let start = self.times.partition_point(|&t| t < range.start());
        let end = self.times.partition_point(|&t| t < range.end());
        SeriesView {
            times: &self.times[start..end],
            values: &self.values[start..end],
        }
    }

    /// Summary statistics over the view; `None` when empty.
    pub fn stats(&self) -> Option<SeriesStats> {
        SeriesStats::from_values(self.values)
    }

    /// Copies the view into an owned series.
    pub fn to_owned(&self) -> TimeSeries {
        TimeSeries {
            times: self.times.to_vec(),
            values: self.values.to_vec(),
        }
    }
}

/// Reference implementations of the aggregation kernels, kept for
/// differential testing and as benchmark baselines.
///
/// These are the pre-sweep algorithms: a union grid with one binary search
/// per series per grid point. They are O(G·M·log S) where the sweep kernels
/// are O(total · log M) — do not call them on hot paths.
pub mod naive {
    use super::{TimeSeries, Timestamp};

    /// Reference [`TimeSeries::mean_of`].
    pub fn mean_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
        I::IntoIter: Clone,
    {
        let iter = series.into_iter();
        let mut out = TimeSeries::with_capacity(0);
        for t in union_grid(iter.clone()) {
            let mut sum = 0.0;
            let mut n = 0usize;
            for s in iter.clone() {
                if let Some(v) = s.value_at_or_before(t) {
                    sum += v;
                    n += 1;
                }
            }
            if n > 0 {
                out.push(t, sum / n as f64)
                    .expect("grid is strictly increasing");
            }
        }
        out
    }

    /// Reference [`TimeSeries::sum_of`].
    pub fn sum_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
        I::IntoIter: Clone,
    {
        let iter = series.into_iter();
        let mut out = TimeSeries::with_capacity(0);
        for t in union_grid(iter.clone()) {
            let mut sum = 0.0;
            let mut n = 0usize;
            for s in iter.clone() {
                if let Some(v) = s.value_at_or_before(t) {
                    sum += v;
                    n += 1;
                }
            }
            if n > 0 {
                out.push(t, sum).expect("grid is strictly increasing");
            }
        }
        out
    }

    /// Reference [`TimeSeries::max_of`].
    pub fn max_of<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
        I::IntoIter: Clone,
    {
        let iter = series.into_iter();
        let mut out = TimeSeries::with_capacity(0);
        for t in union_grid(iter.clone()) {
            let mut max = f64::NEG_INFINITY;
            let mut n = 0usize;
            for s in iter.clone() {
                if let Some(v) = s.value_at_or_before(t) {
                    max = max.max(v);
                    n += 1;
                }
            }
            if n > 0 {
                out.push(t, max).expect("grid is strictly increasing");
            }
        }
        out
    }

    /// Reference [`TimeSeries::sub_series`]: binary search per sample.
    pub fn sub_series(a: &TimeSeries, other: &TimeSeries) -> TimeSeries {
        let mut out = TimeSeries::with_capacity(a.len());
        for (t, v) in a.iter() {
            if let Some(o) = other.value_at_or_before(t) {
                out.push(t, v - o)
                    .expect("self grid is strictly increasing");
            }
        }
        out
    }

    fn union_grid<'a, I: Iterator<Item = &'a TimeSeries>>(iter: I) -> Vec<Timestamp> {
        let mut grid: Vec<Timestamp> = Vec::new();
        for s in iter {
            grid.extend_from_slice(s.times());
        }
        grid.sort_unstable();
        grid.dedup();
        grid
    }
}

impl FromIterator<(Timestamp, f64)> for TimeSeries {
    /// Collects pairs into a series, sorting by time.
    ///
    /// # Panics
    ///
    /// Panics when two samples share a timestamp; use
    /// [`TimeSeries::from_samples`] for fallible construction.
    fn from_iter<I: IntoIterator<Item = (Timestamp, f64)>>(iter: I) -> Self {
        TimeSeries::from_samples(iter).expect("duplicate timestamps in FromIterator")
    }
}

impl Extend<(Timestamp, f64)> for TimeSeries {
    /// Extends with pairs that must continue the time order.
    ///
    /// # Panics
    ///
    /// Panics when a pair is not strictly after the current last sample.
    fn extend<I: IntoIterator<Item = (Timestamp, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v).expect("out-of-order extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: i64, step: i64) -> TimeSeries {
        (0..n)
            .map(|i| (Timestamp::new(i * step), i as f64))
            .collect()
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(Timestamp::new(10), 1.0).unwrap();
        assert!(s.push(Timestamp::new(10), 2.0).is_err());
        assert!(s.push(Timestamp::new(5), 2.0).is_err());
        s.push(Timestamp::new(11), 2.0).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_samples_sorts_and_rejects_duplicates() {
        let s = TimeSeries::from_samples(vec![
            (Timestamp::new(20), 2.0),
            (Timestamp::new(0), 0.0),
            (Timestamp::new(10), 1.0),
        ])
        .unwrap();
        assert_eq!(s.times()[0], Timestamp::new(0));
        assert_eq!(s.times()[2], Timestamp::new(20));

        let dup =
            TimeSeries::from_samples(vec![(Timestamp::new(0), 0.0), (Timestamp::new(0), 1.0)]);
        assert!(dup.is_err());
    }

    #[test]
    fn lookups() {
        let s = ramp(5, 60); // t = 0,60,120,180,240 ; v = 0..4
        assert_eq!(s.value_at(Timestamp::new(120)), Some(2.0));
        assert_eq!(s.value_at(Timestamp::new(121)), None);
        assert_eq!(s.value_at_or_before(Timestamp::new(121)), Some(2.0));
        assert_eq!(s.value_at_or_before(Timestamp::new(-1)), None);
        assert_eq!(s.value_at_or_before(Timestamp::new(999)), Some(4.0));
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let s = ramp(3, 100); // (0,0) (100,1) (200,2)
        assert_eq!(s.interpolate(Timestamp::new(50)), Some(0.5));
        assert_eq!(s.interpolate(Timestamp::new(-10)), Some(0.0));
        assert_eq!(s.interpolate(Timestamp::new(500)), Some(2.0));
        assert_eq!(TimeSeries::new().interpolate(Timestamp::ZERO), None);
    }

    #[test]
    fn slice_is_half_open() {
        let s = ramp(10, 60);
        let r = TimeRange::new(Timestamp::new(60), Timestamp::new(240)).unwrap();
        let cut = s.slice(&r);
        assert_eq!(cut.len(), 3); // 60, 120, 180
        assert_eq!(cut.first().unwrap().0, Timestamp::new(60));
        assert_eq!(cut.last().unwrap().0, Timestamp::new(180));
    }

    #[test]
    fn resample_mean_and_max() {
        // 1 Hz ramp over 10 minutes, re-bucketed to 300 s.
        let s: TimeSeries = (0..600).map(|i| (Timestamp::new(i), i as f64)).collect();
        let mean = s
            .resample(TimeDelta::BATCH_RESOLUTION, Resample::Mean)
            .unwrap();
        assert_eq!(mean.len(), 2);
        assert!((mean.values()[0] - 149.5).abs() < 1e-9);
        assert!((mean.values()[1] - 449.5).abs() < 1e-9);
        let max = s
            .resample(TimeDelta::BATCH_RESOLUTION, Resample::Max)
            .unwrap();
        assert_eq!(max.values(), &[299.0, 599.0]);
    }

    #[test]
    fn resample_rejects_bad_resolution() {
        let s = ramp(3, 10);
        assert!(s.resample(TimeDelta::ZERO, Resample::Mean).is_err());
    }

    #[test]
    fn resample_skips_empty_buckets() {
        let s =
            TimeSeries::from_samples(vec![(Timestamp::new(0), 1.0), (Timestamp::new(900), 2.0)])
                .unwrap();
        let r = s
            .resample(TimeDelta::BATCH_RESOLUTION, Resample::Mean)
            .unwrap();
        assert_eq!(r.times(), &[Timestamp::new(0), Timestamp::new(900)]);
    }

    #[test]
    fn stats_and_quantiles() {
        let s = ramp(5, 1); // 0,1,2,3,4
        let st = s.stats().unwrap();
        assert_eq!(st.count, 5);
        assert_eq!(st.min, 0.0);
        assert_eq!(st.max, 4.0);
        assert!((st.mean - 2.0).abs() < 1e-12);
        assert!((st.std_dev - 2.0_f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert_eq!(s.quantile(1.5), None);
        assert_eq!(TimeSeries::new().stats(), None);
    }

    #[test]
    fn stats_in_window() {
        let s = ramp(10, 10);
        let r = TimeRange::new(Timestamp::new(30), Timestamp::new(60)).unwrap();
        let st = s.stats_in(&r).unwrap();
        assert_eq!(st.count, 3);
        assert_eq!(st.min, 3.0);
        assert_eq!(st.max, 5.0);
    }

    #[test]
    fn mean_of_uses_sample_and_hold() {
        let a =
            TimeSeries::from_samples(vec![(Timestamp::new(0), 0.0), (Timestamp::new(100), 1.0)])
                .unwrap();
        let b = TimeSeries::from_samples(vec![(Timestamp::new(50), 3.0)]).unwrap();
        let m = TimeSeries::mean_of([&a, &b]);
        // grid: 0 (only a), 50 (a holds 0.0, b=3 → 1.5), 100 (a=1, b holds 3 → 2)
        assert_eq!(
            m.times(),
            &[Timestamp::new(0), Timestamp::new(50), Timestamp::new(100)]
        );
        assert_eq!(m.values(), &[0.0, 1.5, 2.0]);
    }

    #[test]
    fn sum_and_max_follow_sample_and_hold() {
        let a =
            TimeSeries::from_samples(vec![(Timestamp::new(0), 1.0), (Timestamp::new(100), 4.0)])
                .unwrap();
        let b = TimeSeries::from_samples(vec![(Timestamp::new(50), 3.0)]).unwrap();
        let sum = TimeSeries::sum_of([&a, &b]);
        assert_eq!(
            sum.times(),
            &[Timestamp::new(0), Timestamp::new(50), Timestamp::new(100)]
        );
        assert_eq!(sum.values(), &[1.0, 4.0, 7.0]);
        let max = TimeSeries::max_of([&a, &b]);
        assert_eq!(max.values(), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn sweep_matches_naive_on_irregular_grids() {
        let a = TimeSeries::from_samples(vec![
            (Timestamp::new(0), 0.25),
            (Timestamp::new(7), 0.5),
            (Timestamp::new(300), 0.125),
        ])
        .unwrap();
        let b = TimeSeries::from_samples(vec![(Timestamp::new(3), 1.5), (Timestamp::new(7), -2.0)])
            .unwrap();
        let c = TimeSeries::new();
        let sets: [&[&TimeSeries]; 3] = [&[&a, &b, &c], &[&a], &[]];
        for set in sets {
            assert_eq!(
                TimeSeries::mean_of(set.iter().copied()),
                naive::mean_of(set.iter().copied())
            );
            assert_eq!(
                TimeSeries::sum_of(set.iter().copied()),
                naive::sum_of(set.iter().copied())
            );
            assert_eq!(
                TimeSeries::max_of(set.iter().copied()),
                naive::max_of(set.iter().copied())
            );
        }
        assert_eq!(a.sub_series(&b), naive::sub_series(&a, &b));
        assert_eq!(b.sub_series(&a), naive::sub_series(&b, &a));
    }

    #[test]
    fn views_borrow_without_copying() {
        let s = ramp(10, 60);
        let r = TimeRange::new(Timestamp::new(60), Timestamp::new(240)).unwrap();
        let v = s.slice_view(&r);
        assert_eq!(v.len(), 3);
        assert_eq!(v.first().unwrap().0, Timestamp::new(60));
        assert_eq!(v.last().unwrap().0, Timestamp::new(180));
        assert_eq!(v.to_owned(), s.slice(&r));
        assert_eq!(v.stats().unwrap().count, 3);
        // Narrowing a view agrees with slicing the owned series.
        let narrower = TimeRange::new(Timestamp::new(120), Timestamp::new(240)).unwrap();
        assert_eq!(v.slice(&narrower).to_owned(), s.slice(&narrower));
        assert_eq!(s.view().len(), s.len());
        assert!(TimeSeries::new().view().is_empty());
    }

    #[test]
    fn quantile_select_matches_sorted_definition() {
        let values = [5.0, 1.0, 4.0, 2.0, 3.0, 2.5];
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let pos = q * (sorted.len() - 1) as f64;
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let expected = sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64);
            let got = quantile_select(&mut values.to_vec(), q);
            assert!((got - expected).abs() < 1e-12, "q={q}: {got} vs {expected}");
        }
    }

    #[test]
    fn sub_series_skips_unstarted_other() {
        let a = ramp(3, 10); // (0,0) (10,1) (20,2)
        let b = TimeSeries::from_samples(vec![(Timestamp::new(10), 10.0)]).unwrap();
        let d = a.sub_series(&b);
        assert_eq!(d.times(), &[Timestamp::new(10), Timestamp::new(20)]);
        assert_eq!(d.values(), &[-9.0, -8.0]);
    }

    #[test]
    fn map_preserves_grid() {
        let s = ramp(3, 10);
        let doubled = s.map(|v| v * 2.0);
        assert_eq!(doubled.times(), s.times());
        assert_eq!(doubled.values(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn span_covers_endpoints() {
        let s = ramp(3, 100);
        let span = s.span().unwrap();
        assert!(span.contains(Timestamp::new(0)));
        assert!(span.contains(Timestamp::new(200)));
        assert!(!span.contains(Timestamp::new(201)));
        assert!(TimeSeries::new().span().is_none());
    }
}
