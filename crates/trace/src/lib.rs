//! # batchlens-trace
//!
//! Data model for Alibaba **cluster-trace-v2017**-shaped cloud traces, the
//! substrate of the BatchLens visualization system (DATE 2022).
//!
//! The Alibaba v2017 trace describes a 1300-machine production cluster over
//! 24 hours. BatchLens consumes two families of tables from it:
//!
//! * **Batch scheduler tables** (`batch_task`, `batch_instance`) — the
//!   three-level hierarchy *job → task → instance*, where each instance is
//!   executed by exactly one machine and each machine runs many instances
//!   concurrently. Batch records are reported at 300 s resolution.
//! * **Server tables** (`server_usage`, `machine_events`) — per-machine
//!   utilization of CPU, memory and disk I/O over time, plus machine
//!   lifecycle events.
//!
//! This crate provides:
//!
//! * typed identifiers ([`JobId`], [`TaskId`], [`InstanceId`], [`MachineId`])
//!   that render as the paper's `job_7399`-style names,
//! * a time model ([`Timestamp`], [`TimeDelta`], [`TimeRange`]) in seconds
//!   relative to trace start,
//! * utilization metrics ([`Metric`], [`Utilization`], [`UtilizationTriple`]),
//! * sorted [`TimeSeries`] with slicing, resampling, aggregation and
//!   summary statistics,
//! * record types mirroring the v2017 table schemas plus a line-oriented
//!   CSV codec ([`csv`]),
//! * the [`TraceDataset`] container with hierarchy and placement indexes,
//! * a columnar on-disk segment [`store`] — sorted, checksummed,
//!   memory-mapped — giving [`TraceDataset::open`] as a lazy,
//!   larger-than-RAM-friendly construction path next to the CSV parse,
//! * dataset statistics ([`stats::DatasetStats`]) reproducing the numbers
//!   quoted in the paper's Section II (75 % of jobs are single-task, 94 % of
//!   tasks are multi-instance).
//!
//! ## Example
//!
//! ```
//! use batchlens_trace::{
//!     BatchInstanceRecord, BatchTaskRecord, InstanceStatus, JobId, MachineId,
//!     TaskId, TaskStatus, Timestamp, TraceDatasetBuilder,
//! };
//!
//! let mut b = TraceDatasetBuilder::new();
//! b.push_task(BatchTaskRecord {
//!     create_time: Timestamp::new(0),
//!     modify_time: Timestamp::new(600),
//!     job: JobId::new(1),
//!     task: TaskId::new(1),
//!     instance_count: 2,
//!     status: TaskStatus::Terminated,
//!     plan_cpu: 1.0,
//!     plan_mem: 0.5,
//! });
//! for seq in 0..2 {
//!     b.push_instance(BatchInstanceRecord {
//!         start_time: Timestamp::new(0),
//!         end_time: Timestamp::new(600),
//!         job: JobId::new(1),
//!         task: TaskId::new(1),
//!         seq,
//!         total: 2,
//!         machine: MachineId::new(seq),
//!         status: InstanceStatus::Terminated,
//!         cpu_avg: 0.4,
//!         cpu_max: 0.8,
//!         mem_avg: 0.3,
//!         mem_max: 0.5,
//!     });
//! }
//! let ds = b.build()?;
//! assert_eq!(ds.jobs().count(), 1);
//! assert_eq!(ds.job(JobId::new(1)).unwrap().instance_count(), 2);
//! # Ok::<(), batchlens_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod dataset;
mod error;
mod ids;
mod interval;
mod metric;
pub mod query;
mod queryable;
mod record;
mod series;
pub mod stats;
pub mod store;
mod time;
pub mod wal;

pub use dataset::{
    InstanceRef, JobView, MachineInfo, MachineView, TaskView, TraceDataset, TraceDatasetBuilder,
};
pub use error::{ParseWarning, TraceError};
pub use ids::{InstanceId, JobId, MachineId, TaskId};
pub use interval::{IntervalIndex, RollingIntervalIndex};
pub use metric::{Metric, Utilization, UtilizationTriple};
pub use queryable::{
    alive_at_checkpoints, DatasetQuery, LivenessDelta, QueryFrame, RunningDelta, UtilHold,
};
pub use record::{
    BatchInstanceRecord, BatchTaskRecord, InstanceStatus, MachineEvent, MachineEventRecord,
    ServerUsageRecord, TaskStatus,
};
pub use series::{naive, quantile_select, Resample, SeriesStats, SeriesView, TimeSeries};
pub use time::{TimeDelta, TimeRange, Timestamp};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        BatchInstanceRecord, BatchTaskRecord, DatasetQuery, InstanceId, InstanceStatus, JobId,
        MachineEvent, MachineEventRecord, MachineId, Metric, ServerUsageRecord, TaskId, TaskStatus,
        TimeDelta, TimeRange, TimeSeries, Timestamp, TraceDataset, TraceDatasetBuilder, TraceError,
        Utilization, UtilizationTriple,
    };
}
