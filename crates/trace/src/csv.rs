//! Line-oriented CSV codec for the four Alibaba-v2017-shaped tables.
//!
//! The v2017 dumps are plain comma-separated files without quoting or
//! embedded commas, so a minimal, allocation-light codec is both sufficient
//! and fast. Each table has a `parse_*` / `write_*` pair; writers emit a
//! header line, parsers accept input with or without it.
//!
//! Column layouts (documented here, asserted by round-trip tests):
//!
//! | table | columns |
//! |---|---|
//! | `batch_task` | `create_time,modify_time,job_id,task_id,instance_num,status,plan_cpu,plan_mem` |
//! | `batch_instance` | `start_time,end_time,job_id,task_id,seq_no,total_seq_no,machine_id,status,cpu_avg,cpu_max,mem_avg,mem_max` |
//! | `server_usage` | `time,machine_id,util_cpu,util_mem,util_disk` (percent) |
//! | `machine_events` | `time,machine_id,event,capacity_cpu,capacity_mem,capacity_disk` |

use std::fmt::Write as _;
use std::io::BufRead;

use crate::{
    BatchInstanceRecord, BatchTaskRecord, MachineEventRecord, ParseWarning, ServerUsageRecord,
    Timestamp, TraceError, UtilizationTriple,
};

/// Header emitted/accepted for `batch_task` files.
pub const BATCH_TASK_HEADER: &str =
    "create_time,modify_time,job_id,task_id,instance_num,status,plan_cpu,plan_mem";
/// Header emitted/accepted for `batch_instance` files.
pub const BATCH_INSTANCE_HEADER: &str = "start_time,end_time,job_id,task_id,seq_no,\
total_seq_no,machine_id,status,cpu_avg,cpu_max,mem_avg,mem_max";
/// Header emitted/accepted for `server_usage` files.
pub const SERVER_USAGE_HEADER: &str = "time,machine_id,util_cpu,util_mem,util_disk";
/// Header emitted/accepted for `machine_events` files.
pub const MACHINE_EVENTS_HEADER: &str =
    "time,machine_id,event,capacity_cpu,capacity_mem,capacity_disk";

fn split_fields<'a>(
    line: &'a str,
    expected: usize,
    table: &'static str,
    line_no: usize,
) -> Result<Vec<&'a str>, TraceError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != expected {
        return Err(TraceError::ParseLine {
            line: line_no,
            table,
            message: format!("expected {expected} fields, found {}", fields.len()),
        });
    }
    Ok(fields)
}

fn parse_i64(s: &str, field: &'static str) -> Result<i64, TraceError> {
    s.parse::<i64>().map_err(|_| TraceError::ParseField {
        field,
        value: s.to_owned(),
    })
}

fn parse_u32(s: &str, field: &'static str) -> Result<u32, TraceError> {
    s.parse::<u32>().map_err(|_| TraceError::ParseField {
        field,
        value: s.to_owned(),
    })
}

fn parse_f64(s: &str, field: &'static str) -> Result<f64, TraceError> {
    s.parse::<f64>().map_err(|_| TraceError::ParseField {
        field,
        value: s.to_owned(),
    })
}

fn at_line(err: TraceError, table: &'static str, line_no: usize) -> TraceError {
    match err {
        TraceError::ParseField { field, value } => TraceError::ParseLine {
            line: line_no,
            table,
            message: format!("bad {field}: {value:?}"),
        },
        other => other,
    }
}

// (the data-line rule — skip blanks, `#` comments and header lines, number
// every physical line — lives in `parse_table_reader`, the single parsing
// loop both the in-memory and the streaming entry points share)

/// How a parse treats malformed rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseOptions {
    /// With `recover: false` (the default, and what the plain `parse_*`
    /// functions do) the first malformed row aborts the whole file. With
    /// `recover: true` malformed rows are **skipped** and reported as
    /// line-numbered [`ParseWarning`]s, so one corrupt row no longer costs
    /// the rest of a multi-gigabyte dump.
    pub recover: bool,
}

impl ParseOptions {
    /// The recovering mode: skip malformed rows, collect warnings.
    pub const fn recovering() -> ParseOptions {
        ParseOptions { recover: true }
    }
}

/// Outcome of a [`ParseOptions`]-driven parse: the rows that parsed plus a
/// warning per row that did not (empty in strict mode, which aborts
/// instead).
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered<T> {
    /// Successfully parsed records, in input order.
    pub records: Vec<T>,
    /// One line-numbered warning per skipped row, in input order.
    pub warnings: Vec<ParseWarning>,
}

/// The single parsing loop behind every entry point: pulls one line at a
/// time from a buffered reader into a reused buffer, so peak memory is one
/// line plus the parsed records — never the whole file. Every physical
/// line (blank, comment, header or data) advances the 1-based line
/// counter, which is what keeps recovering-mode warning line numbers
/// identical between the in-memory and streaming paths.
fn parse_table_reader<T, R: BufRead>(
    mut reader: R,
    header: &str,
    table: &'static str,
    opts: ParseOptions,
    parse_row: impl Fn(&str, usize) -> Result<T, TraceError>,
) -> Result<Recovered<T>, TraceError> {
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf).map_err(|e| TraceError::Io {
            op: "read line",
            path: String::new(),
            message: e.to_string(),
        })?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let trimmed = buf.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed == header {
            continue;
        }
        match parse_row(trimmed, line_no) {
            Ok(rec) => records.push(rec),
            Err(error) if opts.recover => warnings.push(ParseWarning {
                line: line_no,
                table,
                error,
            }),
            Err(error) => return Err(error),
        }
    }
    Ok(Recovered { records, warnings })
}

fn parse_table<T>(
    input: &str,
    header: &str,
    table: &'static str,
    opts: ParseOptions,
    parse_row: impl Fn(&str, usize) -> Result<T, TraceError>,
) -> Result<Recovered<T>, TraceError> {
    parse_table_reader(input.as_bytes(), header, table, opts, parse_row)
}

fn parse_batch_task_row(line: &str, line_no: usize) -> Result<BatchTaskRecord, TraceError> {
    const TABLE: &str = "batch_task";
    let f = split_fields(line, 8, TABLE, line_no)?;
    (|| -> Result<BatchTaskRecord, TraceError> {
        Ok(BatchTaskRecord {
            create_time: Timestamp::new(parse_i64(f[0], "create_time")?),
            modify_time: Timestamp::new(parse_i64(f[1], "modify_time")?),
            job: f[2].parse()?,
            task: f[3].parse()?,
            instance_count: parse_u32(f[4], "instance_num")?,
            status: f[5].parse()?,
            plan_cpu: parse_f64(f[6], "plan_cpu")?,
            plan_mem: parse_f64(f[7], "plan_mem")?,
        })
    })()
    .map_err(|e| at_line(e, TABLE, line_no))
}

/// Parses a `batch_task` file (strict: the first bad row aborts).
///
/// # Errors
///
/// Returns [`TraceError::ParseLine`] naming the first offending line.
pub fn parse_batch_tasks(input: &str) -> Result<Vec<BatchTaskRecord>, TraceError> {
    parse_batch_tasks_with(input, ParseOptions::default()).map(|r| r.records)
}

/// Parses a `batch_task` file under `opts`; with
/// [`ParseOptions::recovering`] malformed rows become warnings.
///
/// # Errors
///
/// In strict mode only, [`TraceError::ParseLine`] for the first bad row.
pub fn parse_batch_tasks_with(
    input: &str,
    opts: ParseOptions,
) -> Result<Recovered<BatchTaskRecord>, TraceError> {
    parse_table(
        input,
        BATCH_TASK_HEADER,
        "batch_task",
        opts,
        parse_batch_task_row,
    )
}

/// Parses a `batch_task` stream from a buffered reader without
/// materializing the file in memory (strict mode).
///
/// # Errors
///
/// [`TraceError::ParseLine`] for the first bad row, [`TraceError::Io`]
/// when the reader fails.
pub fn parse_batch_tasks_reader<R: BufRead>(reader: R) -> Result<Vec<BatchTaskRecord>, TraceError> {
    parse_batch_tasks_reader_with(reader, ParseOptions::default()).map(|r| r.records)
}

/// Streaming twin of [`parse_batch_tasks_with`]: same row semantics and
/// identical warning line numbers, one buffered line in memory at a time.
///
/// # Errors
///
/// [`TraceError::Io`] when the reader fails; in strict mode additionally
/// [`TraceError::ParseLine`] for the first bad row.
pub fn parse_batch_tasks_reader_with<R: BufRead>(
    reader: R,
    opts: ParseOptions,
) -> Result<Recovered<BatchTaskRecord>, TraceError> {
    parse_table_reader(
        reader,
        BATCH_TASK_HEADER,
        "batch_task",
        opts,
        parse_batch_task_row,
    )
}

/// Serializes `batch_task` records with a header line.
pub fn write_batch_tasks(records: &[BatchTaskRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 48 + BATCH_TASK_HEADER.len() + 1);
    s.push_str(BATCH_TASK_HEADER);
    s.push('\n');
    for r in records {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            r.create_time.seconds(),
            r.modify_time.seconds(),
            r.job,
            r.task,
            r.instance_count,
            r.status,
            r.plan_cpu,
            r.plan_mem
        );
    }
    s
}

fn parse_batch_instance_row(line: &str, line_no: usize) -> Result<BatchInstanceRecord, TraceError> {
    const TABLE: &str = "batch_instance";
    let f = split_fields(line, 12, TABLE, line_no)?;
    (|| -> Result<BatchInstanceRecord, TraceError> {
        Ok(BatchInstanceRecord {
            start_time: Timestamp::new(parse_i64(f[0], "start_time")?),
            end_time: Timestamp::new(parse_i64(f[1], "end_time")?),
            job: f[2].parse()?,
            task: f[3].parse()?,
            seq: parse_u32(f[4], "seq_no")?,
            total: parse_u32(f[5], "total_seq_no")?,
            machine: f[6].parse()?,
            status: f[7].parse()?,
            cpu_avg: parse_f64(f[8], "cpu_avg")?,
            cpu_max: parse_f64(f[9], "cpu_max")?,
            mem_avg: parse_f64(f[10], "mem_avg")?,
            mem_max: parse_f64(f[11], "mem_max")?,
        })
    })()
    .map_err(|e| at_line(e, TABLE, line_no))
}

/// Parses a `batch_instance` file (strict: the first bad row aborts).
///
/// # Errors
///
/// Returns [`TraceError::ParseLine`] naming the first offending line.
pub fn parse_batch_instances(input: &str) -> Result<Vec<BatchInstanceRecord>, TraceError> {
    parse_batch_instances_with(input, ParseOptions::default()).map(|r| r.records)
}

/// Parses a `batch_instance` file under `opts`; with
/// [`ParseOptions::recovering`] malformed rows become warnings.
///
/// # Errors
///
/// In strict mode only, [`TraceError::ParseLine`] for the first bad row.
pub fn parse_batch_instances_with(
    input: &str,
    opts: ParseOptions,
) -> Result<Recovered<BatchInstanceRecord>, TraceError> {
    parse_table(
        input,
        BATCH_INSTANCE_HEADER,
        "batch_instance",
        opts,
        parse_batch_instance_row,
    )
}

/// Parses a `batch_instance` stream from a buffered reader (strict mode).
///
/// # Errors
///
/// [`TraceError::ParseLine`] for the first bad row, [`TraceError::Io`]
/// when the reader fails.
pub fn parse_batch_instances_reader<R: BufRead>(
    reader: R,
) -> Result<Vec<BatchInstanceRecord>, TraceError> {
    parse_batch_instances_reader_with(reader, ParseOptions::default()).map(|r| r.records)
}

/// Streaming twin of [`parse_batch_instances_with`].
///
/// # Errors
///
/// [`TraceError::Io`] when the reader fails; in strict mode additionally
/// [`TraceError::ParseLine`] for the first bad row.
pub fn parse_batch_instances_reader_with<R: BufRead>(
    reader: R,
    opts: ParseOptions,
) -> Result<Recovered<BatchInstanceRecord>, TraceError> {
    parse_table_reader(
        reader,
        BATCH_INSTANCE_HEADER,
        "batch_instance",
        opts,
        parse_batch_instance_row,
    )
}

/// Serializes `batch_instance` records with a header line.
pub fn write_batch_instances(records: &[BatchInstanceRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 64 + BATCH_INSTANCE_HEADER.len() + 1);
    s.push_str(BATCH_INSTANCE_HEADER);
    s.push('\n');
    for r in records {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.start_time.seconds(),
            r.end_time.seconds(),
            r.job,
            r.task,
            r.seq,
            r.total,
            r.machine,
            r.status,
            r.cpu_avg,
            r.cpu_max,
            r.mem_avg,
            r.mem_max
        );
    }
    s
}

fn parse_server_usage_row(line: &str, line_no: usize) -> Result<ServerUsageRecord, TraceError> {
    const TABLE: &str = "server_usage";
    let f = split_fields(line, 5, TABLE, line_no)?;
    (|| -> Result<ServerUsageRecord, TraceError> {
        Ok(ServerUsageRecord {
            time: Timestamp::new(parse_i64(f[0], "time")?),
            machine: f[1].parse()?,
            util: UtilizationTriple::clamped(
                parse_f64(f[2], "util_cpu")? / 100.0,
                parse_f64(f[3], "util_mem")? / 100.0,
                parse_f64(f[4], "util_disk")? / 100.0,
            ),
        })
    })()
    .map_err(|e| at_line(e, TABLE, line_no))
}

/// Parses a `server_usage` file (strict: the first bad row aborts).
/// Utilization columns are percentages and are clamped into `0..=100`.
///
/// # Errors
///
/// Returns [`TraceError::ParseLine`] naming the first offending line.
pub fn parse_server_usage(input: &str) -> Result<Vec<ServerUsageRecord>, TraceError> {
    parse_server_usage_with(input, ParseOptions::default()).map(|r| r.records)
}

/// Parses a `server_usage` file under `opts`; with
/// [`ParseOptions::recovering`] malformed rows become warnings.
///
/// # Errors
///
/// In strict mode only, [`TraceError::ParseLine`] for the first bad row.
pub fn parse_server_usage_with(
    input: &str,
    opts: ParseOptions,
) -> Result<Recovered<ServerUsageRecord>, TraceError> {
    parse_table(
        input,
        SERVER_USAGE_HEADER,
        "server_usage",
        opts,
        parse_server_usage_row,
    )
}

/// Parses a `server_usage` stream from a buffered reader (strict mode).
///
/// # Errors
///
/// [`TraceError::ParseLine`] for the first bad row, [`TraceError::Io`]
/// when the reader fails.
pub fn parse_server_usage_reader<R: BufRead>(
    reader: R,
) -> Result<Vec<ServerUsageRecord>, TraceError> {
    parse_server_usage_reader_with(reader, ParseOptions::default()).map(|r| r.records)
}

/// Streaming twin of [`parse_server_usage_with`].
///
/// # Errors
///
/// [`TraceError::Io`] when the reader fails; in strict mode additionally
/// [`TraceError::ParseLine`] for the first bad row.
pub fn parse_server_usage_reader_with<R: BufRead>(
    reader: R,
    opts: ParseOptions,
) -> Result<Recovered<ServerUsageRecord>, TraceError> {
    parse_table_reader(
        reader,
        SERVER_USAGE_HEADER,
        "server_usage",
        opts,
        parse_server_usage_row,
    )
}

/// Serializes `server_usage` records (percent columns) with a header line.
pub fn write_server_usage(records: &[ServerUsageRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 40 + SERVER_USAGE_HEADER.len() + 1);
    s.push_str(SERVER_USAGE_HEADER);
    s.push('\n');
    for r in records {
        let _ = writeln!(
            s,
            "{},{},{:.2},{:.2},{:.2}",
            r.time.seconds(),
            r.machine,
            r.util.cpu.percent(),
            r.util.mem.percent(),
            r.util.disk.percent()
        );
    }
    s
}

fn parse_machine_event_row(line: &str, line_no: usize) -> Result<MachineEventRecord, TraceError> {
    const TABLE: &str = "machine_events";
    let f = split_fields(line, 6, TABLE, line_no)?;
    (|| -> Result<MachineEventRecord, TraceError> {
        Ok(MachineEventRecord {
            time: Timestamp::new(parse_i64(f[0], "time")?),
            machine: f[1].parse()?,
            event: f[2].parse()?,
            capacity_cpu: parse_f64(f[3], "capacity_cpu")?,
            capacity_mem: parse_f64(f[4], "capacity_mem")?,
            capacity_disk: parse_f64(f[5], "capacity_disk")?,
        })
    })()
    .map_err(|e| at_line(e, TABLE, line_no))
}

/// Parses a `machine_events` file (strict: the first bad row aborts).
///
/// # Errors
///
/// Returns [`TraceError::ParseLine`] naming the first offending line.
pub fn parse_machine_events(input: &str) -> Result<Vec<MachineEventRecord>, TraceError> {
    parse_machine_events_with(input, ParseOptions::default()).map(|r| r.records)
}

/// Parses a `machine_events` file under `opts`; with
/// [`ParseOptions::recovering`] malformed rows become warnings.
///
/// # Errors
///
/// In strict mode only, [`TraceError::ParseLine`] for the first bad row.
pub fn parse_machine_events_with(
    input: &str,
    opts: ParseOptions,
) -> Result<Recovered<MachineEventRecord>, TraceError> {
    parse_table(
        input,
        MACHINE_EVENTS_HEADER,
        "machine_events",
        opts,
        parse_machine_event_row,
    )
}

/// Parses a `machine_events` stream from a buffered reader (strict mode).
///
/// # Errors
///
/// [`TraceError::ParseLine`] for the first bad row, [`TraceError::Io`]
/// when the reader fails.
pub fn parse_machine_events_reader<R: BufRead>(
    reader: R,
) -> Result<Vec<MachineEventRecord>, TraceError> {
    parse_machine_events_reader_with(reader, ParseOptions::default()).map(|r| r.records)
}

/// Streaming twin of [`parse_machine_events_with`].
///
/// # Errors
///
/// [`TraceError::Io`] when the reader fails; in strict mode additionally
/// [`TraceError::ParseLine`] for the first bad row.
pub fn parse_machine_events_reader_with<R: BufRead>(
    reader: R,
    opts: ParseOptions,
) -> Result<Recovered<MachineEventRecord>, TraceError> {
    parse_table_reader(
        reader,
        MACHINE_EVENTS_HEADER,
        "machine_events",
        opts,
        parse_machine_event_row,
    )
}

/// Serializes `machine_events` records with a header line.
pub fn write_machine_events(records: &[MachineEventRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 40 + MACHINE_EVENTS_HEADER.len() + 1);
    s.push_str(MACHINE_EVENTS_HEADER);
    s.push('\n');
    for r in records {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{}",
            r.time.seconds(),
            r.machine,
            r.event,
            r.capacity_cpu,
            r.capacity_mem,
            r.capacity_disk
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, MachineEvent, MachineId, TaskId, TaskStatus};

    fn sample_task() -> BatchTaskRecord {
        BatchTaskRecord {
            create_time: Timestamp::new(46200),
            modify_time: Timestamp::new(47400),
            job: JobId::new(7901),
            task: TaskId::new(1),
            instance_count: 12,
            status: TaskStatus::Terminated,
            plan_cpu: 2.0,
            plan_mem: 0.25,
        }
    }

    fn sample_instance() -> BatchInstanceRecord {
        BatchInstanceRecord {
            start_time: Timestamp::new(46200),
            end_time: Timestamp::new(47100),
            job: JobId::new(7901),
            task: TaskId::new(1),
            seq: 3,
            total: 12,
            machine: MachineId::new(451),
            status: TaskStatus::Terminated,
            cpu_avg: 0.61,
            cpu_max: 0.97,
            mem_avg: 0.42,
            mem_max: 0.66,
        }
    }

    #[test]
    fn batch_task_round_trip() {
        let recs = vec![sample_task()];
        let text = write_batch_tasks(&recs);
        assert!(text.starts_with(BATCH_TASK_HEADER));
        let parsed = parse_batch_tasks(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn batch_instance_round_trip() {
        let recs = vec![sample_instance()];
        let text = write_batch_instances(&recs);
        let parsed = parse_batch_instances(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn server_usage_round_trip_at_centipercent_precision() {
        let recs = vec![ServerUsageRecord {
            time: Timestamp::new(43800),
            machine: MachineId::new(12),
            util: UtilizationTriple::clamped(0.91, 0.87, 0.33),
        }];
        let text = write_server_usage(&recs);
        let parsed = parse_server_usage(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].util.cpu.fraction() - 0.91).abs() < 5e-5);
        assert!((parsed[0].util.mem.fraction() - 0.87).abs() < 5e-5);
        assert!((parsed[0].util.disk.fraction() - 0.33).abs() < 5e-5);
    }

    #[test]
    fn machine_events_round_trip() {
        let recs = vec![MachineEventRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(0),
            event: MachineEvent::Add,
            capacity_cpu: 64.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        }];
        let text = write_machine_events(&recs);
        let parsed = parse_machine_events(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn parser_skips_blank_comment_and_header_lines() {
        let text = format!(
            "# generated by batchlens-sim\n\n{}\n46200,47400,job_1,task_1,1,T,1,0.5\n",
            BATCH_TASK_HEADER
        );
        let parsed = parse_batch_tasks(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].job, JobId::new(1));
    }

    #[test]
    fn parser_accepts_bare_numeric_ids() {
        let text = "0,300,42,7,3,T,1,0.5\n";
        let parsed = parse_batch_tasks(text).unwrap();
        assert_eq!(parsed[0].job, JobId::new(42));
        assert_eq!(parsed[0].task, TaskId::new(7));
    }

    #[test]
    fn parse_error_names_line_and_table() {
        let text = "0,300,job_1,task_1,NOTANUM,T,1,0.5\n";
        let err = parse_batch_tasks(text).unwrap_err();
        match err {
            TraceError::ParseLine {
                line,
                table,
                message,
            } => {
                assert_eq!(line, 1);
                assert_eq!(table, "batch_task");
                assert!(message.contains("instance_num"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_is_reported() {
        let text = "0,300,job_1\n";
        let err = parse_batch_tasks(text).unwrap_err();
        assert!(matches!(err, TraceError::ParseLine { line: 1, .. }));
    }

    #[test]
    fn recovering_parse_skips_bad_rows_with_line_numbered_warnings() {
        let text = format!(
            "{}\n0,300,job_1,task_1,1,T,1,0.5\n\
             0,300,job_2,task_1,NOTANUM,T,1,0.5\n\
             0,300,job_3\n\
             0,300,job_4,task_1,2,T,1,0.5\n",
            BATCH_TASK_HEADER
        );
        // Strict mode still aborts at the first bad row.
        assert!(parse_batch_tasks(&text).is_err());
        let rec = parse_batch_tasks_with(&text, ParseOptions::recovering()).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].job, JobId::new(1));
        assert_eq!(rec.records[1].job, JobId::new(4));
        assert_eq!(rec.warnings.len(), 2);
        assert_eq!(rec.warnings[0].line, 3);
        assert_eq!(rec.warnings[0].table, "batch_task");
        assert!(rec.warnings[0].to_string().contains("line 3"));
        assert_eq!(rec.warnings[1].line, 4);
        // The good rows parse identically to a strict parse of only them.
        let clean = format!(
            "{}\n0,300,job_1,task_1,1,T,1,0.5\n0,300,job_4,task_1,2,T,1,0.5\n",
            BATCH_TASK_HEADER
        );
        assert_eq!(rec.records, parse_batch_tasks(&clean).unwrap());
    }

    #[test]
    fn recovering_parse_covers_all_four_tables() {
        let usage = "0,machine_1,50,50,50\nbogus line\n60,machine_1,60,60,60\n";
        let r = parse_server_usage_with(usage, ParseOptions::recovering()).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.warnings.len(), 1);
        assert_eq!(r.warnings[0].line, 2);
        assert_eq!(r.warnings[0].table, "server_usage");

        let inst = "0,300,job_1,task_1,0,1,machine_1,T,0.1,0.2,0.1,0.2\n0,300,job_1\n";
        let r = parse_batch_instances_with(inst, ParseOptions::recovering()).unwrap();
        assert_eq!((r.records.len(), r.warnings.len()), (1, 1));

        let ev = "0,machine_1,add,64,1,1\n5,machine_1,reboot,0,0,0\n";
        let r = parse_machine_events_with(ev, ParseOptions::recovering()).unwrap();
        assert_eq!((r.records.len(), r.warnings.len()), (1, 1));
        assert!(matches!(
            r.warnings[0].error,
            TraceError::ParseLine { line: 2, .. }
        ));

        // A fully clean file recovers with zero warnings, strict-identical.
        let clean = write_machine_events(&[MachineEventRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(1),
            event: MachineEvent::Add,
            capacity_cpu: 64.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        }]);
        let r = parse_machine_events_with(&clean, ParseOptions::recovering()).unwrap();
        assert!(r.warnings.is_empty());
        assert_eq!(r.records, parse_machine_events(&clean).unwrap());
    }

    #[test]
    fn streaming_parse_matches_in_memory_including_warning_lines() {
        let text = format!(
            "# comment\n\n{}\n0,300,job_1,task_1,1,T,1,0.5\n\
             0,300,job_2,task_1,NOTANUM,T,1,0.5\n\
             0,300,job_3,task_1,2,T,1,0.5\n",
            BATCH_TASK_HEADER
        );
        let in_memory = parse_batch_tasks_with(&text, ParseOptions::recovering()).unwrap();
        let streamed =
            parse_batch_tasks_reader_with(text.as_bytes(), ParseOptions::recovering()).unwrap();
        assert_eq!(streamed, in_memory);
        // Physical line 5 is the bad row (comment + blank + header before it).
        assert_eq!(streamed.warnings[0].line, 5);
    }

    #[test]
    fn streaming_parse_reads_from_a_file() {
        use std::io::BufReader;
        let recs = vec![sample_instance()];
        let path =
            std::env::temp_dir().join(format!("batchlens-csv-stream-{}.csv", std::process::id()));
        std::fs::write(&path, write_batch_instances(&recs)).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let parsed = parse_batch_instances_reader(BufReader::new(file)).unwrap();
        assert_eq!(parsed, recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_read_failure_is_a_typed_io_error() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let reader = std::io::BufReader::new(FailingReader);
        let err = parse_server_usage_reader(reader).unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }));
        assert!(err.to_string().contains("disk on fire"));
    }

    #[test]
    fn usage_values_are_clamped_not_rejected() {
        let text = "0,machine_1,150,-20,50\n";
        let parsed = parse_server_usage(text).unwrap();
        assert_eq!(parsed[0].util.cpu.fraction(), 1.0);
        assert_eq!(parsed[0].util.mem.fraction(), 0.0);
        assert_eq!(parsed[0].util.disk.fraction(), 0.5);
    }
}
