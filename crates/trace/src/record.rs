use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{JobId, MachineId, TaskId, TimeRange, Timestamp, TraceError, UtilizationTriple};

/// Lifecycle status of a batch task, mirroring the v2017 `batch_task` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Accepted by the scheduler, not yet running.
    Waiting,
    /// At least one instance is executing.
    Running,
    /// All instances finished successfully.
    Terminated,
    /// The task failed.
    Failed,
    /// The task was cancelled (e.g. the mass relaunch in the paper's Fig 3(c)).
    Cancelled,
}

impl TaskStatus {
    /// True for the terminal states (`Terminated`, `Failed`, `Cancelled`).
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskStatus::Terminated | TaskStatus::Failed | TaskStatus::Cancelled
        )
    }

    /// The single-letter code used in the CSV dumps.
    pub const fn code(self) -> &'static str {
        match self {
            TaskStatus::Waiting => "W",
            TaskStatus::Running => "R",
            TaskStatus::Terminated => "T",
            TaskStatus::Failed => "F",
            TaskStatus::Cancelled => "C",
        }
    }
}

impl fmt::Display for TaskStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for TaskStatus {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "W" | "Waiting" => Ok(TaskStatus::Waiting),
            "R" | "Running" => Ok(TaskStatus::Running),
            "T" | "Terminated" => Ok(TaskStatus::Terminated),
            "F" | "Failed" => Ok(TaskStatus::Failed),
            "C" | "Cancelled" => Ok(TaskStatus::Cancelled),
            other => Err(TraceError::ParseField {
                field: "TaskStatus",
                value: other.to_owned(),
            }),
        }
    }
}

/// Lifecycle status of a batch instance.
pub type InstanceStatus = TaskStatus;

/// One row of the `batch_task` table: a task declaration within a job.
///
/// `(job, task)` is the unique key; `instance_count` declares how many
/// `batch_instance` rows belong to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchTaskRecord {
    /// When the task was created (aligned to the 300 s batch grid in dumps).
    pub create_time: Timestamp,
    /// Last status-change time; for terminal tasks this is the end time.
    pub modify_time: Timestamp,
    /// Owning job.
    pub job: JobId,
    /// Task id, unique within the job.
    pub task: TaskId,
    /// Declared number of instances.
    pub instance_count: u32,
    /// Task status.
    pub status: TaskStatus,
    /// Requested CPU cores (plan, not usage).
    pub plan_cpu: f64,
    /// Requested memory fraction of a machine (plan, not usage).
    pub plan_mem: f64,
}

impl BatchTaskRecord {
    /// The task's lifetime `[create_time, modify_time)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvertedInterval`] when `modify_time`
    /// precedes `create_time`.
    pub fn lifetime(&self) -> Result<TimeRange, TraceError> {
        TimeRange::new(self.create_time, self.modify_time)
    }
}

/// One row of the `batch_instance` table: a unit of task execution pinned to
/// exactly one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchInstanceRecord {
    /// Instance start time.
    pub start_time: Timestamp,
    /// Instance end time (equal to `start_time` while still running).
    pub end_time: Timestamp,
    /// Owning job.
    pub job: JobId,
    /// Owning task.
    pub task: TaskId,
    /// Sequence number within the task, `0..total`.
    pub seq: u32,
    /// Declared number of sibling instances (`total_seq_no` in the dump).
    pub total: u32,
    /// The machine executing this instance.
    pub machine: MachineId,
    /// Instance status.
    pub status: InstanceStatus,
    /// Average CPU cores actually used.
    pub cpu_avg: f64,
    /// Peak CPU cores actually used.
    pub cpu_max: f64,
    /// Average memory fraction actually used.
    pub mem_avg: f64,
    /// Peak memory fraction actually used.
    pub mem_max: f64,
}

impl BatchInstanceRecord {
    /// The instance's execution window `[start_time, end_time)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvertedInterval`] when the record's interval
    /// is inverted.
    pub fn window(&self) -> Result<TimeRange, TraceError> {
        TimeRange::new(self.start_time, self.end_time)
    }

    /// True when the instance is executing at `t`.
    pub fn running_at(&self, t: Timestamp) -> bool {
        self.start_time <= t && t < self.end_time
    }
}

/// One row of the `server_usage` table: a machine's utilization snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerUsageRecord {
    /// Snapshot time.
    pub time: Timestamp,
    /// The reporting machine.
    pub machine: MachineId,
    /// CPU / memory / disk utilization at `time`.
    pub util: UtilizationTriple,
}

/// Machine lifecycle event kinds from the `machine_events` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineEvent {
    /// Machine joined the cluster.
    Add,
    /// Machine experienced a recoverable error (stops accepting work).
    SoftError,
    /// Machine experienced a hard failure.
    HardError,
    /// Machine left the cluster (the mass shutdown of Fig 3(c) emits these).
    Remove,
}

impl MachineEvent {
    /// Whether the machine counts as alive after this event — the **single
    /// definition** of the liveness rule, shared by the batch dataset's
    /// checkpoint index and the online monitor's rolling checkpoints (so the
    /// two can never disagree): everything but `Remove`/`HardError` leaves
    /// the machine alive.
    pub const fn keeps_alive(self) -> bool {
        !matches!(self, MachineEvent::Remove | MachineEvent::HardError)
    }

    /// The event code used in the CSV dumps.
    pub const fn code(self) -> &'static str {
        match self {
            MachineEvent::Add => "add",
            MachineEvent::SoftError => "softerror",
            MachineEvent::HardError => "harderror",
            MachineEvent::Remove => "remove",
        }
    }
}

impl fmt::Display for MachineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for MachineEvent {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "add" => Ok(MachineEvent::Add),
            "softerror" => Ok(MachineEvent::SoftError),
            "harderror" => Ok(MachineEvent::HardError),
            "remove" => Ok(MachineEvent::Remove),
            other => Err(TraceError::ParseField {
                field: "MachineEvent",
                value: other.to_owned(),
            }),
        }
    }
}

/// One row of the `machine_events` table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineEventRecord {
    /// Event time.
    pub time: Timestamp,
    /// The machine the event concerns.
    pub machine: MachineId,
    /// What happened.
    pub event: MachineEvent,
    /// Normalized CPU capacity (cores) — meaningful on `Add`.
    pub capacity_cpu: f64,
    /// Normalized memory capacity — meaningful on `Add`.
    pub capacity_mem: f64,
    /// Normalized disk capacity — meaningful on `Add`.
    pub capacity_disk: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Utilization;

    #[test]
    fn status_codes_round_trip() {
        for s in [
            TaskStatus::Waiting,
            TaskStatus::Running,
            TaskStatus::Terminated,
            TaskStatus::Failed,
            TaskStatus::Cancelled,
        ] {
            assert_eq!(s.code().parse::<TaskStatus>().unwrap(), s);
        }
        assert!("X".parse::<TaskStatus>().is_err());
    }

    #[test]
    fn terminal_statuses() {
        assert!(!TaskStatus::Waiting.is_terminal());
        assert!(!TaskStatus::Running.is_terminal());
        assert!(TaskStatus::Terminated.is_terminal());
        assert!(TaskStatus::Failed.is_terminal());
        assert!(TaskStatus::Cancelled.is_terminal());
    }

    #[test]
    fn machine_event_codes_round_trip() {
        for e in [
            MachineEvent::Add,
            MachineEvent::SoftError,
            MachineEvent::HardError,
            MachineEvent::Remove,
        ] {
            assert_eq!(e.code().parse::<MachineEvent>().unwrap(), e);
        }
        assert!("reboot".parse::<MachineEvent>().is_err());
    }

    #[test]
    fn instance_window_and_running_at() {
        let rec = BatchInstanceRecord {
            start_time: Timestamp::new(100),
            end_time: Timestamp::new(400),
            job: JobId::new(1),
            task: TaskId::new(1),
            seq: 0,
            total: 1,
            machine: MachineId::new(0),
            status: TaskStatus::Terminated,
            cpu_avg: 0.5,
            cpu_max: 0.9,
            mem_avg: 0.3,
            mem_max: 0.4,
        };
        assert!(rec.running_at(Timestamp::new(100)));
        assert!(rec.running_at(Timestamp::new(399)));
        assert!(!rec.running_at(Timestamp::new(400)));
        assert_eq!(rec.window().unwrap().duration().as_seconds(), 300);
    }

    #[test]
    fn inverted_interval_is_reported() {
        let rec = BatchTaskRecord {
            create_time: Timestamp::new(500),
            modify_time: Timestamp::new(100),
            job: JobId::new(1),
            task: TaskId::new(1),
            instance_count: 1,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        };
        assert!(matches!(
            rec.lifetime(),
            Err(TraceError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn usage_record_holds_triple() {
        let rec = ServerUsageRecord {
            time: Timestamp::new(60),
            machine: MachineId::new(3),
            util: UtilizationTriple::clamped(0.2, 0.3, 0.4),
        };
        assert_eq!(rec.util.cpu, Utilization::clamped(0.2));
    }
}
