use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::{
    BatchInstanceRecord, BatchTaskRecord, InstanceId, IntervalIndex, JobId, MachineEvent,
    MachineEventRecord, MachineId, Metric, ServerUsageRecord, TaskId, TimeRange, TimeSeries,
    Timestamp, TraceError, UtilizationTriple,
};

/// A fully indexed, immutable trace: the substrate every BatchLens view
/// queries.
///
/// Build one with [`TraceDatasetBuilder`] (from simulator output or parsed
/// CSV tables). The dataset owns:
///
/// * the **batch hierarchy** — jobs → tasks → instances, each instance pinned
///   to one machine,
/// * the **machine table** — capacities and lifecycle events,
/// * the **usage series** — one [`TimeSeries`] per machine per
///   [`Metric`].
///
/// All accessors are `O(log n)` or better thanks to the indexes built at
/// construction time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceDataset {
    tasks: BTreeMap<(JobId, TaskId), BatchTaskRecord>,
    instances: Vec<BatchInstanceRecord>,
    /// `(job, task)` → indices into `instances`, sorted by seq.
    task_instances: BTreeMap<(JobId, TaskId), Vec<usize>>,
    /// machine → indices into `instances`.
    machine_instances: BTreeMap<MachineId, Vec<usize>>,
    machines: BTreeMap<MachineId, MachineInfo>,
    machine_events: Vec<MachineEventRecord>,
    /// machine → `[cpu, mem, disk]` series.
    usage: BTreeMap<MachineId, [TimeSeries; 3]>,
    /// Interval index over every instance's execution window; payload ids
    /// are indices into `instances`.
    instance_index: IntervalIndex,
    /// Interval index over *disjoint per-job* execution windows (each job's
    /// instance windows merged at build time); payload ids are raw job ids.
    /// A stab reports every running job exactly once — no per-query dedup.
    job_intervals: IntervalIndex,
    /// Per-machine interval index over that machine's instance windows.
    machine_intervals: BTreeMap<MachineId, IntervalIndex>,
    /// machine → sorted `(event time, alive afterwards)` checkpoints, for
    /// O(log n) liveness lookups.
    liveness: BTreeMap<MachineId, Vec<(Timestamp, bool)>>,
    /// machine → combined sample-and-hold utilization samples (one sorted
    /// time grid + parallel triples), for single-search `util_at` /
    /// `util_hold` resolution.
    util_index: BTreeMap<MachineId, UtilSamples>,
    /// The union time span, precomputed at build time.
    cached_span: Option<TimeRange>,
}

/// One machine's utilization samples in struct-of-arrays form: the three
/// metric series are built from the same `server_usage` rows, so they share
/// one sample grid — one sorted time array plus parallel triples answers
/// sample-and-hold queries with a single binary search (and one cache-local
/// read) where three per-series searches did before.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct UtilSamples {
    times: Vec<Timestamp>,
    triples: Vec<UtilizationTriple>,
}

impl UtilSamples {
    /// Index of the cell containing `t`: samples `[idx-1]` holds at `t`
    /// (0 = before the first sample).
    fn cell(&self, t: Timestamp) -> usize {
        self.times.partition_point(|&st| st <= t)
    }

    fn at_or_before(&self, t: Timestamp) -> Option<UtilizationTriple> {
        let idx = self.cell(t);
        (idx > 0).then(|| self.triples[idx - 1])
    }
}

/// Static information about one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Normalized CPU capacity (cores).
    pub capacity_cpu: f64,
    /// Normalized memory capacity.
    pub capacity_mem: f64,
    /// Normalized disk capacity.
    pub capacity_disk: f64,
}

impl Default for MachineInfo {
    fn default() -> Self {
        MachineInfo {
            capacity_cpu: 1.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        }
    }
}

/// Accumulates records and validates them into a [`TraceDataset`].
///
/// The builder is deliberately permissive about *order* (records may arrive
/// shuffled, as they do in the real dumps) but strict about *integrity*:
/// duplicate keys, inverted intervals and dangling task references are
/// reported as [`TraceError`]s by [`TraceDatasetBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct TraceDatasetBuilder {
    tasks: Vec<BatchTaskRecord>,
    instances: Vec<BatchInstanceRecord>,
    usage: Vec<ServerUsageRecord>,
    machine_events: Vec<MachineEventRecord>,
    /// Machines declared directly (simulator path) rather than via events.
    declared_machines: BTreeMap<MachineId, MachineInfo>,
    /// When true, instances referencing undeclared tasks are errors.
    strict_hierarchy: bool,
    /// Worker threads for [`TraceDatasetBuilder::build`]; `0` = process
    /// default ([`batchlens_exec::default_threads`]), `1` = serial.
    par_threads: usize,
}

impl TraceDatasetBuilder {
    /// Creates an empty builder with strict hierarchy checking enabled.
    pub fn new() -> Self {
        TraceDatasetBuilder {
            strict_hierarchy: true,
            ..Default::default()
        }
    }

    /// Disables the instance→task referential check (some real dump slices
    /// are task-incomplete).
    pub fn allow_dangling_instances(&mut self) -> &mut Self {
        self.strict_hierarchy = false;
        self
    }

    /// Sets how many worker threads [`TraceDatasetBuilder::build`] shards
    /// record ingestion and index construction across. `0` (the default)
    /// resolves to the process-wide default, `1` forces the serial path.
    ///
    /// The built dataset is **bit-identical at every thread count**: every
    /// shard boundary is a fixed function of the input, per-machine work
    /// never crosses shards, and merges fold in machine/chunk order.
    /// Validation errors are reported identically too (first failing record
    /// in deterministic order), surfaced as [`TraceError`]s — never as
    /// worker panics.
    pub fn par_threads(&mut self, threads: usize) -> &mut Self {
        self.par_threads = threads;
        self
    }

    /// Declares a machine with explicit capacities.
    pub fn declare_machine(&mut self, machine: MachineId, info: MachineInfo) -> &mut Self {
        self.declared_machines.insert(machine, info);
        self
    }

    /// Adds a `batch_task` record.
    pub fn push_task(&mut self, record: BatchTaskRecord) -> &mut Self {
        self.tasks.push(record);
        self
    }

    /// Adds a `batch_instance` record.
    pub fn push_instance(&mut self, record: BatchInstanceRecord) -> &mut Self {
        self.instances.push(record);
        self
    }

    /// Adds a `server_usage` record.
    pub fn push_usage(&mut self, record: ServerUsageRecord) -> &mut Self {
        self.usage.push(record);
        self
    }

    /// Adds a `machine_events` record.
    pub fn push_machine_event(&mut self, record: MachineEventRecord) -> &mut Self {
        self.machine_events.push(record);
        self
    }

    /// Bulk-adds records of all four kinds.
    pub fn extend_tables(
        &mut self,
        tasks: impl IntoIterator<Item = BatchTaskRecord>,
        instances: impl IntoIterator<Item = BatchInstanceRecord>,
        usage: impl IntoIterator<Item = ServerUsageRecord>,
        events: impl IntoIterator<Item = MachineEventRecord>,
    ) -> &mut Self {
        self.tasks.extend(tasks);
        self.instances.extend(instances);
        self.usage.extend(usage);
        self.machine_events.extend(events);
        self
    }

    /// Validates and indexes everything into a [`TraceDataset`].
    ///
    /// # Errors
    ///
    /// * [`TraceError::DuplicateTask`] / [`TraceError::DuplicateInstance`]
    ///   for repeated keys,
    /// * [`TraceError::InvertedInterval`] for records whose end precedes
    ///   their start,
    /// * [`TraceError::UnknownTask`] for dangling instances (strict mode),
    /// * [`TraceError::UnorderedSamples`] for duplicate usage timestamps on
    ///   one machine.
    pub fn build(&self) -> Result<TraceDataset, TraceError> {
        let threads = batchlens_exec::resolve_threads(self.par_threads);
        let mut ds = TraceDataset::default();

        for rec in &self.tasks {
            rec.lifetime()?;
            if ds.tasks.insert((rec.job, rec.task), *rec).is_some() {
                return Err(TraceError::DuplicateTask {
                    job: rec.job,
                    task: rec.task,
                });
            }
        }

        let instances = par_sorted_instances(&self.instances, threads);

        // Validate sharded: each worker checks a chunk of the sorted table
        // (window sanity, adjacent-duplicate, hierarchy reference). The
        // chunk boundaries are a fixed function of the input and errors are
        // reported for the first failing record in sorted order, so the
        // outcome is identical to the serial scan at every thread count.
        let chunks = batchlens_exec::fixed_chunks(instances.len(), VALIDATE_CHUNK);
        batchlens_exec::try_run_indexed(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            for (idx, rec) in instances[lo..hi].iter().enumerate() {
                rec.window()?;
                let i = lo + idx;
                if i > 0 {
                    let prev = &instances[i - 1];
                    if (prev.job, prev.task, prev.seq) == (rec.job, rec.task, rec.seq) {
                        return Err(TraceError::DuplicateInstance {
                            instance: InstanceId::new(rec.job, rec.task, rec.seq),
                        });
                    }
                }
                if self.strict_hierarchy && !ds.tasks.contains_key(&(rec.job, rec.task)) {
                    return Err(TraceError::UnknownTask {
                        job: rec.job,
                        task: rec.task,
                    });
                }
            }
            Ok(())
        })?;

        // Group instance indices per (job, task) and per machine: chunked
        // grouping maps merged in chunk order keep each key's index list in
        // ascending order, exactly as the serial single pass builds it.
        let grouped = batchlens_exec::run_indexed(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut by_task: BTreeMap<(JobId, TaskId), Vec<usize>> = BTreeMap::new();
            let mut by_machine: BTreeMap<MachineId, Vec<usize>> = BTreeMap::new();
            for (off, rec) in instances[lo..hi].iter().enumerate() {
                by_task
                    .entry((rec.job, rec.task))
                    .or_default()
                    .push(lo + off);
                by_machine.entry(rec.machine).or_default().push(lo + off);
            }
            (by_task, by_machine)
        });
        for (by_task, by_machine) in grouped {
            for (key, idxs) in by_task {
                ds.task_instances.entry(key).or_default().extend(idxs);
            }
            for (key, idxs) in by_machine {
                ds.machine_instances.entry(key).or_default().extend(idxs);
            }
        }
        ds.instances = instances;

        // Machine table: explicit declarations take precedence, then Add
        // events (which carry capacities), then machines implied by any
        // other lifecycle event, placement or usage row with default
        // capacities. A machine that only ever emitted a Remove/error event
        // is still a machine the trace knows about — its liveness
        // checkpoints must be reachable through the machine table, and the
        // live-window view counts it identically.
        for (m, info) in &self.declared_machines {
            ds.machines.insert(*m, *info);
        }
        for ev in &self.machine_events {
            if ev.event == MachineEvent::Add {
                ds.machines.entry(ev.machine).or_insert(MachineInfo {
                    capacity_cpu: ev.capacity_cpu,
                    capacity_mem: ev.capacity_mem,
                    capacity_disk: ev.capacity_disk,
                });
            }
        }
        for ev in &self.machine_events {
            ds.machines.entry(ev.machine).or_default();
        }
        for rec in &ds.instances {
            ds.machines.entry(rec.machine).or_default();
        }
        for rec in &self.usage {
            ds.machines.entry(rec.machine).or_default();
        }

        let mut events = self.machine_events.clone();
        events.sort_by_key(|e| (e.time, e.machine));
        ds.machine_events = events;

        // Usage: group by machine (sharded over input chunks, merged in
        // chunk order so each machine keeps its input order), then one
        // worker task per machine sorts and builds its three series. A
        // machine's samples never cross workers, so no float is ever
        // accumulated in a different order than the serial path.
        let usage_chunks = batchlens_exec::fixed_chunks(self.usage.len(), VALIDATE_CHUNK);
        let usage_groups = batchlens_exec::run_indexed(threads, usage_chunks.len(), |c| {
            let (lo, hi) = usage_chunks[c];
            let mut by_machine: BTreeMap<MachineId, Vec<(Timestamp, UtilizationTriple)>> =
                BTreeMap::new();
            for rec in &self.usage[lo..hi] {
                by_machine
                    .entry(rec.machine)
                    .or_default()
                    .push((rec.time, rec.util));
            }
            by_machine
        });
        let mut by_machine: BTreeMap<MachineId, Vec<(Timestamp, UtilizationTriple)>> =
            BTreeMap::new();
        for group in usage_groups {
            for (machine, samples) in group {
                by_machine.entry(machine).or_default().extend(samples);
            }
        }
        let machine_samples: Vec<(MachineId, Vec<(Timestamp, UtilizationTriple)>)> =
            by_machine.into_iter().collect();
        let built = batchlens_exec::try_run_indexed(threads, machine_samples.len(), |i| {
            let (machine, samples) = &machine_samples[i];
            // `from_samples` stable-sorts its pairs itself, so the borrowed
            // sample list needs no pre-sort (and no clone): the three metric
            // series and the duplicate-timestamp error come out exactly as
            // the old sort-then-build path produced them.
            let cpu =
                TimeSeries::from_samples(samples.iter().map(|(t, u)| (*t, u.cpu.fraction())))?;
            let mem =
                TimeSeries::from_samples(samples.iter().map(|(t, u)| (*t, u.mem.fraction())))?;
            let disk =
                TimeSeries::from_samples(samples.iter().map(|(t, u)| (*t, u.disk.fraction())))?;
            Ok((*machine, [cpu, mem, disk]))
        })?;
        ds.usage = built.into_iter().collect();

        ds.build_indexes(threads);
        Ok(ds)
    }
}

/// Tables already in the segment store's sort orders — the input of
/// [`TraceDataset::from_sorted_tables`]. The caller (the `store` module)
/// has *verified* each order with a linear scan before handing them over;
/// nothing here re-checks it.
pub(crate) struct SortedTables {
    /// Sorted by `(job, task)`.
    pub tasks: Vec<BatchTaskRecord>,
    /// Sorted by `(job, task, seq)`.
    pub instances: Vec<BatchInstanceRecord>,
    /// Per-machine `[cpu, mem, disk]` series, machine-ascending — built
    /// straight from the store's machine-major usage columns (strictly
    /// time-ascending per machine, verified during the column scan).
    pub usage: Vec<(MachineId, [TimeSeries; 3])>,
    /// Sorted by `(time, machine)`.
    pub events: Vec<MachineEventRecord>,
    /// The persisted machine capacity table.
    pub machines: Vec<(MachineId, MachineInfo)>,
}

impl TraceDataset {
    /// Builds a dataset from tables already in the store's sort orders —
    /// the segment-open fast path. It runs the **same validations** as
    /// [`TraceDatasetBuilder::build`] with dangling instances allowed
    /// (task lifetimes, instance windows, adjacent-duplicate keys; usage
    /// sample order was verified by the caller's column scan) but skips
    /// every sort and every row-at-a-time re-bucketing the builder
    /// performs, since sorted input makes each grouping a linear slice
    /// walk. The result is bit-identical to feeding the same rows through
    /// the builder (the workspace `store_differential` suite holds both
    /// paths to that).
    pub(crate) fn from_sorted_tables(
        t: SortedTables,
        threads: usize,
    ) -> Result<TraceDataset, TraceError> {
        let threads = batchlens_exec::resolve_threads(threads);
        let mut ds = TraceDataset::default();

        // Tasks: with sorted input the builder's BTreeMap insert probe
        // degenerates to an adjacent-duplicate check, and the map itself
        // bulk-loads from the ordered pairs.
        for (i, rec) in t.tasks.iter().enumerate() {
            rec.lifetime()?;
            if i > 0 {
                let prev = &t.tasks[i - 1];
                if (prev.job, prev.task) == (rec.job, rec.task) {
                    return Err(TraceError::DuplicateTask {
                        job: rec.job,
                        task: rec.task,
                    });
                }
            }
        }
        ds.tasks = t.tasks.iter().map(|r| ((r.job, r.task), *r)).collect();

        // Instances: the builder's validation pass minus the sort it no
        // longer needs (duplicates are adjacent in `(job, task, seq)`
        // order) and minus the hierarchy check (the store path always
        // allows dangling instances — the original build already ran it).
        for (i, rec) in t.instances.iter().enumerate() {
            rec.window()?;
            if i > 0 {
                let prev = &t.instances[i - 1];
                if (prev.job, prev.task, prev.seq) == (rec.job, rec.task, rec.seq) {
                    return Err(TraceError::DuplicateInstance {
                        instance: InstanceId::new(rec.job, rec.task, rec.seq),
                    });
                }
            }
        }
        // Grouping: per-(job, task) index runs are contiguous, and the
        // per-machine lists collect ascending indices — exactly what the
        // builder's chunk-merged maps hold.
        let mut start = 0;
        while start < t.instances.len() {
            let key = (t.instances[start].job, t.instances[start].task);
            let mut end = start + 1;
            while end < t.instances.len() && (t.instances[end].job, t.instances[end].task) == key {
                end += 1;
            }
            ds.task_instances.insert(key, (start..end).collect());
            start = end;
        }
        for (idx, rec) in t.instances.iter().enumerate() {
            ds.machine_instances
                .entry(rec.machine)
                .or_default()
                .push(idx);
        }
        ds.instances = t.instances;

        // Machine table: the builder's precedence ladder — declarations,
        // then Add events (which carry capacities), then any other
        // reference with default capacities. Machine-major usage means
        // only run boundaries ever touch the map, not every sample row.
        for (m, info) in &t.machines {
            ds.machines.insert(*m, *info);
        }
        for ev in &t.events {
            if ev.event == MachineEvent::Add {
                ds.machines.entry(ev.machine).or_insert(MachineInfo {
                    capacity_cpu: ev.capacity_cpu,
                    capacity_mem: ev.capacity_mem,
                    capacity_disk: ev.capacity_disk,
                });
            }
        }
        for ev in &t.events {
            ds.machines.entry(ev.machine).or_default();
        }
        for rec in &ds.instances {
            ds.machines.entry(rec.machine).or_default();
        }
        for (m, _) in &t.usage {
            ds.machines.entry(*m).or_default();
        }

        // Events arrive `(time, machine)`-sorted — the builder's sort is
        // a verified no-op here.
        ds.machine_events = t.events;

        // Usage arrives as finished per-machine series (built straight
        // from the store's machine-major columns), machine-ascending.
        ds.usage = t.usage.into_iter().collect();

        ds.build_indexes(threads);
        Ok(ds)
    }
}

/// Records per validation/grouping shard. Fixed (independent of the thread
/// count) so shard boundaries — and therefore error reporting and merge
/// order — are a pure function of the input.
const VALIDATE_CHUNK: usize = 8192;

/// Sorts the instance table by `(job, task, seq)` with a parallel
/// chunk-sort + k-way stable merge: each fixed-size chunk sorts on its own
/// worker, and the merge breaks ties by chunk index, which reproduces the
/// serial stable sort bit for bit.
fn par_sorted_instances(input: &[BatchInstanceRecord], threads: usize) -> Vec<BatchInstanceRecord> {
    let chunks = batchlens_exec::fixed_chunks(input.len(), VALIDATE_CHUNK);
    if chunks.len() <= 1 {
        let mut out = input.to_vec();
        out.sort_by_key(|r| (r.job, r.task, r.seq));
        return out;
    }
    let sorted: Vec<Vec<BatchInstanceRecord>> =
        batchlens_exec::run_indexed(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut part = input[lo..hi].to_vec();
            part.sort_by_key(|r| (r.job, r.task, r.seq));
            part
        });
    // K-way merge via a min-heap keyed by (sort key, chunk index): the
    // chunk-index tie-break keeps equal keys in input-chunk order (= input
    // order), matching the stability of the serial sort.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    type SortKey = (JobId, TaskId, u32);
    let mut heap: BinaryHeap<Reverse<(SortKey, usize)>> = sorted
        .iter()
        .enumerate()
        .filter(|(_, part)| !part.is_empty())
        .map(|(c, part)| Reverse(((part[0].job, part[0].task, part[0].seq), c)))
        .collect();
    let mut cursor = vec![0usize; sorted.len()];
    let mut out = Vec::with_capacity(input.len());
    while let Some(Reverse((_, c))) = heap.pop() {
        let rec = sorted[c][cursor[c]];
        out.push(rec);
        cursor[c] += 1;
        if cursor[c] < sorted[c].len() {
            let n = &sorted[c][cursor[c]];
            heap.push(Reverse(((n.job, n.task, n.seq), c)));
        }
    }
    out
}

/// One independent index-construction task of
/// [`TraceDataset::build_indexes`], fanned out across the build pool.
enum IndexPart {
    Instances(IntervalIndex),
    Jobs(IntervalIndex),
    Liveness(BTreeMap<MachineId, Vec<(Timestamp, bool)>>),
    Util(BTreeMap<MachineId, UtilSamples>),
    Span(Option<TimeRange>),
}

impl TraceDataset {
    /// Builds the query indexes (interval stabbing, liveness, span) from the
    /// validated tables. Called as the last step of
    /// [`TraceDatasetBuilder::build`].
    ///
    /// The four global index families are independent tasks, and the
    /// per-machine interval indexes additionally fan out one task per
    /// machine; every task reads the immutable tables and writes only its
    /// own result, so the indexes are identical at any thread count.
    fn build_indexes(&mut self, threads: usize) {
        let parts = batchlens_exec::run_indexed(threads, 5, |part| match part {
            0 => IndexPart::Instances(IntervalIndex::build(
                self.instances
                    .iter()
                    .enumerate()
                    .map(|(idx, rec)| (rec.start_time, rec.end_time, idx as u32)),
            )),
            1 => IndexPart::Jobs(self.build_job_intervals()),
            2 => {
                // Liveness checkpoints: events are already time-sorted; the
                // alive rule is `MachineEvent::keeps_alive`. Several events
                // at one instant merge **dead-wins** (alive iff every one
                // keeps the machine alive) — an arrival-order-independent
                // tie-break the online rolling checkpoints apply
                // identically.
                let mut liveness: BTreeMap<MachineId, Vec<(Timestamp, bool)>> = BTreeMap::new();
                for ev in &self.machine_events {
                    let alive = ev.event.keeps_alive();
                    let checkpoints = liveness.entry(ev.machine).or_default();
                    match checkpoints.last_mut() {
                        Some((t, a)) if *t == ev.time => *a = *a && alive,
                        _ => checkpoints.push((ev.time, alive)),
                    }
                }
                IndexPart::Liveness(liveness)
            }
            3 => {
                // Combined utilization samples: the three per-metric series
                // of one machine share a grid (built from the same usage
                // rows), so zipping them once here gives every
                // sample-and-hold consumer a single-search answer.
                IndexPart::Util(
                    self.usage
                        .iter()
                        .map(|(&machine, series)| {
                            let [cpu, mem, disk] = series;
                            let triples = cpu
                                .values()
                                .iter()
                                .zip(mem.values())
                                .zip(disk.values())
                                .map(|((&c, &m), &d)| UtilizationTriple::clamped(c, m, d))
                                .collect();
                            (
                                machine,
                                UtilSamples {
                                    times: cpu.times().to_vec(),
                                    triples,
                                },
                            )
                        })
                        .collect(),
                )
            }
            _ => {
                // Union span of instance windows and usage series.
                let mut span: Option<TimeRange> = None;
                let mut merge = |r: TimeRange| {
                    span = Some(match span {
                        Some(s) => s.union(&r),
                        None => r,
                    });
                };
                for rec in &self.instances {
                    if let Ok(w) = rec.window() {
                        merge(w);
                    }
                }
                for series in self.usage.values() {
                    if let Some(s) = series[0].span() {
                        merge(s);
                    }
                }
                IndexPart::Span(span)
            }
        });
        for part in parts {
            match part {
                IndexPart::Instances(ix) => self.instance_index = ix,
                IndexPart::Jobs(ix) => self.job_intervals = ix,
                IndexPart::Liveness(l) => self.liveness = l,
                IndexPart::Util(u) => self.util_index = u,
                IndexPart::Span(s) => self.cached_span = s,
            }
        }

        // Per-machine interval trees: one task per machine.
        let machine_rows: Vec<(&MachineId, &Vec<usize>)> = self.machine_instances.iter().collect();
        self.machine_intervals = batchlens_exec::run_indexed(threads, machine_rows.len(), |i| {
            let (&machine, idxs) = machine_rows[i];
            let index = IntervalIndex::build(idxs.iter().map(|&idx| {
                let rec = &self.instances[idx];
                (rec.start_time, rec.end_time, idx as u32)
            }));
            (machine, index)
        })
        .into_iter()
        .collect();
    }

    /// Merges each job's instance windows into disjoint intervals so a stab
    /// yields each running job once.
    fn build_job_intervals(&self) -> IntervalIndex {
        let mut per_job: BTreeMap<JobId, Vec<(Timestamp, Timestamp)>> = BTreeMap::new();
        for rec in &self.instances {
            if rec.start_time < rec.end_time {
                per_job
                    .entry(rec.job)
                    .or_default()
                    .push((rec.start_time, rec.end_time));
            }
        }
        let mut job_rows: Vec<(Timestamp, Timestamp, u32)> = Vec::new();
        for (job, mut windows) in per_job {
            windows.sort_unstable();
            let mut current: Option<(Timestamp, Timestamp)> = None;
            for (s, e) in windows {
                match &mut current {
                    Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
                    _ => {
                        if let Some((cs, ce)) = current.take() {
                            job_rows.push((cs, ce, u32::from(job)));
                        }
                        current = Some((s, e));
                    }
                }
            }
            if let Some((cs, ce)) = current {
                job_rows.push((cs, ce, u32::from(job)));
            }
        }
        IntervalIndex::build(job_rows)
    }
}

impl TraceDataset {
    /// Starts a builder (alias of [`TraceDatasetBuilder::new`]).
    pub fn builder() -> TraceDatasetBuilder {
        TraceDatasetBuilder::new()
    }

    /// Iterates over all jobs in id order.
    pub fn jobs(&self) -> impl Iterator<Item = JobView<'_>> + '_ {
        let mut ids: Vec<JobId> = self.tasks.keys().map(|(j, _)| *j).collect();
        ids.dedup();
        ids.into_iter().map(move |id| JobView { ds: self, id })
    }

    /// Looks up one job.
    pub fn job(&self, id: JobId) -> Option<JobView<'_>> {
        let has = self
            .tasks
            .range((id, TaskId::new(0))..=(id, TaskId::new(u32::MAX)))
            .next()
            .is_some();
        has.then_some(JobView { ds: self, id })
    }

    /// Number of distinct jobs.
    pub fn job_count(&self) -> usize {
        let mut last = None;
        let mut n = 0;
        for (j, _) in self.tasks.keys() {
            if last != Some(*j) {
                n += 1;
                last = Some(*j);
            }
        }
        n
    }

    /// Number of task records.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of instance records.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// All task records, in `(job, task)` order.
    pub fn task_records(&self) -> impl Iterator<Item = &BatchTaskRecord> + '_ {
        self.tasks.values()
    }

    /// All instance records, in `(job, task, seq)` order.
    pub fn instance_records(&self) -> &[BatchInstanceRecord] {
        &self.instances
    }

    /// All machine lifecycle events, in time order.
    pub fn machine_events(&self) -> &[MachineEventRecord] {
        &self.machine_events
    }

    /// Iterates over all machines in id order.
    pub fn machines(&self) -> impl Iterator<Item = MachineView<'_>> + '_ {
        self.machines
            .keys()
            .map(move |&id| MachineView { ds: self, id })
    }

    /// Looks up one machine.
    pub fn machine(&self, id: MachineId) -> Option<MachineView<'_>> {
        self.machines
            .contains_key(&id)
            .then_some(MachineView { ds: self, id })
    }

    /// Number of machines (declared, added or referenced).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Jobs with at least one instance running at `t`, in id order.
    ///
    /// Served by the per-job interval index (disjoint merged windows):
    /// O(log n + j log j) in the number of running jobs `j`, with no
    /// instance-level dedup at query time.
    pub fn jobs_running_at(&self, t: Timestamp) -> Vec<JobView<'_>> {
        let mut ids: Vec<JobId> = Vec::new();
        self.job_intervals
            .stab_with(t, |raw| ids.push(JobId::new(raw)));
        ids.sort_unstable();
        ids.into_iter().map(|id| JobView { ds: self, id }).collect()
    }

    /// Every instance running at `t`, in `(job, task, seq)` order —
    /// O(log n + k) via the interval index. This is the primitive behind the
    /// hierarchy snapshot and co-allocation views.
    pub fn instances_running_at(&self, t: Timestamp) -> Vec<InstanceRef<'_>> {
        let mut idxs = self.instance_index.stab(t);
        idxs.sort_unstable();
        idxs.into_iter()
            .map(|idx| self.instance_by_idx(idx as usize))
            .collect()
    }

    /// How many instances are running at `t` — O(log n), independent of the
    /// answer.
    pub fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.instance_index.count_at(t)
    }

    /// The interval index over all instance execution windows (payload ids
    /// are indices into [`TraceDataset::instance_records`]). Exposed for
    /// event sweeps that want the sorted start/end arrays directly.
    pub fn instance_index(&self) -> &IntervalIndex {
        &self.instance_index
    }

    /// The union time span of all instances and usage samples, or `None` for
    /// an empty dataset. Precomputed at build time.
    pub fn span(&self) -> Option<TimeRange> {
        self.cached_span
    }

    fn instance_by_idx(&self, idx: usize) -> InstanceRef<'_> {
        InstanceRef {
            record: &self.instances[idx],
        }
    }

    /// The sample-and-hold utilization hold at `t` — the hot-path kernel
    /// behind `DatasetQuery::util_hold`: one map lookup, one binary search
    /// over the combined per-machine sample grid, value and validity window
    /// read from the same cache lines.
    pub(crate) fn util_hold_at(&self, machine: MachineId, t: Timestamp) -> crate::UtilHold {
        let Some(samples) = self.util_index.get(&machine) else {
            // Unknown or usage-silent machines answer `None` forever.
            return crate::UtilHold {
                util: None,
                since: None,
                until: None,
            };
        };
        let idx = samples.cell(t);
        crate::UtilHold {
            util: (idx > 0).then(|| samples.triples[idx - 1]),
            since: (idx > 0).then(|| samples.times[idx - 1]),
            until: (idx < samples.times.len()).then(|| samples.times[idx]),
        }
    }
}

/// Borrowed view of one job and its subtree.
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    ds: &'a TraceDataset,
    id: JobId,
}

impl<'a> JobView<'a> {
    /// The job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Iterates over the job's tasks in task-id order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskView<'a>> + 'a {
        let ds = self.ds;
        let id = self.id;
        ds.tasks
            .range((id, TaskId::new(0))..=(id, TaskId::new(u32::MAX)))
            .map(move |(&(_, task), _)| TaskView {
                ds,
                job: id,
                id: task,
            })
    }

    /// Number of tasks in this job.
    pub fn task_count(&self) -> usize {
        self.tasks().count()
    }

    /// Total instances across all tasks.
    pub fn instance_count(&self) -> usize {
        self.tasks().map(|t| t.instance_count()).sum()
    }

    /// The distinct machines executing any instance of this job.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut out: BTreeSet<MachineId> = BTreeSet::new();
        for task in self.tasks() {
            for inst in task.instances() {
                out.insert(inst.record.machine);
            }
        }
        out.into_iter().collect()
    }

    /// The job's lifetime: union of its tasks' lifetimes.
    pub fn lifetime(&self) -> Option<TimeRange> {
        let mut out: Option<TimeRange> = None;
        for task in self.tasks() {
            if let Ok(l) = task.record().lifetime() {
                out = Some(match out {
                    Some(o) => o.union(&l),
                    None => l,
                });
            }
        }
        out
    }

    /// True when any instance of the job runs at `t`.
    pub fn running_at(&self, t: Timestamp) -> bool {
        self.tasks()
            .any(|task| task.instances().any(|i| i.record.running_at(t)))
    }
}

/// Borrowed view of one task and its instances.
#[derive(Debug, Clone, Copy)]
pub struct TaskView<'a> {
    ds: &'a TraceDataset,
    job: JobId,
    id: TaskId,
}

impl<'a> TaskView<'a> {
    /// The owning job id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The task id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The underlying `batch_task` record.
    pub fn record(&self) -> &'a BatchTaskRecord {
        &self.ds.tasks[&(self.job, self.id)]
    }

    /// Iterates over the task's instances in sequence order.
    pub fn instances(&self) -> impl Iterator<Item = InstanceRef<'a>> + 'a {
        let ds = self.ds;
        ds.task_instances
            .get(&(self.job, self.id))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&idx| ds.instance_by_idx(idx))
    }

    /// Number of instance records attached to this task.
    pub fn instance_count(&self) -> usize {
        self.ds
            .task_instances
            .get(&(self.job, self.id))
            .map_or(0, Vec::len)
    }

    /// The distinct machines executing this task.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut out: BTreeSet<MachineId> = BTreeSet::new();
        for inst in self.instances() {
            out.insert(inst.record.machine);
        }
        out.into_iter().collect()
    }

    /// The latest `end_time` among this task's instances (the task's
    /// observed completion), or `None` without instances.
    pub fn observed_end(&self) -> Option<Timestamp> {
        self.instances().map(|i| i.record.end_time).max()
    }

    /// The earliest `start_time` among this task's instances.
    pub fn observed_start(&self) -> Option<Timestamp> {
        self.instances().map(|i| i.record.start_time).min()
    }
}

/// Borrowed view of one instance record.
#[derive(Debug, Clone, Copy)]
pub struct InstanceRef<'a> {
    /// The underlying `batch_instance` record.
    pub record: &'a BatchInstanceRecord,
}

impl InstanceRef<'_> {
    /// The instance's identity.
    pub fn id(&self) -> InstanceId {
        InstanceId::new(self.record.job, self.record.task, self.record.seq)
    }
}

/// Borrowed view of one machine: capacities, placements and usage series.
#[derive(Debug, Clone, Copy)]
pub struct MachineView<'a> {
    ds: &'a TraceDataset,
    id: MachineId,
}

impl<'a> MachineView<'a> {
    /// The machine id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Capacity information.
    pub fn info(&self) -> MachineInfo {
        self.ds.machines[&self.id]
    }

    /// Instances placed on this machine, in `(job, task, seq)` order.
    pub fn instances(&self) -> impl Iterator<Item = InstanceRef<'a>> + 'a {
        let ds = self.ds;
        ds.machine_instances
            .get(&self.id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&idx| ds.instance_by_idx(idx))
    }

    /// Distinct jobs with an instance on this machine running at `t` —
    /// O(log n + k) via the per-machine interval index.
    pub fn jobs_at(&self, t: Timestamp) -> Vec<JobId> {
        let mut out: BTreeSet<JobId> = BTreeSet::new();
        if let Some(index) = self.ds.machine_intervals.get(&self.id) {
            index.stab_with(t, |idx| {
                out.insert(self.ds.instances[idx as usize].job);
            });
        }
        out.into_iter().collect()
    }

    /// How many of this machine's instances are running at `t` — O(log n).
    pub fn running_instances_at(&self, t: Timestamp) -> usize {
        self.ds
            .machine_intervals
            .get(&self.id)
            .map_or(0, |index| index.count_at(t))
    }

    /// The machine's usage series for `metric`, or `None` when the trace has
    /// no usage rows for it.
    pub fn usage(&self, metric: Metric) -> Option<&'a TimeSeries> {
        self.ds.usage.get(&self.id).map(|s| &s[metric.index()])
    }

    /// The machine's utilization triple at `t` (sample-and-hold), or `None`
    /// before its first sample. One lookup + one binary search over the
    /// combined utilization samples (the three metrics share a grid).
    pub fn util_at(&self, t: Timestamp) -> Option<UtilizationTriple> {
        self.ds.util_index.get(&self.id)?.at_or_before(t)
    }

    /// Whether the machine is alive at `t` according to machine events.
    /// Machines with no events are considered always alive; events sharing
    /// one timestamp merge dead-wins.
    ///
    /// A binary search over the machine's liveness checkpoints
    /// ([`crate::alive_at_checkpoints`]) — O(log e) in the machine's own
    /// event count, not a scan of the global event table.
    pub fn alive_at(&self, t: Timestamp) -> bool {
        self.ds
            .liveness
            .get(&self.id)
            .is_none_or(|checkpoints| crate::alive_at_checkpoints(checkpoints, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskStatus;

    fn task(job: u32, task_id: u32, n: u32, t0: i64, t1: i64) -> BatchTaskRecord {
        BatchTaskRecord {
            create_time: Timestamp::new(t0),
            modify_time: Timestamp::new(t1),
            job: JobId::new(job),
            task: TaskId::new(task_id),
            instance_count: n,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        }
    }

    fn instance(
        job: u32,
        task_id: u32,
        seq: u32,
        machine: u32,
        t0: i64,
        t1: i64,
    ) -> BatchInstanceRecord {
        BatchInstanceRecord {
            start_time: Timestamp::new(t0),
            end_time: Timestamp::new(t1),
            job: JobId::new(job),
            task: TaskId::new(task_id),
            seq,
            total: 1,
            machine: MachineId::new(machine),
            status: TaskStatus::Terminated,
            cpu_avg: 0.5,
            cpu_max: 0.8,
            mem_avg: 0.3,
            mem_max: 0.4,
        }
    }

    fn usage(machine: u32, t: i64, cpu: f64) -> ServerUsageRecord {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(cpu, cpu / 2.0, cpu / 4.0),
        }
    }

    fn small_dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(task(1, 1, 2, 0, 600));
        b.push_task(task(1, 2, 1, 0, 900));
        b.push_task(task(2, 1, 1, 300, 1200));
        b.push_instance(instance(1, 1, 0, 10, 0, 600));
        b.push_instance(instance(1, 1, 1, 11, 0, 550));
        b.push_instance(instance(1, 2, 0, 10, 0, 900));
        b.push_instance(instance(2, 1, 0, 12, 300, 1200));
        for t in (0..1200).step_by(300) {
            for m in [10u32, 11, 12] {
                b.push_usage(usage(m, t, 0.4));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn hierarchy_counts() {
        let ds = small_dataset();
        assert_eq!(ds.job_count(), 2);
        assert_eq!(ds.task_count(), 3);
        assert_eq!(ds.instance_count(), 4);
        assert_eq!(ds.machine_count(), 3);
        let job1 = ds.job(JobId::new(1)).unwrap();
        assert_eq!(job1.task_count(), 2);
        assert_eq!(job1.instance_count(), 3);
        assert_eq!(
            job1.machines(),
            vec![MachineId::new(10), MachineId::new(11)]
        );
    }

    #[test]
    fn job_lookup_missing() {
        let ds = small_dataset();
        assert!(ds.job(JobId::new(99)).is_none());
    }

    #[test]
    fn jobs_running_at_timestamp() {
        let ds = small_dataset();
        let at0: Vec<JobId> = ds
            .jobs_running_at(Timestamp::new(0))
            .iter()
            .map(|j| j.id())
            .collect();
        assert_eq!(at0, vec![JobId::new(1)]);
        let at500: Vec<JobId> = ds
            .jobs_running_at(Timestamp::new(500))
            .iter()
            .map(|j| j.id())
            .collect();
        assert_eq!(at500, vec![JobId::new(1), JobId::new(2)]);
        let at1000: Vec<JobId> = ds
            .jobs_running_at(Timestamp::new(1000))
            .iter()
            .map(|j| j.id())
            .collect();
        assert_eq!(at1000, vec![JobId::new(2)]);
    }

    #[test]
    fn task_observed_window() {
        let ds = small_dataset();
        let job1 = ds.job(JobId::new(1)).unwrap();
        let t1 = job1.tasks().next().unwrap();
        assert_eq!(t1.observed_start(), Some(Timestamp::new(0)));
        assert_eq!(t1.observed_end(), Some(Timestamp::new(600)));
    }

    #[test]
    fn machine_placements_and_coallocation() {
        let ds = small_dataset();
        let m10 = ds.machine(MachineId::new(10)).unwrap();
        assert_eq!(m10.instances().count(), 2);
        // machine 10 runs job 1 twice (tasks 1 and 2) — one distinct job at t=100.
        assert_eq!(m10.jobs_at(Timestamp::new(100)), vec![JobId::new(1)]);
    }

    #[test]
    fn usage_series_and_sample_hold() {
        let ds = small_dataset();
        let m10 = ds.machine(MachineId::new(10)).unwrap();
        let cpu = m10.usage(Metric::Cpu).unwrap();
        assert_eq!(cpu.len(), 4);
        let u = m10.util_at(Timestamp::new(450)).unwrap();
        assert!((u.cpu.fraction() - 0.4).abs() < 1e-12);
        assert!(m10.util_at(Timestamp::new(-5)).is_none());
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(task(1, 1, 1, 0, 10));
        b.push_task(task(1, 1, 1, 0, 20));
        assert!(matches!(b.build(), Err(TraceError::DuplicateTask { .. })));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(task(1, 1, 2, 0, 10));
        b.push_instance(instance(1, 1, 0, 5, 0, 10));
        b.push_instance(instance(1, 1, 0, 6, 0, 10));
        assert!(matches!(
            b.build(),
            Err(TraceError::DuplicateInstance { .. })
        ));
    }

    #[test]
    fn dangling_instance_strictness() {
        let mut b = TraceDatasetBuilder::new();
        b.push_instance(instance(9, 1, 0, 5, 0, 10));
        assert!(matches!(b.build(), Err(TraceError::UnknownTask { .. })));
        b.allow_dangling_instances();
        let ds = b.build().unwrap();
        assert_eq!(ds.instance_count(), 1);
    }

    #[test]
    fn inverted_instance_interval_rejected() {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(task(1, 1, 1, 0, 10));
        b.push_instance(instance(1, 1, 0, 5, 10, 0));
        assert!(matches!(
            b.build(),
            Err(TraceError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn machine_events_drive_liveness() {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(task(1, 1, 1, 0, 10));
        b.push_instance(instance(1, 1, 0, 5, 0, 10));
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(5),
            event: MachineEvent::Add,
            capacity_cpu: 64.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        });
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(100),
            machine: MachineId::new(5),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        let ds = b.build().unwrap();
        let m = ds.machine(MachineId::new(5)).unwrap();
        assert!(m.alive_at(Timestamp::new(50)));
        assert!(!m.alive_at(Timestamp::new(100)));
        assert!((m.info().capacity_cpu - 64.0).abs() < 1e-12);
    }

    #[test]
    fn indexed_queries_match_linear_scans() {
        let ds = small_dataset();
        for t in (-100..1400).step_by(37) {
            let t = Timestamp::new(t);
            // jobs_running_at vs a full-table scan.
            let scanned: BTreeSet<JobId> = ds
                .instance_records()
                .iter()
                .filter(|r| r.running_at(t))
                .map(|r| r.job)
                .collect();
            let indexed: Vec<JobId> = ds.jobs_running_at(t).iter().map(|j| j.id()).collect();
            assert_eq!(
                indexed,
                scanned.iter().copied().collect::<Vec<_>>(),
                "at {t}"
            );
            // Running instances and counts.
            let running = ds.instances_running_at(t);
            assert_eq!(
                running.len(),
                ds.instance_records()
                    .iter()
                    .filter(|r| r.running_at(t))
                    .count()
            );
            assert_eq!(ds.running_instance_count_at(t), running.len());
            assert!(running.iter().all(|i| i.record.running_at(t)));
            // Per-machine queries.
            for m in ds.machines() {
                let scan_jobs: BTreeSet<JobId> = m
                    .instances()
                    .filter(|i| i.record.running_at(t))
                    .map(|i| i.record.job)
                    .collect();
                assert_eq!(m.jobs_at(t), scan_jobs.iter().copied().collect::<Vec<_>>());
                assert_eq!(
                    m.running_instances_at(t),
                    m.instances().filter(|i| i.record.running_at(t)).count()
                );
            }
        }
    }

    #[test]
    fn liveness_handles_multiple_events() {
        let mut b = TraceDatasetBuilder::new();
        let ev = |t: i64, e: MachineEvent| MachineEventRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(5),
            event: e,
            capacity_cpu: 1.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        };
        b.push_machine_event(ev(10, MachineEvent::Add));
        b.push_machine_event(ev(20, MachineEvent::SoftError));
        b.push_machine_event(ev(30, MachineEvent::Remove));
        b.push_machine_event(ev(40, MachineEvent::Add));
        let ds = b.build().unwrap();
        let m = ds.machine(MachineId::new(5)).unwrap();
        assert!(m.alive_at(Timestamp::new(5))); // before first event
        assert!(m.alive_at(Timestamp::new(15)));
        assert!(m.alive_at(Timestamp::new(25))); // soft errors stay alive
        assert!(!m.alive_at(Timestamp::new(30)));
        assert!(!m.alive_at(Timestamp::new(39)));
        assert!(m.alive_at(Timestamp::new(40)));
    }

    #[test]
    fn span_unions_instances_and_usage() {
        let ds = small_dataset();
        let span = ds.span().unwrap();
        assert_eq!(span.start(), Timestamp::new(0));
        assert!(span.end() >= Timestamp::new(1200));
    }

    #[test]
    fn empty_dataset_behaves() {
        let ds = TraceDatasetBuilder::new().build().unwrap();
        assert_eq!(ds.job_count(), 0);
        assert!(ds.span().is_none());
        assert!(ds.jobs_running_at(Timestamp::ZERO).is_empty());
    }

    #[test]
    fn duplicate_usage_timestamp_rejected() {
        let mut b = TraceDatasetBuilder::new();
        b.push_usage(usage(1, 0, 0.5));
        b.push_usage(usage(1, 0, 0.6));
        assert!(matches!(
            b.build(),
            Err(TraceError::UnorderedSamples { .. })
        ));
    }
}
