//! Dataset-level statistics reproducing the numbers quoted in the paper's
//! Section II:
//!
//! > "According to our data pre-processing, 75 % batch jobs contain only one
//! > task, while 94 % tasks have multiple instances. Note that each instance
//! > must be executed by only one compute node, and each compute node can run
//! > multiple instances simultaneously."
//!
//! [`DatasetStats::compute`] measures all of these on any [`TraceDataset`],
//! so the simulator's output can be asserted against the paper's shape and
//! the `table_dataset_stats` bench can print the comparison table.

use serde::{Deserialize, Serialize};

use crate::{TimeDelta, Timestamp, TraceDataset};

/// Aggregate statistics of a trace dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of machines.
    pub machines: usize,
    /// Number of batch jobs.
    pub jobs: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Number of instances.
    pub instances: usize,
    /// Fraction of jobs with exactly one task (paper: ≈ 0.75).
    pub single_task_job_fraction: f64,
    /// Fraction of tasks with more than one instance (paper: ≈ 0.94).
    pub multi_instance_task_fraction: f64,
    /// Trace span in seconds (paper: 86 400 — 24 hours).
    pub span_seconds: i64,
    /// Largest number of instances observed concurrently on one machine.
    pub max_concurrent_instances_per_machine: usize,
    /// Mean number of instances per task.
    pub mean_instances_per_task: f64,
    /// Mean number of tasks per job.
    pub mean_tasks_per_job: f64,
}

impl DatasetStats {
    /// Computes statistics over `ds`.
    pub fn compute(ds: &TraceDataset) -> DatasetStats {
        let jobs = ds.job_count();
        let tasks = ds.task_count();
        let instances = ds.instance_count();

        let mut single_task_jobs = 0usize;
        for job in ds.jobs() {
            if job.task_count() == 1 {
                single_task_jobs += 1;
            }
        }

        let mut multi_instance_tasks = 0usize;
        for job in ds.jobs() {
            for task in job.tasks() {
                if task.instance_count() > 1 {
                    multi_instance_tasks += 1;
                }
            }
        }

        let span = ds.span();
        let span_seconds = span.map_or(0, |s| s.duration().as_seconds());

        let max_concurrent = ds
            .machines()
            .map(|m| {
                max_concurrency(
                    m.instances()
                        .map(|i| (i.record.start_time, i.record.end_time)),
                )
            })
            .max()
            .unwrap_or(0);

        DatasetStats {
            machines: ds.machine_count(),
            jobs,
            tasks,
            instances,
            single_task_job_fraction: fraction(single_task_jobs, jobs),
            multi_instance_task_fraction: fraction(multi_instance_tasks, tasks),
            span_seconds,
            max_concurrent_instances_per_machine: max_concurrent,
            mean_instances_per_task: mean(instances, tasks),
            mean_tasks_per_job: mean(tasks, jobs),
        }
    }

    /// Formats the paper-vs-measured comparison table used by the
    /// `table_dataset_stats` experiment.
    pub fn comparison_table(&self) -> String {
        let mut s = String::new();
        s.push_str("statistic                       | paper      | measured\n");
        s.push_str("--------------------------------|------------|----------\n");
        s.push_str(&format!(
            "machines                        | 1300       | {}\n",
            self.machines
        ));
        s.push_str(&format!(
            "trace span (hours)              | 24         | {:.1}\n",
            self.span_seconds as f64 / 3600.0
        ));
        s.push_str(&format!(
            "single-task job fraction        | 0.75       | {:.3}\n",
            self.single_task_job_fraction
        ));
        s.push_str(&format!(
            "multi-instance task fraction    | 0.94       | {:.3}\n",
            self.multi_instance_task_fraction
        ));
        s.push_str(&format!(
            "instances per machine (max conc)| many       | {}\n",
            self.max_concurrent_instances_per_machine
        ));
        s
    }
}

fn fraction(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn mean(num: usize, den: usize) -> f64 {
    fraction(num, den)
}

/// Maximum number of simultaneously open `[start, end)` intervals.
///
/// This verifies the paper's "each compute node can run multiple instances
/// simultaneously" claim on generated data.
pub fn max_concurrency<I>(intervals: I) -> usize
where
    I: IntoIterator<Item = (Timestamp, Timestamp)>,
{
    let mut events: Vec<(Timestamp, i32)> = Vec::new();
    for (start, end) in intervals {
        if end <= start {
            continue;
        }
        events.push((start, 1));
        events.push((end, -1));
    }
    // Ends sort before starts at equal time: half-open intervals do not overlap
    // at the boundary.
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut current = 0i64;
    let mut best = 0i64;
    for (_, delta) in events {
        current += i64::from(delta);
        best = best.max(current);
    }
    best.max(0) as usize
}

/// Histogram of tasks-per-job, used to calibrate the simulator against the
/// paper's 75 % single-task statement.
pub fn tasks_per_job_histogram(ds: &TraceDataset) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for job in ds.jobs() {
        *counts.entry(job.task_count()).or_default() += 1;
    }
    counts.into_iter().collect()
}

/// Histogram of instances-per-task.
pub fn instances_per_task_histogram(ds: &TraceDataset) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for job in ds.jobs() {
        for task in job.tasks() {
            *counts.entry(task.instance_count()).or_default() += 1;
        }
    }
    counts.into_iter().collect()
}

/// Mean utilization across all machines over the whole trace, per metric —
/// a quick health check that generated regimes hit their target bands.
pub fn overall_mean_utilization(ds: &TraceDataset) -> [f64; 3] {
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for machine in ds.machines() {
        for metric in crate::Metric::ALL {
            if let Some(series) = machine.usage(metric) {
                if let Some(st) = series.stats() {
                    sums[metric.index()] += st.mean * st.count as f64;
                    counts[metric.index()] += st.count;
                }
            }
        }
    }
    let mut out = [0.0f64; 3];
    for i in 0..3 {
        if counts[i] > 0 {
            out[i] = sums[i] / counts[i] as f64;
        }
    }
    out
}

/// Returns `TimeDelta::BATCH_RESOLUTION`-aligned timestamps at which at least
/// one job is running, useful for picking interesting snapshot times.
pub fn active_batch_timestamps(ds: &TraceDataset) -> Vec<Timestamp> {
    let Some(span) = ds.span() else {
        return Vec::new();
    };
    span.steps(TimeDelta::BATCH_RESOLUTION)
        .filter(|&t| !ds.jobs_running_at(t).is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BatchInstanceRecord, BatchTaskRecord, JobId, MachineId, TaskId, TaskStatus,
        TraceDatasetBuilder,
    };

    fn build(jobs: &[(u32, &[u32])]) -> TraceDataset {
        // jobs: (job_id, [instances_per_task...])
        let mut b = TraceDatasetBuilder::new();
        let mut machine = 0u32;
        for &(job, tasks) in jobs {
            for (ti, &n) in tasks.iter().enumerate() {
                let task_id = ti as u32 + 1;
                b.push_task(BatchTaskRecord {
                    create_time: Timestamp::new(0),
                    modify_time: Timestamp::new(600),
                    job: JobId::new(job),
                    task: TaskId::new(task_id),
                    instance_count: n,
                    status: TaskStatus::Terminated,
                    plan_cpu: 1.0,
                    plan_mem: 0.5,
                });
                for seq in 0..n {
                    b.push_instance(BatchInstanceRecord {
                        start_time: Timestamp::new(0),
                        end_time: Timestamp::new(600),
                        job: JobId::new(job),
                        task: TaskId::new(task_id),
                        seq,
                        total: n,
                        machine: MachineId::new(machine % 4),
                        status: TaskStatus::Terminated,
                        cpu_avg: 0.5,
                        cpu_max: 0.8,
                        mem_avg: 0.3,
                        mem_max: 0.4,
                    });
                    machine += 1;
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn fractions_match_construction() {
        // 4 jobs: 3 single-task (75 %), 1 two-task.
        // 5 tasks: instances [4, 4, 4, 4, 1] → 4/5 = 80 % multi-instance.
        let ds = build(&[(1, &[4]), (2, &[4]), (3, &[4]), (4, &[4, 1])]);
        let st = DatasetStats::compute(&ds);
        assert_eq!(st.jobs, 4);
        assert_eq!(st.tasks, 5);
        assert!((st.single_task_job_fraction - 0.75).abs() < 1e-12);
        assert!((st.multi_instance_task_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn max_concurrency_counts_overlaps() {
        let t = Timestamp::new;
        assert_eq!(
            max_concurrency(vec![(t(0), t(10)), (t(5), t(15)), (t(20), t(30))]),
            2
        );
        // Half-open: one interval ending exactly when another starts is not overlap.
        assert_eq!(max_concurrency(vec![(t(0), t(10)), (t(10), t(20))]), 1);
        assert_eq!(max_concurrency(Vec::<(Timestamp, Timestamp)>::new()), 0);
        // Degenerate intervals are ignored.
        assert_eq!(max_concurrency(vec![(t(5), t(5))]), 0);
    }

    #[test]
    fn histograms_sum_to_totals() {
        let ds = build(&[(1, &[4]), (2, &[2, 1])]);
        let tj = tasks_per_job_histogram(&ds);
        assert_eq!(tj.iter().map(|(_, c)| c).sum::<usize>(), 2);
        let it = instances_per_task_histogram(&ds);
        assert_eq!(it.iter().map(|(_, c)| c).sum::<usize>(), 3);
    }

    #[test]
    fn comparison_table_mentions_paper_numbers() {
        let ds = build(&[(1, &[4])]);
        let table = DatasetStats::compute(&ds).comparison_table();
        assert!(table.contains("0.75"));
        assert!(table.contains("0.94"));
        assert!(table.contains("1300"));
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let ds = TraceDatasetBuilder::new().build().unwrap();
        let st = DatasetStats::compute(&ds);
        assert_eq!(st.jobs, 0);
        assert_eq!(st.single_task_job_fraction, 0.0);
        assert_eq!(st.span_seconds, 0);
    }
}
