//! Write-ahead log: checksummed, length-prefixed binary record framing with
//! segment rotation — the durability substrate of the streaming monitor.
//!
//! Every mutation the live monitor accepts for processing (usage sample,
//! instance open/close, machine event, alert drain) is encoded as one
//! [`WalRecord`] and appended as one *frame* before it is applied. Because
//! the monitor is deterministic — its out-of-order acceptance decisions
//! depend only on the records delivered before — replaying the log
//! reproduces the pre-crash state **bit-identically**: every counter, every
//! window sample, every detector kernel state, every buffered alert.
//!
//! ## Frame format
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬──────────────────────┐
//! │ len u32 │ seq u64 │ crc u32 │ payload (len bytes)  │   all little-endian
//! └─────────┴─────────┴─────────┴──────────────────────┘
//! ```
//!
//! * `len` — payload length in bytes (`1..=`[`MAX_PAYLOAD_BYTES`]).
//! * `seq` — monotonically increasing record sequence number.
//! * `crc` — CRC-32 (IEEE 802.3 polynomial) over `len ‖ seq ‖ payload`.
//!   Covering the length and sequence fields means a single-bit flip
//!   *anywhere* in the frame is detected: a flip in the protected region
//!   changes the checksum, and a flip in the `crc` field itself mismatches
//!   the recomputed value.
//! * `payload` — a one-byte record tag followed by the fixed-width body
//!   (integers little-endian, `f64` fields as IEEE-754 bit patterns, so
//!   round-trips are bit-exact).
//!
//! ## Segments
//!
//! Frames append to segment files named `{first_seq:020}.wal` inside the log
//! directory. When the active segment would exceed
//! [`WalConfig::segment_bytes`] the writer fsyncs it, seals it, and opens a
//! new segment named after the next sequence number. [`WalReader`] iterates
//! segments in name order and validates framing, checksums, and sequence
//! continuity; it **never panics on bad input** — a torn header, torn body,
//! bad length, checksum mismatch, sequence break, or undecodable payload
//! stops replay cleanly at the last intact record with a typed
//! [`WalStopReason`], and everything from the failure point on is reported
//! as discarded ([`RecoveryReport::bytes_discarded`]).

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::{
    BatchInstanceRecord, JobId, MachineEvent, MachineEventRecord, MachineId, ServerUsageRecord,
    TaskId, TaskStatus, Timestamp, UtilizationTriple,
};

/// Bytes in a frame header: `len: u32 ‖ seq: u64 ‖ crc: u32`.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Hard upper bound on a frame payload. Lengths above this are rejected as
/// [`WalStopReason::BadLength`] before any allocation — a corrupted length
/// field must not be able to request gigabytes.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table, and `TABLES[k][i]` advances the CRC of byte `i` through `k`
/// further zero bytes — so eight table reads fold eight input bytes at
/// once into the same polynomial the one-byte loop computes.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let base = crc32_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = base;
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ base[(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Incremental CRC-32 (IEEE 802.3 reflected polynomial `0xEDB88320`) — the
/// per-frame checksum. CRC-32 detects all single-bit and double-bit errors
/// and all burst errors up to 32 bits, which is exactly the torn-write and
/// bit-rot failure class the log guards against.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub const fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the running checksum.
    ///
    /// Eight bytes per step via the slice-by-8 tables (bit-identical to
    /// the one-byte-at-a-time recurrence, just ~8× fewer dependent table
    /// lookups — segment-store opens checksum every mapped byte, so this
    /// is on the dataset-open hot path as well as the WAL's).
    pub fn update(&mut self, bytes: &[u8]) {
        let t = &CRC32_TABLES;
        let mut crc = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// Finalizes and returns the checksum.
    pub const fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One logged monitor mutation: the unit of replay.
///
/// The log records every **delivery**, not just every accepted mutation:
/// stale records the monitor drops still consume a log entry, because the
/// drop itself mutates observable state (the `stale_dropped` counter) and
/// replay is held to bit-identity with the pre-crash monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A delivered `server_usage` sample ([`ServerUsageRecord`]).
    Usage(ServerUsageRecord),
    /// A delivered closed-instance record ([`BatchInstanceRecord`]).
    Instance(BatchInstanceRecord),
    /// An instance opened in the live window.
    InstanceStarted {
        /// Owning job.
        job: JobId,
        /// Owning task.
        task: TaskId,
        /// Sequence number within the task.
        seq: u32,
        /// The machine executing the instance.
        machine: MachineId,
        /// Open time.
        at: Timestamp,
    },
    /// A previously opened instance closed.
    InstanceFinished {
        /// Owning job.
        job: JobId,
        /// Owning task.
        task: TaskId,
        /// Sequence number within the task.
        seq: u32,
        /// Close time.
        at: Timestamp,
    },
    /// A delivered machine lifecycle event ([`MachineEventRecord`]).
    MachineEvent(MachineEventRecord),
    /// The alert buffer was drained (`drain_alerts`). Logged so the
    /// recovered buffer holds exactly the not-yet-drained alerts.
    AlertsDrained,
    /// Every record of the ingestion epoch with this monotonic batch
    /// version has been appended to **this** log. A sharded monitor writes
    /// the marker to every shard's log when a `Batch` finishes applying, so
    /// multi-log recovery can stop each shard at the highest epoch sealed
    /// in *all* logs — the consistent version cut. Applying the marker
    /// mutates no query-visible state.
    EpochSealed(u64),
}

const TAG_USAGE: u8 = 1;
const TAG_INSTANCE: u8 = 2;
const TAG_INSTANCE_STARTED: u8 = 3;
const TAG_INSTANCE_FINISHED: u8 = 4;
const TAG_MACHINE_EVENT: u8 = 5;
const TAG_ALERTS_DRAINED: u8 = 6;
const TAG_EPOCH_SEALED: u8 = 7;

fn status_code(s: TaskStatus) -> u8 {
    match s {
        TaskStatus::Waiting => 0,
        TaskStatus::Running => 1,
        TaskStatus::Terminated => 2,
        TaskStatus::Failed => 3,
        TaskStatus::Cancelled => 4,
    }
}

fn status_from_code(c: u8) -> Option<TaskStatus> {
    Some(match c {
        0 => TaskStatus::Waiting,
        1 => TaskStatus::Running,
        2 => TaskStatus::Terminated,
        3 => TaskStatus::Failed,
        4 => TaskStatus::Cancelled,
        _ => return None,
    })
}

fn event_code(e: MachineEvent) -> u8 {
    match e {
        MachineEvent::Add => 0,
        MachineEvent::SoftError => 1,
        MachineEvent::HardError => 2,
        MachineEvent::Remove => 3,
    }
}

fn event_from_code(c: u8) -> Option<MachineEvent> {
    Some(match c {
        0 => MachineEvent::Add,
        1 => MachineEvent::SoftError,
        2 => MachineEvent::HardError,
        3 => MachineEvent::Remove,
        _ => return None,
    })
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Forward-only cursor over a payload body; every `take_*` returns `None`
/// past the end, so decoding can never index out of bounds.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.pos.checked_add(N)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        chunk.try_into().ok()
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take::<8>().map(i64::from_le_bytes)
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.take::<8>()
            .map(|b| f64::from_bits(u64::from_le_bytes(b)))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl WalRecord {
    /// Encodes the record payload (tag byte + fixed-width body).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalRecord::Usage(r) => {
                out.push(TAG_USAGE);
                put_i64(&mut out, r.time.seconds());
                put_u32(&mut out, r.machine.raw());
                put_f64(&mut out, r.util.cpu.fraction());
                put_f64(&mut out, r.util.mem.fraction());
                put_f64(&mut out, r.util.disk.fraction());
            }
            WalRecord::Instance(r) => {
                out.push(TAG_INSTANCE);
                put_i64(&mut out, r.start_time.seconds());
                put_i64(&mut out, r.end_time.seconds());
                put_u32(&mut out, r.job.raw());
                put_u32(&mut out, r.task.raw());
                put_u32(&mut out, r.seq);
                put_u32(&mut out, r.total);
                put_u32(&mut out, r.machine.raw());
                out.push(status_code(r.status));
                put_f64(&mut out, r.cpu_avg);
                put_f64(&mut out, r.cpu_max);
                put_f64(&mut out, r.mem_avg);
                put_f64(&mut out, r.mem_max);
            }
            WalRecord::InstanceStarted {
                job,
                task,
                seq,
                machine,
                at,
            } => {
                out.push(TAG_INSTANCE_STARTED);
                put_u32(&mut out, job.raw());
                put_u32(&mut out, task.raw());
                put_u32(&mut out, *seq);
                put_u32(&mut out, machine.raw());
                put_i64(&mut out, at.seconds());
            }
            WalRecord::InstanceFinished { job, task, seq, at } => {
                out.push(TAG_INSTANCE_FINISHED);
                put_u32(&mut out, job.raw());
                put_u32(&mut out, task.raw());
                put_u32(&mut out, *seq);
                put_i64(&mut out, at.seconds());
            }
            WalRecord::MachineEvent(r) => {
                out.push(TAG_MACHINE_EVENT);
                put_i64(&mut out, r.time.seconds());
                put_u32(&mut out, r.machine.raw());
                out.push(event_code(r.event));
                put_f64(&mut out, r.capacity_cpu);
                put_f64(&mut out, r.capacity_mem);
                put_f64(&mut out, r.capacity_disk);
            }
            WalRecord::AlertsDrained => out.push(TAG_ALERTS_DRAINED),
            WalRecord::EpochSealed(version) => {
                out.push(TAG_EPOCH_SEALED);
                put_u64(&mut out, *version);
            }
        }
        out
    }

    /// Decodes a payload produced by [`WalRecord::encode_payload`].
    ///
    /// Returns `None` on an unknown tag, an out-of-range enum code, or a
    /// body whose length does not match the tag exactly — never panics.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            TAG_USAGE => WalRecord::Usage(ServerUsageRecord {
                time: Timestamp::new(c.i64()?),
                machine: MachineId::new(c.u32()?),
                util: UtilizationTriple::clamped(c.f64()?, c.f64()?, c.f64()?),
            }),
            TAG_INSTANCE => WalRecord::Instance(BatchInstanceRecord {
                start_time: Timestamp::new(c.i64()?),
                end_time: Timestamp::new(c.i64()?),
                job: JobId::new(c.u32()?),
                task: TaskId::new(c.u32()?),
                seq: c.u32()?,
                total: c.u32()?,
                machine: MachineId::new(c.u32()?),
                status: status_from_code(c.u8()?)?,
                cpu_avg: c.f64()?,
                cpu_max: c.f64()?,
                mem_avg: c.f64()?,
                mem_max: c.f64()?,
            }),
            TAG_INSTANCE_STARTED => WalRecord::InstanceStarted {
                job: JobId::new(c.u32()?),
                task: TaskId::new(c.u32()?),
                seq: c.u32()?,
                machine: MachineId::new(c.u32()?),
                at: Timestamp::new(c.i64()?),
            },
            TAG_INSTANCE_FINISHED => WalRecord::InstanceFinished {
                job: JobId::new(c.u32()?),
                task: TaskId::new(c.u32()?),
                seq: c.u32()?,
                at: Timestamp::new(c.i64()?),
            },
            TAG_MACHINE_EVENT => WalRecord::MachineEvent(MachineEventRecord {
                time: Timestamp::new(c.i64()?),
                machine: MachineId::new(c.u32()?),
                event: event_from_code(c.u8()?)?,
                capacity_cpu: c.f64()?,
                capacity_mem: c.f64()?,
                capacity_disk: c.f64()?,
            }),
            TAG_ALERTS_DRAINED => WalRecord::AlertsDrained,
            TAG_EPOCH_SEALED => WalRecord::EpochSealed(c.u64()?),
            _ => return None,
        };
        c.exhausted().then_some(rec)
    }
}

/// Encodes one complete frame (`header ‖ payload`) for `seq`.
pub fn encode_frame(seq: u64, record: &WalRecord) -> Vec<u8> {
    let payload = record.encode_payload();
    debug_assert!(payload.len() as u32 <= MAX_PAYLOAD_BYTES);
    let len = payload.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&len.to_le_bytes());
    crc.update(&seq.to_le_bytes());
    crc.update(&payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Why replay stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalStopReason {
    /// Every byte of every segment was consumed as intact records.
    Clean,
    /// Fewer than [`FRAME_HEADER_BYTES`] bytes remained — a torn header
    /// (the classic partial-write tail).
    TornHeader,
    /// The header claimed more payload bytes than the segment holds — a
    /// torn body.
    TornBody,
    /// The length field was zero or above [`MAX_PAYLOAD_BYTES`].
    BadLength,
    /// The recomputed CRC-32 disagreed with the stored one.
    ChecksumMismatch,
    /// The record's sequence number broke monotonic continuity.
    SequenceBreak,
    /// Framing was intact but the payload did not decode to a record.
    DecodeError,
}

impl WalStopReason {
    /// True only for [`WalStopReason::Clean`].
    pub const fn is_clean(self) -> bool {
        matches!(self, WalStopReason::Clean)
    }
}

impl fmt::Display for WalStopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WalStopReason::Clean => "clean",
            WalStopReason::TornHeader => "torn header",
            WalStopReason::TornBody => "torn body",
            WalStopReason::BadLength => "bad length",
            WalStopReason::ChecksumMismatch => "checksum mismatch",
            WalStopReason::SequenceBreak => "sequence break",
            WalStopReason::DecodeError => "payload decode error",
        })
    }
}

/// What a replay pass established: how far the log was intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed.
    pub records_replayed: u64,
    /// Bytes from the first failure point to the end of the log (0 when
    /// [`WalStopReason::Clean`]). Everything past a framing failure is
    /// untrusted and discarded, even if later frames happen to look intact.
    pub bytes_discarded: u64,
    /// Why replay stopped.
    pub reason: WalStopReason,
    /// Sequence number of the last intact record, if any.
    pub last_seq: Option<u64>,
    /// Segment files the log directory held.
    pub segments: usize,
}

/// IO-level failure of the log itself (not corruption — corruption is data,
/// reported through [`RecoveryReport`]).
#[derive(Debug)]
pub enum WalError {
    /// An operating-system IO operation failed.
    Io {
        /// What the writer/reader was doing (e.g. `"append"`, `"open"`).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, path, source } => {
                write!(f, "wal {op} {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
        }
    }
}

fn io_err(op: &'static str, path: &Path, source: io::Error) -> WalError {
    WalError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

// ---------------------------------------------------------------------------
// IO seam
// ---------------------------------------------------------------------------

/// Failpoint site evaluated by [`StdWalIo`] before every frame write.
pub const FAILPOINT_APPEND: &str = "wal.append";
/// Failpoint site evaluated by [`StdWalIo`] before every fsync.
pub const FAILPOINT_SYNC: &str = "wal.sync";

/// The writer's IO seam: every byte the [`WalWriter`] hands to the
/// operating system, and every fsync, goes through one of these two
/// methods — so disk faults can be injected *under* the writer without
/// touching its logic.
///
/// # Contract
///
/// * `write_frame` either writes **all** of `buf` and returns `Ok`, or
///   returns `Err` having written any *prefix* of `buf` (a short write —
///   the torn-tail shape a power failure leaves). The writer treats any
///   `Err` as "this frame is not durable": the sequence number is not
///   consumed and `segment_len` is not advanced, so the reader's framing
///   validation is what quarantines whatever partial bytes made it to disk.
/// * `sync_data` either makes previously written bytes durable and returns
///   `Ok`, or returns `Err` having synced nothing (a failed fsync — the
///   bytes remain in the page cache, durable against process crash but not
///   power loss).
///
/// The default implementation, [`StdWalIo`], performs the real IO but first
/// evaluates the [`FAILPOINT_APPEND`] / [`FAILPOINT_SYNC`] failpoint sites
/// ([`batchlens_fault`]), so fault-injection suites can drive disk-full,
/// short-write, failed-sync and torn-tail schedules through an unmodified
/// production writer. Disarmed, each evaluation is a single relaxed atomic
/// load.
pub trait WalIo: Send + fmt::Debug {
    /// Writes one complete frame to `file` (see the seam contract).
    ///
    /// # Errors
    ///
    /// An `Err` means the frame is not durable; any prefix of `buf` may
    /// have reached the file.
    fn write_frame(&mut self, file: &mut File, buf: &[u8]) -> io::Result<()>;

    /// Forces `file`'s written bytes to stable storage.
    ///
    /// # Errors
    ///
    /// An `Err` means nothing new became durable.
    fn sync_data(&mut self, file: &mut File) -> io::Result<()>;
}

/// The production [`WalIo`]: real writes and fsyncs, guarded by the
/// [`FAILPOINT_APPEND`] / [`FAILPOINT_SYNC`] failpoint sites.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdWalIo;

impl WalIo for StdWalIo {
    fn write_frame(&mut self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        match batchlens_fault::fire(FAILPOINT_APPEND) {
            None => file.write_all(buf),
            Some(batchlens_fault::Fault::ShortWrite(n)) => {
                // Torn tail: the prefix reaches the file, then the device
                // "fails". The caller sees an error; the reader sees a torn
                // frame.
                file.write_all(&buf[..n.min(buf.len())])?;
                Err(batchlens_fault::injected_io_error(FAILPOINT_APPEND))
            }
            Some(_) => Err(batchlens_fault::injected_io_error(FAILPOINT_APPEND)),
        }
    }

    fn sync_data(&mut self, file: &mut File) -> io::Result<()> {
        match batchlens_fault::fire(FAILPOINT_SYNC) {
            None => file.sync_data(),
            Some(_) => Err(batchlens_fault::injected_io_error(FAILPOINT_SYNC)),
        }
    }
}

// ---------------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------------

fn segment_name(first_seq: u64) -> String {
    format!("{first_seq:020}.wal")
}

/// Lists `*.wal` segments in `dir`, sorted by their first-sequence name.
/// Returns an empty list when the directory does not exist.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("list", dir, e)),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list", dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wal") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(first_seq) = stem.parse::<u64>() else {
            continue;
        };
        segments.push((first_seq, path));
    }
    segments.sort();
    Ok(segments)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Replays a segment directory record by record, stopping cleanly at the
/// first framing problem.
///
/// Iterate it (`for (seq, record) in &mut reader`) until exhaustion, then
/// read [`WalReader::report`]. The reader holds segment contents in memory
/// (segments are bounded by [`WalConfig::segment_bytes`]), so iteration
/// itself is infallible: corruption is a *result*, never an `Err` or a
/// panic.
#[derive(Debug)]
pub struct WalReader {
    segments: Vec<(PathBuf, Vec<u8>)>,
    seg_idx: usize,
    offset: usize,
    expected: Option<u64>,
    records: u64,
    last_seq: Option<u64>,
    stop: Option<(WalStopReason, usize, usize)>,
}

impl WalReader {
    /// Opens every segment in `dir`. A missing or empty directory is a
    /// valid, empty log.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] only for OS-level failures (unreadable
    /// directory or file) — never for corrupt contents.
    pub fn open(dir: &Path) -> Result<WalReader, WalError> {
        let mut segments = Vec::new();
        for (_, path) in list_segments(dir)? {
            let bytes = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
            segments.push((path, bytes));
        }
        Ok(WalReader {
            segments,
            seg_idx: 0,
            offset: 0,
            expected: None,
            records: 0,
            last_seq: None,
            stop: None,
        })
    }

    fn finish(&mut self, reason: WalStopReason) {
        self.stop = Some((reason, self.seg_idx, self.offset));
    }

    /// The stop reason, once iteration has finished.
    pub fn stop_reason(&self) -> Option<WalStopReason> {
        self.stop.map(|(r, _, _)| r)
    }

    /// `(segment index, byte offset)` of the first untrusted byte, once
    /// iteration has finished. Everything before it is intact.
    pub(crate) fn stop_position(&self) -> Option<(usize, usize)> {
        self.stop.map(|(_, seg, off)| (seg, off))
    }

    /// Paths of the segments the reader opened, in replay order.
    pub fn segment_paths(&self) -> impl Iterator<Item = &Path> {
        self.segments.iter().map(|(p, _)| p.as_path())
    }

    /// Sequence number of the last intact record seen so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// The replay outcome. Meaningful once iteration has returned `None`;
    /// before that the reason reflects progress so far (`Clean`).
    pub fn report(&self) -> RecoveryReport {
        let (reason, seg, off) =
            self.stop
                .unwrap_or((WalStopReason::Clean, self.seg_idx, self.offset));
        let mut discarded = 0u64;
        if let Some((_, bytes)) = self.segments.get(seg) {
            discarded += (bytes.len() - off.min(bytes.len())) as u64;
        }
        for (_, bytes) in self.segments.iter().skip(seg + 1) {
            discarded += bytes.len() as u64;
        }
        RecoveryReport {
            records_replayed: self.records,
            bytes_discarded: discarded,
            reason,
            last_seq: self.last_seq,
            segments: self.segments.len(),
        }
    }
}

impl Iterator for WalReader {
    type Item = (u64, WalRecord);

    fn next(&mut self) -> Option<(u64, WalRecord)> {
        if self.stop.is_some() {
            return None;
        }
        loop {
            let Some((_, bytes)) = self.segments.get(self.seg_idx) else {
                // Past the last segment: park the stop position at the end
                // of the final segment so nothing counts as discarded.
                self.seg_idx = self.segments.len().saturating_sub(1);
                self.offset = self.segments.last().map(|(_, b)| b.len()).unwrap_or(0);
                self.finish(WalStopReason::Clean);
                return None;
            };
            let rest = &bytes[self.offset..];
            if rest.is_empty() {
                self.seg_idx += 1;
                self.offset = 0;
                continue;
            }
            if rest.len() < FRAME_HEADER_BYTES {
                self.finish(WalStopReason::TornHeader);
                return None;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            if len == 0 || len > MAX_PAYLOAD_BYTES {
                self.finish(WalStopReason::BadLength);
                return None;
            }
            let total = FRAME_HEADER_BYTES + len as usize;
            if rest.len() < total {
                self.finish(WalStopReason::TornBody);
                return None;
            }
            let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            let stored_crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
            let payload = &rest[FRAME_HEADER_BYTES..total];
            let mut crc = Crc32::new();
            crc.update(&rest[0..12]);
            crc.update(payload);
            if crc.finish() != stored_crc {
                self.finish(WalStopReason::ChecksumMismatch);
                return None;
            }
            if let Some(expected) = self.expected {
                if seq != expected {
                    self.finish(WalStopReason::SequenceBreak);
                    return None;
                }
            }
            let Some(record) = WalRecord::decode_payload(payload) else {
                self.finish(WalStopReason::DecodeError);
                return None;
            };
            self.offset += total;
            self.records += 1;
            self.last_seq = Some(seq);
            self.expected = Some(seq.wrapping_add(1));
            return Some((seq, record));
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`WalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this many bytes.
    /// A segment always holds at least one record, so tiny limits are legal
    /// (tests use them to force multi-segment logs).
    pub segment_bytes: u64,
    /// `fsync` after **every** append instead of only at rotation and
    /// [`WalWriter::sync`]. Survives power loss per record, at a large
    /// throughput cost.
    pub sync_each_append: bool,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            segment_bytes: 8 * 1024 * 1024,
            sync_each_append: false,
        }
    }
}

/// Appends framed records to a segment directory.
///
/// # Durability contract
///
/// * [`WalWriter::append`] hands the complete frame to the operating system
///   in a single `write` before returning: once `append` returns, a **process
///   crash** (panic, kill, OOM) loses nothing — the frame is in the page
///   cache regardless of what the process does next.
/// * An `fsync` makes frames survive **power loss / kernel crash** too. It
///   happens (a) after every append when [`WalConfig::sync_each_append`] is
///   set, (b) on every segment rotation for the sealed segment, and (c) on
///   [`WalWriter::sync`]. Between fsyncs, a power failure may truncate or
///   tear the *tail* of the active segment only.
/// * A torn tail is safe by construction: appends are strictly sequential,
///   so a partial write can only affect the final frame, and the reader's
///   length/CRC validation stops replay exactly at the last intact record.
///   [`WalWriter::open`] on an existing directory truncates that torn tail
///   (and deletes any unreachable later segments) before resuming, so the
///   next append continues the intact prefix with the next sequence number.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    cfg: WalConfig,
    file: File,
    segment_path: PathBuf,
    segment_len: u64,
    next_seq: u64,
    io: Box<dyn WalIo>,
}

impl WalWriter {
    /// Opens (resuming) or creates the log in `dir`.
    ///
    /// On a fresh directory the first segment starts at sequence 0. On an
    /// existing log the writer replays it to find the last intact record,
    /// truncates the torn tail, deletes unreachable later segments, and
    /// resumes with the following sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on OS-level failures only; corrupt existing
    /// contents are repaired (truncated), not errored on.
    pub fn open(dir: &Path, cfg: WalConfig) -> Result<WalWriter, WalError> {
        WalWriter::open_with_io(dir, cfg, Box::new(StdWalIo))
    }

    /// Like [`WalWriter::open`], but with an explicit [`WalIo`]
    /// implementation — the programmatic seam for injecting disk faults
    /// (see the trait's contract).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on OS-level failures only; corrupt existing
    /// contents are repaired (truncated), not errored on.
    pub fn open_with_io(
        dir: &Path,
        cfg: WalConfig,
        io: Box<dyn WalIo>,
    ) -> Result<WalWriter, WalError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        let mut reader = WalReader::open(dir)?;
        for _ in &mut reader {}
        let next_seq = reader.last_seq().map(|s| s + 1).unwrap_or(0);
        let segment_paths: Vec<PathBuf> = reader.segment_paths().map(Path::to_path_buf).collect();
        let (seg_idx, offset) = reader.stop_position().unwrap_or((0, 0));
        if segment_paths.is_empty() {
            return WalWriter::fresh_segment(dir.to_path_buf(), cfg, next_seq, io);
        }
        // Drop the torn tail of the stop segment and every segment past it:
        // nothing after the first framing failure is trustworthy.
        for path in &segment_paths[seg_idx + 1..] {
            fs::remove_file(path).map_err(|e| io_err("remove", path, e))?;
        }
        let segment_path = segment_paths[seg_idx].clone();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&segment_path)
            .map_err(|e| io_err("open", &segment_path, e))?;
        file.set_len(offset as u64)
            .map_err(|e| io_err("truncate", &segment_path, e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &segment_path, e))?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            cfg,
            file,
            segment_path,
            segment_len: offset as u64,
            next_seq,
            io,
        })
    }

    fn fresh_segment(
        dir: PathBuf,
        cfg: WalConfig,
        first_seq: u64,
        io: Box<dyn WalIo>,
    ) -> Result<WalWriter, WalError> {
        let segment_path = dir.join(segment_name(first_seq));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&segment_path)
            .map_err(|e| io_err("create", &segment_path, e))?;
        Ok(WalWriter {
            dir,
            cfg,
            file,
            segment_path,
            segment_len: 0,
            next_seq: first_seq,
            io,
        })
    }

    /// The directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record, returning its sequence number. See the
    /// [durability contract](WalWriter#durability-contract).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] when the OS write (or configured fsync)
    /// fails; the sequence number is not consumed in that case.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let frame = encode_frame(seq, record);
        if self.segment_len > 0 && self.segment_len + frame.len() as u64 > self.cfg.segment_bytes {
            self.rotate(seq)?;
        }
        self.io
            .write_frame(&mut self.file, &frame)
            .map_err(|e| io_err("append", &self.segment_path, e))?;
        if self.cfg.sync_each_append {
            self.io
                .sync_data(&mut self.file)
                .map_err(|e| io_err("sync", &self.segment_path, e))?;
        }
        self.segment_len += frame.len() as u64;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    fn rotate(&mut self, first_seq: u64) -> Result<(), WalError> {
        // Seal the full segment durably before the log moves past it.
        self.io
            .sync_data(&mut self.file)
            .map_err(|e| io_err("sync", &self.segment_path, e))?;
        let segment_path = self.dir.join(segment_name(first_seq));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&segment_path)
            .map_err(|e| io_err("create", &segment_path, e))?;
        self.file = file;
        self.segment_path = segment_path;
        self.segment_len = 0;
        Ok(())
    }

    /// Forces the active segment to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.io
            .sync_data(&mut self.file)
            .map_err(|e| io_err("sync", &self.segment_path, e))
    }
}

/// Compacts the intact prefix of the log in `src` into a **single sealed
/// segment** in `dst`, preserving every record's sequence number — the
/// snapshot half of a snapshot-plus-tail scheme: replaying the compacted
/// segment reproduces exactly the records `src` held, and the live log's
/// records with later sequence numbers form the tail.
///
/// `dst` is created if missing; an existing log there is replaced. A torn
/// or corrupt `src` tail is dropped exactly as replay would drop it (see
/// the returned report). An empty `src` compacts to an empty `dst`.
///
/// # Errors
///
/// Returns [`WalError::Io`] on OS-level failures only.
pub fn compact(src: &Path, dst: &Path) -> Result<RecoveryReport, WalError> {
    let mut reader = WalReader::open(src)?;
    let mut frames: Vec<u8> = Vec::new();
    let mut first_seq = None;
    for (seq, record) in &mut reader {
        first_seq.get_or_insert(seq);
        frames.extend_from_slice(&encode_frame(seq, &record));
    }
    fs::create_dir_all(dst).map_err(|e| io_err("create dir", dst, e))?;
    for (_, path) in list_segments(dst)? {
        fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
    }
    if let Some(first) = first_seq {
        let path = dst.join(segment_name(first));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        file.write_all(&frames)
            .map_err(|e| io_err("append", &path, e))?;
        file.sync_data().map_err(|e| io_err("sync", &path, e))?;
    }
    Ok(reader.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "batchlens-wal-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Usage(ServerUsageRecord {
                time: Timestamp::new(-3),
                machine: MachineId::new(7),
                util: UtilizationTriple::clamped(0.25, 0.5, 1.0),
            }),
            WalRecord::Instance(BatchInstanceRecord {
                start_time: Timestamp::new(10),
                end_time: Timestamp::new(400),
                job: JobId::new(1),
                task: TaskId::new(2),
                seq: 3,
                total: 4,
                machine: MachineId::new(5),
                status: TaskStatus::Failed,
                cpu_avg: 0.125,
                cpu_max: f64::MAX,
                mem_avg: -0.0,
                mem_max: f64::NAN,
            }),
            WalRecord::InstanceStarted {
                job: JobId::new(9),
                task: TaskId::new(8),
                seq: 7,
                machine: MachineId::new(6),
                at: Timestamp::new(i64::MIN + 1),
            },
            WalRecord::InstanceFinished {
                job: JobId::new(9),
                task: TaskId::new(8),
                seq: 7,
                at: Timestamp::new(i64::MAX),
            },
            WalRecord::MachineEvent(MachineEventRecord {
                time: Timestamp::new(0),
                machine: MachineId::new(u32::MAX),
                event: MachineEvent::SoftError,
                capacity_cpu: 64.0,
                capacity_mem: 1.0,
                capacity_disk: 0.5,
            }),
            WalRecord::AlertsDrained,
            WalRecord::EpochSealed(0),
            WalRecord::EpochSealed(u64::MAX),
        ]
    }

    /// Bitwise record equality: `PartialEq` treats NaN != NaN and
    /// -0.0 == 0.0, but replay is held to bit-identity.
    fn assert_bits_equal(a: &WalRecord, b: &WalRecord) {
        assert_eq!(a.encode_payload(), b.encode_payload());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payloads_round_trip_bit_exactly() {
        for rec in sample_records() {
            let payload = rec.encode_payload();
            let back = WalRecord::decode_payload(&payload).expect("decodes");
            assert_bits_equal(&rec, &back);
        }
    }

    #[test]
    fn truncated_or_extended_payloads_are_rejected() {
        for rec in sample_records() {
            let payload = rec.encode_payload();
            for cut in 0..payload.len() {
                assert!(
                    WalRecord::decode_payload(&payload[..cut]).is_none(),
                    "prefix of length {cut} must not decode"
                );
            }
            let mut extended = payload.clone();
            extended.push(0);
            assert!(WalRecord::decode_payload(&extended).is_none());
        }
        assert!(WalRecord::decode_payload(&[0xFF]).is_none());
        assert!(WalRecord::decode_payload(&[]).is_none());
    }

    #[test]
    fn write_read_round_trip_across_rotated_segments() {
        let dir = temp_dir("rotate");
        let cfg = WalConfig {
            segment_bytes: 64, // force rotation every couple of records
            sync_each_append: false,
        };
        let records = sample_records();
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(w.append(rec).unwrap(), i as u64);
        }
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "tiny segment limit must rotate"
        );
        let mut r = WalReader::open(&dir).unwrap();
        let got: Vec<(u64, WalRecord)> = (&mut r).collect();
        assert_eq!(got.len(), records.len());
        for (i, ((seq, got), want)) in got.iter().zip(&records).enumerate() {
            assert_eq!(*seq, i as u64);
            assert_bits_equal(got, want);
        }
        let report = r.report();
        assert_eq!(report.reason, WalStopReason::Clean);
        assert_eq!(report.records_replayed, records.len() as u64);
        assert_eq!(report.bytes_discarded, 0);
        assert_eq!(report.last_seq, Some(records.len() as u64 - 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_segments_preserving_sequences() {
        let src = temp_dir("compact-src");
        let dst = temp_dir("compact-dst");
        let cfg = WalConfig {
            segment_bytes: 64,
            sync_each_append: false,
        };
        let records = sample_records();
        let mut w = WalWriter::open(&src, cfg).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        assert!(list_segments(&src).unwrap().len() > 1);

        let report = compact(&src, &dst).unwrap();
        assert_eq!(report.records_replayed, records.len() as u64);
        assert_eq!(report.reason, WalStopReason::Clean);
        assert_eq!(list_segments(&dst).unwrap().len(), 1, "single segment");

        let mut r = WalReader::open(&dst).unwrap();
        let got: Vec<(u64, WalRecord)> = (&mut r).collect();
        assert_eq!(got.len(), records.len());
        for (i, ((seq, got), want)) in got.iter().zip(&records).enumerate() {
            assert_eq!(*seq, i as u64, "sequence numbers preserved");
            assert_bits_equal(got, want);
        }
        assert!(r.report().reason.is_clean());

        // A resumed writer on the compacted log continues the numbering.
        let w = WalWriter::open(&dst, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), records.len() as u64);

        // Compacting an empty log yields an empty destination.
        let empty_src = temp_dir("compact-empty-src");
        let empty_dst = temp_dir("compact-empty-dst");
        let report = compact(&empty_src, &empty_dst).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert!(list_segments(&empty_dst).unwrap().is_empty());

        for d in [&src, &dst, &empty_src, &empty_dst] {
            fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn torn_tail_is_detected_and_resume_truncates_it() {
        let dir = temp_dir("torn");
        let records = sample_records();
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        // Tear the final record: chop 3 bytes off the single segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let mut r = WalReader::open(&dir).unwrap();
        let n = (&mut r).count();
        assert_eq!(n, records.len() - 1);
        let report = r.report();
        assert!(matches!(
            report.reason,
            WalStopReason::TornBody | WalStopReason::TornHeader
        ));
        assert!(report.bytes_discarded > 0);
        // Resume: the torn tail is truncated, appends continue the prefix.
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), records.len() as u64 - 1);
        w.append(&WalRecord::AlertsDrained).unwrap();
        drop(w);
        let mut r = WalReader::open(&dir).unwrap();
        let got: Vec<(u64, WalRecord)> = (&mut r).collect();
        assert_eq!(got.len(), records.len());
        assert_eq!(r.report().reason, WalStopReason::Clean);
        assert_bits_equal(&got.last().unwrap().1, &WalRecord::AlertsDrained);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let dir = temp_dir("bitflip");
        let records = sample_records();
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let clean = fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                fs::write(&path, &corrupt).unwrap();
                let mut r = WalReader::open(&dir).unwrap();
                let n = (&mut r).count();
                let report = r.report();
                assert!(
                    !report.reason.is_clean(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
                assert!(
                    n < records.len(),
                    "flip at byte {byte} bit {bit} still replayed everything"
                );
                // Every record the reader did yield is a clean prefix.
                assert_eq!(report.records_replayed, n as u64);
                assert!(report.bytes_discarded > 0);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_mid_log_corruption_drops_later_segments() {
        let dir = temp_dir("midlog");
        let cfg = WalConfig {
            segment_bytes: 64,
            sync_each_append: false,
        };
        let records = sample_records();
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Corrupt the *first* segment's first frame checksum region.
        let first = &segments[0].1;
        let mut bytes = fs::read(first).unwrap();
        bytes[13] ^= 0x40;
        fs::write(first, &bytes).unwrap();
        let mut r = WalReader::open(&dir).unwrap();
        assert_eq!((&mut r).count(), 0);
        let report = r.report();
        assert_eq!(report.reason, WalStopReason::ChecksumMismatch);
        assert_eq!(report.last_seq, None);
        // All bytes in all segments are untrusted.
        let total: u64 = list_segments(&dir)
            .unwrap()
            .iter()
            .map(|(_, p)| fs::metadata(p).unwrap().len())
            .sum();
        assert_eq!(report.bytes_discarded, total);
        // Resume repairs: truncates segment 0, removes the orphans.
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        assert_eq!(w.next_seq(), 0);
        w.append(&records[0]).unwrap();
        drop(w);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let mut r = WalReader::open(&dir).unwrap();
        assert_eq!((&mut r).count(), 1);
        assert_eq!(r.report().reason, WalStopReason::Clean);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_directories_are_empty_logs() {
        let dir = temp_dir("empty");
        let mut r = WalReader::open(&dir).unwrap();
        assert_eq!((&mut r).count(), 0);
        let report = r.report();
        assert_eq!(report.reason, WalStopReason::Clean);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.bytes_discarded, 0);
        assert_eq!(report.segments, 0);
        assert_eq!(report.last_seq, None);
        // A writer on the same missing dir starts at seq 0.
        let w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_break_stops_replay() {
        let dir = temp_dir("seqbreak");
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        w.append(&WalRecord::AlertsDrained).unwrap();
        drop(w);
        // Append a validly framed record with a skipped sequence number.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_frame(5, &WalRecord::AlertsDrained));
        fs::write(&path, &bytes).unwrap();
        let mut r = WalReader::open(&dir).unwrap();
        assert_eq!((&mut r).count(), 1);
        assert_eq!(r.report().reason, WalStopReason::SequenceBreak);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_record_may_start_at_any_sequence() {
        // A compacted dump preserves original sequence numbers; replay must
        // accept a log whose first record is not seq 0.
        let dir = temp_dir("anystart");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = encode_frame(41, &WalRecord::AlertsDrained);
        bytes.extend_from_slice(&encode_frame(42, &WalRecord::AlertsDrained));
        fs::write(dir.join(segment_name(41)), &bytes).unwrap();
        let mut r = WalReader::open(&dir).unwrap();
        let seqs: Vec<u64> = (&mut r).map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![41, 42]);
        assert_eq!(r.report().reason, WalStopReason::Clean);
        // And a writer resumes from there.
        let w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), 43);
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- fault injection through the WalIo seam ----------------------------

    use batchlens_fault::{arm, Fault, FaultSpec, Trigger};

    /// Appends `records` with the append failpoint armed to fail the
    /// `fail_at`-th write with `fault`, then checks that (a) exactly that
    /// append errors, (b) its sequence number is not consumed, and (c) a
    /// fresh reader replays exactly the successful appends, bit-identical.
    fn run_append_fault_schedule(tag: &str, fail_at: u64, fault: Fault) {
        let _g = batchlens_fault::test_guard();
        let dir = temp_dir(tag);
        let records = sample_records();
        assert!((fail_at as usize) < records.len());
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        arm(
            FAILPOINT_APPEND,
            FaultSpec::new(fault, Trigger::Nth(fail_at)),
        );
        let mut expect_seq = 0;
        for (i, rec) in records.iter().enumerate() {
            let got = w.append(rec);
            if i as u64 == fail_at {
                let err = got.expect_err("armed append must fail");
                assert!(matches!(err, WalError::Io { op: "append", .. }));
                assert_eq!(w.next_seq(), expect_seq, "seq not consumed on error");
            } else {
                assert_eq!(got.unwrap(), expect_seq);
                expect_seq += 1;
            }
        }
        drop(w);
        batchlens_fault::disarm_all();

        // Recovery sees exactly the successful appends — the surviving
        // prefix plus everything written after the fault (a short write
        // leaves garbage mid-log only if a later append follows it; here
        // the reader must stop at the torn frame).
        let mut r = WalReader::open(&dir).unwrap();
        let got: Vec<(u64, WalRecord)> = (&mut r).collect();
        let survivors: Vec<&WalRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u64 != fail_at)
            .map(|(_, r)| r)
            .collect();
        // A short write leaves torn bytes in the middle of the segment, so
        // replay stops at the fault position; a clean error leaves no bytes
        // and the whole log survives.
        let expect: Vec<&WalRecord> = match fault {
            Fault::ShortWrite(_) => survivors.iter().take(fail_at as usize).copied().collect(),
            _ => survivors,
        };
        assert_eq!(got.len(), expect.len(), "fault {fault:?} at {fail_at}");
        for ((seq, got), want) in got.iter().zip(&expect) {
            assert!(*seq < records.len() as u64);
            assert_bits_equal(got, want);
        }
        if matches!(fault, Fault::ShortWrite(_)) && (fail_at as usize) < records.len() {
            assert!(!r.report().reason.is_clean(), "torn tail must be reported");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_errors_skip_exactly_one_record_per_position() {
        let n = sample_records().len() as u64;
        for fail_at in 0..n {
            run_append_fault_schedule("fp-err", fail_at, Fault::Error);
        }
    }

    #[test]
    fn injected_short_writes_tear_the_log_at_every_position() {
        let n = sample_records().len() as u64;
        for fail_at in 0..n {
            for torn_bytes in [1, 7, 13] {
                run_append_fault_schedule("fp-short", fail_at, Fault::ShortWrite(torn_bytes));
            }
        }
    }

    #[test]
    fn torn_tail_from_short_write_is_truncated_on_reopen() {
        let _g = batchlens_fault::test_guard();
        let dir = temp_dir("fp-reopen");
        let records = sample_records();
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for rec in &records[..3] {
            w.append(rec).unwrap();
        }
        arm(
            FAILPOINT_APPEND,
            FaultSpec::new(Fault::ShortWrite(9), Trigger::Always),
        );
        w.append(&records[3]).expect_err("torn append");
        drop(w);
        batchlens_fault::disarm_all();

        // Reopening truncates the torn tail and resumes the numbering; the
        // resumed log replays bit-identical to prefix + resumed appends.
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), 3);
        assert_eq!(w.append(&records[4]).unwrap(), 3);
        drop(w);
        let mut r = WalReader::open(&dir).unwrap();
        let got: Vec<(u64, WalRecord)> = (&mut r).collect();
        assert_eq!(got.len(), 4);
        for ((seq, got), want) in got
            .iter()
            .zip(records[..3].iter().chain(std::iter::once(&records[4])))
        {
            assert!(*seq < 4);
            assert_bits_equal(got, want);
        }
        assert!(r.report().reason.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_sync_surfaces_without_losing_buffered_writes() {
        let _g = batchlens_fault::test_guard();
        let dir = temp_dir("fp-sync");
        let cfg = WalConfig {
            segment_bytes: u64::MAX,
            sync_each_append: true,
        };
        let records = sample_records();
        let mut w = WalWriter::open(&dir, cfg).unwrap();
        w.append(&records[0]).unwrap();
        arm(
            FAILPOINT_SYNC,
            FaultSpec::new(Fault::Error, Trigger::Nth(0)),
        );
        let err = w.append(&records[1]).expect_err("sync must fail");
        assert!(matches!(err, WalError::Io { op: "sync", .. }));
        // Only the fsync failed — the frame bytes reached the file — but the
        // error contract still holds: the seq is not consumed, so the caller
        // retries and replay's sequence validation stops at the duplicate.
        assert_eq!(w.next_seq(), 1);
        batchlens_fault::disarm_all();
        // A standalone sync failure surfaces from sync() too.
        arm(
            FAILPOINT_SYNC,
            FaultSpec::new(Fault::Error, Trigger::Always),
        );
        assert!(w.sync().is_err());
        batchlens_fault::disarm_all();
        assert!(w.sync().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disarmed_failpoints_leave_round_trips_untouched() {
        let _g = batchlens_fault::test_guard();
        let dir = temp_dir("fp-disarmed");
        let records = sample_records();
        let mut w = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        let mut r = WalReader::open(&dir).unwrap();
        assert_eq!((&mut r).count(), records.len());
        assert!(r.report().reason.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }
}
