//! [`DatasetQuery`]: the shared snapshot-query surface of batch datasets
//! and live windows.
//!
//! PR 1 gave [`crate::TraceDataset`] indexed structural queries; the online
//! path answers the same questions over a rolling window. This trait is the
//! one definition both implement, so every consumer — hierarchy snapshots,
//! co-allocation, liveness overlays — is written once and runs bit-identically
//! against either source. The `stream_batch_differential` workspace suite
//! enforces that equality on random record streams.
//!
//! Implementations:
//!
//! * [`crate::TraceDataset`] (here) — served by the build-time interval /
//!   liveness indexes, O(log n + k) per query.
//! * `batchlens::stream::LiveWindowView` (crate `batchlens`) — served by the
//!   monitor's [`crate::RollingIntervalIndex`] and rolling liveness
//!   checkpoints over the live window, same bounds, no window re-scan.

use crate::{JobId, MachineId, Metric, TimeRange, TimeSeries, Timestamp, UtilizationTriple};

/// Resolves machine liveness from time-sorted `(checkpoint time, alive
/// afterwards)` pairs: the last checkpoint at or before `t` decides, and a
/// machine is alive before its first checkpoint (matching the event-less
/// default). O(log e) — the **single definition** of the lookup, shared by
/// the batch index and the online rolling checkpoints. Checkpoint lists
/// must hold at most one entry per timestamp (duplicate-time events are
/// merged dead-wins at construction on both sides).
pub fn alive_at_checkpoints(checkpoints: &[(Timestamp, bool)], t: Timestamp) -> bool {
    match checkpoints.partition_point(|&(time, _)| time <= t) {
        0 => true,
        n => checkpoints[n - 1].1,
    }
}

/// The structural query surface shared by [`crate::TraceDataset`] and live
/// window views.
///
/// Contracts every implementation must honor (the differential suite checks
/// them pairwise):
///
/// * Results are **deterministic and sorted**: ids ascend, and
///   [`DatasetQuery::running_triples_at`] ascends by `(job, task, machine)`.
/// * Instance windows are half-open `[start, end)`; empty windows never
///   match.
/// * Machines without recorded lifecycle events count as alive.
/// * Utilization is sample-and-hold: the last sample at or before `t`, or
///   `None` before the first (known) sample.
pub trait DatasetQuery {
    /// Every machine known to the source (declared, referenced by an
    /// instance or event, or reporting usage), ascending.
    fn machine_ids(&self) -> Vec<MachineId>;

    /// Jobs with at least one instance running at `t`, ascending, each
    /// exactly once.
    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId>;

    /// One `(job, task, machine)` triple per instance running at `t`
    /// (multiple instances of one task on one machine repeat the triple),
    /// ascending.
    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)>;

    /// How many instances are running at `t`.
    fn running_instance_count_at(&self, t: Timestamp) -> usize;

    /// Whether `machine` is alive at `t` according to its lifecycle events;
    /// machines with no events (or unknown to the source) count alive.
    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool;

    /// The machine's sample-and-hold utilization triple at `t`.
    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple>;

    /// The machine's usage samples for `metric` inside the half-open
    /// `window`, or `None` when the source has no usage for it.
    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries>;

    /// The machines alive at `t`, ascending — the default walks
    /// [`DatasetQuery::machine_ids`] through [`DatasetQuery::alive_at`].
    fn machines_active_at(&self, t: Timestamp) -> Vec<MachineId> {
        self.machine_ids()
            .into_iter()
            .filter(|&m| self.alive_at(m, t))
            .collect()
    }
}

use crate::TaskId;

impl DatasetQuery for crate::TraceDataset {
    fn machine_ids(&self) -> Vec<MachineId> {
        self.machines().map(|m| m.id()).collect()
    }

    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
        // The inherent method (which this resolves to) serves the merged
        // per-job interval index: ascending, deduplicated.
        self.jobs_running_at(t).iter().map(|j| j.id()).collect()
    }

    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
        let mut out: Vec<(JobId, TaskId, MachineId)> = self
            .instances_running_at(t)
            .iter()
            .map(|i| (i.record.job, i.record.task, i.record.machine))
            .collect();
        // instances_running_at ascends by (job, task, seq); the trait orders
        // by (job, task, machine), so re-sort the machine tie-break.
        out.sort_unstable();
        out
    }

    fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.running_instance_count_at(t)
    }

    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
        self.machine(machine).is_none_or(|m| m.alive_at(t))
    }

    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
        self.machine(machine)?.util_at(t)
    }

    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries> {
        Some(self.machine(machine)?.usage(metric)?.slice(window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BatchInstanceRecord, BatchTaskRecord, MachineEvent, MachineEventRecord, ServerUsageRecord,
        TaskStatus, TraceDataset, TraceDatasetBuilder,
    };

    fn dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        for (job, task) in [(1u32, 1u32), (1, 2), (2, 1)] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(1000),
                job: JobId::new(job),
                task: TaskId::new(task),
                instance_count: 2,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
        }
        // Task (1,1) places seq 0 on machine 5 and seq 1 on machine 3: the
        // trait's (job, task, machine) order differs from seq order here.
        for (job, task, seq, machine, s, e) in [
            (1u32, 1u32, 0u32, 5u32, 0i64, 600i64),
            (1, 1, 1, 3, 0, 500),
            (1, 2, 0, 3, 100, 900),
            (2, 1, 0, 7, 300, 1200),
        ] {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: 2,
                machine: MachineId::new(machine),
                status: TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            });
        }
        for t in (0..1200).step_by(300) {
            b.push_usage(ServerUsageRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(3),
                util: UtilizationTriple::clamped(0.4, 0.3, 0.2),
            });
        }
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(700),
            machine: MachineId::new(7),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn trait_queries_match_inherent_ones() {
        let ds = dataset();
        let t = Timestamp::new(350);
        let jobs = DatasetQuery::jobs_running_at(&ds, t);
        assert_eq!(jobs, vec![JobId::new(1), JobId::new(2)]);
        let triples = ds.running_triples_at(t);
        assert_eq!(
            triples,
            vec![
                (JobId::new(1), TaskId::new(1), MachineId::new(3)),
                (JobId::new(1), TaskId::new(1), MachineId::new(5)),
                (JobId::new(1), TaskId::new(2), MachineId::new(3)),
                (JobId::new(2), TaskId::new(1), MachineId::new(7)),
            ]
        );
        assert_eq!(
            DatasetQuery::running_instance_count_at(&ds, t),
            triples.len()
        );
    }

    #[test]
    fn liveness_and_unknown_machines() {
        let ds = dataset();
        assert!(DatasetQuery::alive_at(
            &ds,
            MachineId::new(7),
            Timestamp::new(600)
        ));
        assert!(!DatasetQuery::alive_at(
            &ds,
            MachineId::new(7),
            Timestamp::new(700)
        ));
        // Unknown machines default alive, like event-less ones.
        assert!(DatasetQuery::alive_at(
            &ds,
            MachineId::new(99),
            Timestamp::new(0)
        ));
        let active = ds.machines_active_at(Timestamp::new(800));
        assert_eq!(
            active,
            vec![MachineId::new(3), MachineId::new(5)],
            "machine 7 removed at 700"
        );
    }

    #[test]
    fn util_and_series_windows() {
        let ds = dataset();
        let u = DatasetQuery::util_at(&ds, MachineId::new(3), Timestamp::new(450)).unwrap();
        assert!((u.cpu.fraction() - 0.4).abs() < 1e-12);
        assert!(DatasetQuery::util_at(&ds, MachineId::new(5), Timestamp::new(450)).is_none());
        let w = TimeRange::new(Timestamp::new(300), Timestamp::new(900)).unwrap();
        let s = ds
            .series_window(MachineId::new(3), Metric::Cpu, &w)
            .unwrap();
        assert_eq!(s.len(), 2); // samples at 300 and 600; 900 excluded
        assert!(ds
            .series_window(MachineId::new(5), Metric::Cpu, &w)
            .is_none());
    }
}
