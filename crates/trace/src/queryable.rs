//! [`DatasetQuery`]: the shared snapshot-query surface of batch datasets
//! and live windows.
//!
//! PR 1 gave [`crate::TraceDataset`] indexed structural queries; the online
//! path answers the same questions over a rolling window. This trait is the
//! one definition both implement, so every consumer — hierarchy snapshots,
//! co-allocation, liveness overlays — is written once and runs bit-identically
//! against either source. The `stream_batch_differential` workspace suite
//! enforces that equality on random record streams.
//!
//! Implementations:
//!
//! * [`crate::TraceDataset`] (here) — served by the build-time interval /
//!   liveness indexes, O(log n + k) per query.
//! * `batchlens::stream::LiveWindowView` (crate `batchlens`) — served by the
//!   monitor's [`crate::RollingIntervalIndex`] and rolling liveness
//!   checkpoints over the live window, same bounds, no window re-scan.

use crate::{JobId, MachineId, Metric, TimeRange, TimeSeries, Timestamp, UtilizationTriple};

/// Resolves machine liveness from time-sorted `(checkpoint time, alive
/// afterwards)` pairs: the last checkpoint at or before `t` decides, and a
/// machine is alive before its first checkpoint (matching the event-less
/// default). O(log e) — the **single definition** of the lookup, shared by
/// the batch index and the online rolling checkpoints. Checkpoint lists
/// must hold at most one entry per timestamp (duplicate-time events are
/// merged dead-wins at construction on both sides).
pub fn alive_at_checkpoints(checkpoints: &[(Timestamp, bool)], t: Timestamp) -> bool {
    match checkpoints.partition_point(|&(time, _)| time <= t) {
        0 => true,
        n => checkpoints[n - 1].1,
    }
}

/// The multiset of running-instance triples that changed between two
/// timestamps: the currency of the delta snapshot engine
/// (`batchlens_analytics::scrub::SnapshotScrubber`).
///
/// `entered` holds one `(job, task, machine)` triple per instance running
/// at `t1` but not at `t0`; `exited` the reverse. Both ascend, and repeated
/// triples appear once **per instance** — applying a delta to a counted
/// multiset of running triples at `t0` reproduces the multiset at `t1`
/// exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunningDelta {
    /// Triples running at `t1` but not at `t0`, ascending.
    pub entered: Vec<(JobId, TaskId, MachineId)>,
    /// Triples running at `t0` but not at `t1`, ascending.
    pub exited: Vec<(JobId, TaskId, MachineId)>,
}

impl RunningDelta {
    /// Builds a delta from raw per-instance endpoint events, canceling
    /// matched enter/exit pairs: when one instance of a triple ends inside
    /// the hop while another instance of the *same* triple starts inside it
    /// and outlives it, the endpoint walk sees both events but the running
    /// multiset is unchanged — the triple belongs on neither side. Sorting
    /// plus one merge pass keeps the indexed implementations equal to the
    /// stab-diff definition on such handoffs.
    pub fn from_events(
        mut entered: Vec<(JobId, TaskId, MachineId)>,
        mut exited: Vec<(JobId, TaskId, MachineId)>,
    ) -> RunningDelta {
        entered.sort_unstable();
        exited.sort_unstable();
        let (mut i, mut j) = (0usize, 0usize);
        let (mut keep_in, mut keep_out) = (Vec::new(), Vec::new());
        while i < entered.len() && j < exited.len() {
            match entered[i].cmp(&exited[j]) {
                std::cmp::Ordering::Less => {
                    keep_in.push(entered[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    keep_out.push(exited[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        keep_in.extend_from_slice(&entered[i..]);
        keep_out.extend_from_slice(&exited[j..]);
        RunningDelta {
            entered: keep_in,
            exited: keep_out,
        }
    }

    /// True when nothing entered or exited.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.exited.is_empty()
    }

    /// Total structural changes (|entered| + |exited|) — the Δ a delta step
    /// pays for.
    pub fn change_count(&self) -> usize {
        self.entered.len() + self.exited.len()
    }
}

/// The machines whose liveness changed between two timestamps: the
/// liveness counterpart of [`RunningDelta`], letting a scrubbing consumer
/// maintain [`DatasetQuery::machines_active_at`] by patching instead of
/// recomputing the full active set at every instant.
///
/// `activated` holds the machines alive at `t1` but not at `t0`,
/// `deactivated` the reverse; both ascend. Applying the delta to the
/// sorted active set at `t0` reproduces the active set at `t1` exactly —
/// provided the source state (and so its known-machine set) is unchanged
/// between the two reads, which [`DatasetQuery::state_version`] guards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessDelta {
    /// Machines alive at `t1` but not at `t0`, ascending.
    pub activated: Vec<MachineId>,
    /// Machines alive at `t0` but not at `t1`, ascending.
    pub deactivated: Vec<MachineId>,
}

impl LivenessDelta {
    /// True when no machine's liveness changed.
    pub fn is_empty(&self) -> bool {
        self.activated.is_empty() && self.deactivated.is_empty()
    }
}

/// A machine's sample-and-hold utilization at a timestamp **plus the
/// half-open validity window** over which that exact value holds:
/// `util_at(t') == util` for every `t'` with
/// `since <= t' < until` (`None` bounds are unbounded).
///
/// Lets a scrubbing consumer skip re-resolving utilization until the
/// timestamp crosses a sample boundary. The conservative trait default
/// claims validity only over `[t, t+1)` (always true on the whole-second
/// [`Timestamp`] grid); the indexed implementations widen it to the real
/// inter-sample window. Validity is relative to the source state it was
/// read from — a mutating live source invalidates holds via its
/// [`DatasetQuery::state_version`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilHold {
    /// The sample-and-hold triple at the queried timestamp (`None` before
    /// the first known sample), exactly [`DatasetQuery::util_at`]'s answer.
    pub util: Option<UtilizationTriple>,
    /// First timestamp of the validity window (`None` = unbounded below).
    pub since: Option<Timestamp>,
    /// First timestamp past the validity window (`None` = unbounded above).
    pub until: Option<Timestamp>,
}

impl UtilHold {
    /// Whether the held value is still the sample-and-hold answer at `t`.
    pub fn holds_at(&self, t: Timestamp) -> bool {
        self.since.is_none_or(|s| t >= s) && self.until.is_none_or(|u| t < u)
    }
}

/// One timestamp's worth of structural queries, captured **transactionally
/// consistently**: every answer in a frame reflects the same source state.
///
/// For an immutable batch dataset that is trivially true; for a live window
/// the overriding implementation ([`DatasetQuery::frame`] on
/// `batchlens::stream::LiveWindowView`) acquires the monitor lock **once**
/// and answers every probe under it — where issuing the sub-queries
/// individually would let concurrent ingest slide the window between them.
/// The captured [`QueryFrame::version`] names that state, so downstream
/// caches can key on `(version, at)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrame {
    at: Timestamp,
    version: u64,
    /// Running `(job, task, machine)` triples, ascending, one per instance.
    triples: Vec<(JobId, TaskId, MachineId)>,
    /// Every machine known to the source, ascending.
    machines: Vec<MachineId>,
    /// Liveness per machine, parallel to `machines`.
    alive: Vec<bool>,
    /// Sample-and-hold utilization per machine, parallel to `machines`.
    utils: Vec<Option<UtilizationTriple>>,
    /// Retained anomaly alerts per machine, parallel to `machines` (all
    /// zero for sources without an anomaly stream).
    anomalies: Vec<u32>,
}

impl QueryFrame {
    /// Assembles a frame from pre-queried parts. `machines` must ascend and
    /// `alive`/`utils` must align with it; `triples` must ascend. Anomaly
    /// counts are zero — sources with an anomaly stream use
    /// [`QueryFrame::with_anomalies`].
    pub fn new(
        at: Timestamp,
        version: u64,
        triples: Vec<(JobId, TaskId, MachineId)>,
        machines: Vec<MachineId>,
        alive: Vec<bool>,
        utils: Vec<Option<UtilizationTriple>>,
    ) -> QueryFrame {
        let anomalies = vec![0; machines.len()];
        QueryFrame::with_anomalies(at, version, triples, machines, alive, utils, anomalies)
    }

    /// [`QueryFrame::new`] plus per-machine retained anomaly-alert counts
    /// (parallel to `machines`), captured under the same lock as the rest
    /// of the frame — which is what lets a dashboard render an anomaly
    /// sidebar overlay from the frame alone, with no second lock
    /// acquisition racing the ingest path.
    pub fn with_anomalies(
        at: Timestamp,
        version: u64,
        triples: Vec<(JobId, TaskId, MachineId)>,
        machines: Vec<MachineId>,
        alive: Vec<bool>,
        utils: Vec<Option<UtilizationTriple>>,
        anomalies: Vec<u32>,
    ) -> QueryFrame {
        debug_assert!(machines.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(triples.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(machines.len(), alive.len());
        debug_assert_eq!(machines.len(), utils.len());
        debug_assert_eq!(machines.len(), anomalies.len());
        QueryFrame {
            at,
            version,
            triples,
            machines,
            alive,
            utils,
            anomalies,
        }
    }

    /// The frame's timestamp.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// The source state version the frame was captured from
    /// ([`DatasetQuery::state_version`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Running `(job, task, machine)` triples, ascending — exactly
    /// [`DatasetQuery::running_triples_at`] at [`QueryFrame::at`].
    pub fn running_triples(&self) -> &[(JobId, TaskId, MachineId)] {
        &self.triples
    }

    /// How many instances were running.
    pub fn running_instance_count(&self) -> usize {
        self.triples.len()
    }

    /// Jobs with at least one running instance, ascending, each once.
    pub fn jobs_running(&self) -> Vec<JobId> {
        let mut out: Vec<JobId> = self.triples.iter().map(|t| t.0).collect();
        out.dedup();
        out
    }

    /// Every machine known to the source, ascending.
    pub fn machine_ids(&self) -> &[MachineId] {
        &self.machines
    }

    /// Whether `machine` was alive; machines unknown to the source count
    /// alive, matching [`DatasetQuery::alive_at`].
    pub fn alive(&self, machine: MachineId) -> bool {
        match self.machines.binary_search(&machine) {
            Ok(i) => self.alive[i],
            Err(_) => true,
        }
    }

    /// The machine's sample-and-hold utilization, or `None` when the source
    /// had no sample for it yet (or doesn't know it).
    pub fn util_of(&self, machine: MachineId) -> Option<UtilizationTriple> {
        match self.machines.binary_search(&machine) {
            Ok(i) => self.utils[i],
            Err(_) => None,
        }
    }

    /// The machines alive in this frame, ascending — the frame-consistent
    /// [`DatasetQuery::machines_active_at`].
    pub fn machines_active(&self) -> Vec<MachineId> {
        self.machines
            .iter()
            .zip(&self.alive)
            .filter(|&(_, &a)| a)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Mean utilization over the machines with a known sample — the
    /// dashboard's cluster-utilization stat, recomputed fresh per frame (no
    /// cross-frame float accumulation, hence no drift to rebase away).
    pub fn mean_utilization(&self) -> Option<UtilizationTriple> {
        UtilizationTriple::mean_of(self.utils.iter().filter_map(|u| u.as_ref()))
    }

    /// Retained anomaly alerts for `machine` in the source's alert buffer
    /// at capture time (0 for machines unknown to the source, and for
    /// sources without an anomaly stream — e.g. a batch
    /// [`crate::TraceDataset`]).
    pub fn anomaly_count(&self, machine: MachineId) -> u32 {
        match self.machines.binary_search(&machine) {
            Ok(i) => self.anomalies[i],
            Err(_) => 0,
        }
    }

    /// Total retained anomaly alerts across all machines in the frame.
    pub fn total_anomalies(&self) -> u64 {
        self.anomalies.iter().map(|&c| u64::from(c)).sum()
    }
}

/// The structural query surface shared by [`crate::TraceDataset`] and live
/// window views.
///
/// Contracts every implementation must honor (the differential suite checks
/// them pairwise):
///
/// * Results are **deterministic and sorted**: ids ascend, and
///   [`DatasetQuery::running_triples_at`] ascends by `(job, task, machine)`.
/// * Instance windows are half-open `[start, end)`; empty windows never
///   match.
/// * Machines without recorded lifecycle events count as alive.
/// * Utilization is sample-and-hold: the last sample at or before `t`, or
///   `None` before the first (known) sample.
pub trait DatasetQuery {
    /// Every machine known to the source (declared, referenced by an
    /// instance or event, or reporting usage), ascending.
    fn machine_ids(&self) -> Vec<MachineId>;

    /// Jobs with at least one instance running at `t`, ascending, each
    /// exactly once.
    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId>;

    /// One `(job, task, machine)` triple per instance running at `t`
    /// (multiple instances of one task on one machine repeat the triple),
    /// ascending.
    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)>;

    /// How many instances are running at `t`.
    fn running_instance_count_at(&self, t: Timestamp) -> usize;

    /// Whether `machine` is alive at `t` according to its lifecycle events;
    /// machines with no events (or unknown to the source) count alive.
    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool;

    /// The machine's sample-and-hold utilization triple at `t`.
    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple>;

    /// The machine's usage samples for `metric` inside the half-open
    /// `window`, or `None` when the source has no usage for it.
    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries>;

    /// The machines alive at `t`, ascending — the default walks
    /// [`DatasetQuery::machine_ids`] through [`DatasetQuery::alive_at`].
    fn machines_active_at(&self, t: Timestamp) -> Vec<MachineId> {
        self.machine_ids()
            .into_iter()
            .filter(|&m| self.alive_at(m, t))
            .collect()
    }

    /// A monotone counter naming the source state the queries answer from.
    /// Immutable sources (a built [`crate::TraceDataset`]) return a
    /// constant `0`; mutable sources bump it on **every** state change that
    /// could alter a query answer, so `(state_version, timestamp)` is a
    /// sound memoization key and deltas across a version change are known
    /// stale.
    fn state_version(&self) -> u64 {
        0
    }

    /// The structural delta between two snapshot instants: the triples
    /// entering and exiting the running set from `t0` to `t1` (both sides
    /// ascending, one entry per instance; `t0 > t1` swaps the roles).
    ///
    /// The default diffs two full [`DatasetQuery::running_triples_at`]
    /// stabs — O(k) in the larger running set. Indexed implementations
    /// override it with an endpoint-array walk that is **O(log n + Δ log Δ)
    /// in the changes alone**: [`crate::TraceDataset`] via the static
    /// interval index's sorted start/end rows, the live window via the
    /// rolling index's ordered endpoint sets. Scrubbing a cursor across the
    /// whole span therefore costs each endpoint once in total, not once per
    /// visited timestamp.
    fn running_delta(&self, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        let from = self.running_triples_at(t0);
        let to = self.running_triples_at(t1);
        let mut entered = Vec::new();
        let mut exited = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < from.len() && j < to.len() {
            match from[i].cmp(&to[j]) {
                std::cmp::Ordering::Less => {
                    exited.push(from[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entered.push(to[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        exited.extend_from_slice(&from[i..]);
        entered.extend_from_slice(&to[j..]);
        RunningDelta { entered, exited }
    }

    /// The liveness delta between two snapshot instants: the machines
    /// activating and deactivating from `t0` to `t1` (both sides ascending;
    /// `t0 > t1` swaps the roles) — see [`LivenessDelta`].
    ///
    /// The default diffs two full [`DatasetQuery::machines_active_at`]
    /// walks — O(M log e) in the machine count. Indexed implementations
    /// override it to touch only the machines with a liveness checkpoint
    /// inside the hop, so scrubbing across quiet stretches costs nothing.
    fn liveness_delta(&self, t0: Timestamp, t1: Timestamp) -> LivenessDelta {
        let from = self.machines_active_at(t0);
        let to = self.machines_active_at(t1);
        let mut activated = Vec::new();
        let mut deactivated = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < from.len() && j < to.len() {
            match from[i].cmp(&to[j]) {
                std::cmp::Ordering::Less => {
                    deactivated.push(from[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    activated.push(to[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        deactivated.extend_from_slice(&from[i..]);
        activated.extend_from_slice(&to[j..]);
        LivenessDelta {
            activated,
            deactivated,
        }
    }

    /// [`DatasetQuery::util_at`] plus the validity window over which the
    /// returned value keeps being the sample-and-hold answer (see
    /// [`UtilHold`]). The default claims the minimal `[t, t+1)` window —
    /// always correct on the whole-second grid; indexed implementations
    /// widen it to the true inter-sample window so scrubbers can skip
    /// re-resolution entirely between samples.
    fn util_hold(&self, machine: MachineId, t: Timestamp) -> UtilHold {
        UtilHold {
            util: self.util_at(machine, t),
            since: Some(t),
            until: Some(Timestamp::new(t.seconds().saturating_add(1))),
        }
    }

    /// Retained anomaly alerts per machine, parallel to `machines`. The
    /// default returns zeros — batch datasets have no anomaly stream. Live
    /// monitors override it to count their retained alert buffer, so the
    /// default [`DatasetQuery::frame`] picks the counts up under the same
    /// lock as every other probe.
    fn anomaly_counts(&self, machines: &[MachineId]) -> Vec<u32> {
        vec![0; machines.len()]
    }

    /// Captures every structural query at `at` as one transactionally
    /// consistent [`QueryFrame`].
    ///
    /// The default issues the sub-queries individually — fine for immutable
    /// sources, where every query answers from the same state anyway.
    /// Mutable live sources override it to take their lock **once** and
    /// answer the whole frame under it (the frame consistency guarantee:
    /// hierarchy, co-allocation, utilization, alive-set and anomaly-count
    /// probes derived from one frame can never disagree about the window
    /// state).
    fn frame(&self, at: Timestamp) -> QueryFrame {
        let machines = self.machine_ids();
        let alive = machines.iter().map(|&m| self.alive_at(m, at)).collect();
        let utils = machines.iter().map(|&m| self.util_at(m, at)).collect();
        let anomalies = self.anomaly_counts(&machines);
        QueryFrame::with_anomalies(
            at,
            self.state_version(),
            self.running_triples_at(at),
            machines,
            alive,
            utils,
            anomalies,
        )
    }
}

use crate::TaskId;

impl DatasetQuery for crate::TraceDataset {
    fn machine_ids(&self) -> Vec<MachineId> {
        self.machines().map(|m| m.id()).collect()
    }

    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
        // The inherent method (which this resolves to) serves the merged
        // per-job interval index: ascending, deduplicated.
        self.jobs_running_at(t).iter().map(|j| j.id()).collect()
    }

    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
        let mut out: Vec<(JobId, TaskId, MachineId)> = self
            .instances_running_at(t)
            .iter()
            .map(|i| (i.record.job, i.record.task, i.record.machine))
            .collect();
        // instances_running_at ascends by (job, task, seq); the trait orders
        // by (job, task, machine), so re-sort the machine tie-break.
        out.sort_unstable();
        out
    }

    fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.running_instance_count_at(t)
    }

    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
        self.machine(machine).is_none_or(|m| m.alive_at(t))
    }

    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
        self.machine(machine)?.util_at(t)
    }

    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries> {
        Some(self.machine(machine)?.usage(metric)?.slice(window))
    }

    fn running_delta(&self, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        // The static interval index walks its sorted endpoint rows between
        // binary-searched bounds: O(log n + Δ log Δ), never a stab.
        let records = self.instance_records();
        let mut entered = Vec::new();
        let mut exited = Vec::new();
        self.instance_index().running_delta_with(
            t0,
            t1,
            |id| {
                let r = &records[id as usize];
                entered.push((r.job, r.task, r.machine));
            },
            |id| {
                let r = &records[id as usize];
                exited.push((r.job, r.task, r.machine));
            },
        );
        // Same-triple instance handoffs inside the hop cancel out.
        RunningDelta::from_events(entered, exited)
    }

    fn util_hold(&self, machine: MachineId, t: Timestamp) -> UtilHold {
        // The scrubber calls this once per machine per sample transition —
        // it is the delta engine's per-step floor — so it resolves through
        // the dataset's combined utilization samples: one lookup, one
        // search, value and validity window off the same grid (the three
        // metric series are built from the same usage rows).
        self.util_hold_at(machine, t)
    }

    fn liveness_delta(&self, t0: Timestamp, t1: Timestamp) -> LivenessDelta {
        // Liveness at `t` is decided by the last checkpoint at or before
        // `t`, so only machines with an event inside the half-open hop
        // `(min, max]` can flip — found by binary search on the time-sorted
        // event table, then re-resolved per touched machine. O(log E + Δ)
        // scan instead of the default's full active-set diff.
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let events = self.machine_events();
        let start = events.partition_point(|e| e.time <= lo);
        let end = events.partition_point(|e| e.time <= hi);
        let mut touched: Vec<MachineId> = events[start..end].iter().map(|e| e.machine).collect();
        touched.sort_unstable();
        touched.dedup();
        let mut activated = Vec::new();
        let mut deactivated = Vec::new();
        for m in touched {
            let was = DatasetQuery::alive_at(self, m, t0);
            let now = DatasetQuery::alive_at(self, m, t1);
            match (was, now) {
                (false, true) => activated.push(m),
                (true, false) => deactivated.push(m),
                _ => {}
            }
        }
        LivenessDelta {
            activated,
            deactivated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BatchInstanceRecord, BatchTaskRecord, MachineEvent, MachineEventRecord, ServerUsageRecord,
        TaskStatus, TraceDataset, TraceDatasetBuilder,
    };

    fn dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        for (job, task) in [(1u32, 1u32), (1, 2), (2, 1)] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(1000),
                job: JobId::new(job),
                task: TaskId::new(task),
                instance_count: 2,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
        }
        // Task (1,1) places seq 0 on machine 5 and seq 1 on machine 3: the
        // trait's (job, task, machine) order differs from seq order here.
        for (job, task, seq, machine, s, e) in [
            (1u32, 1u32, 0u32, 5u32, 0i64, 600i64),
            (1, 1, 1, 3, 0, 500),
            (1, 2, 0, 3, 100, 900),
            (2, 1, 0, 7, 300, 1200),
        ] {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: 2,
                machine: MachineId::new(machine),
                status: TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            });
        }
        for t in (0..1200).step_by(300) {
            b.push_usage(ServerUsageRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(3),
                util: UtilizationTriple::clamped(0.4, 0.3, 0.2),
            });
        }
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(700),
            machine: MachineId::new(7),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn trait_queries_match_inherent_ones() {
        let ds = dataset();
        let t = Timestamp::new(350);
        let jobs = DatasetQuery::jobs_running_at(&ds, t);
        assert_eq!(jobs, vec![JobId::new(1), JobId::new(2)]);
        let triples = ds.running_triples_at(t);
        assert_eq!(
            triples,
            vec![
                (JobId::new(1), TaskId::new(1), MachineId::new(3)),
                (JobId::new(1), TaskId::new(1), MachineId::new(5)),
                (JobId::new(1), TaskId::new(2), MachineId::new(3)),
                (JobId::new(2), TaskId::new(1), MachineId::new(7)),
            ]
        );
        assert_eq!(
            DatasetQuery::running_instance_count_at(&ds, t),
            triples.len()
        );
    }

    #[test]
    fn liveness_and_unknown_machines() {
        let ds = dataset();
        assert!(DatasetQuery::alive_at(
            &ds,
            MachineId::new(7),
            Timestamp::new(600)
        ));
        assert!(!DatasetQuery::alive_at(
            &ds,
            MachineId::new(7),
            Timestamp::new(700)
        ));
        // Unknown machines default alive, like event-less ones.
        assert!(DatasetQuery::alive_at(
            &ds,
            MachineId::new(99),
            Timestamp::new(0)
        ));
        let active = ds.machines_active_at(Timestamp::new(800));
        assert_eq!(
            active,
            vec![MachineId::new(3), MachineId::new(5)],
            "machine 7 removed at 700"
        );
    }

    /// The trait-default (full-stab diff) delta, as the reference model.
    fn naive_delta<Q: DatasetQuery>(src: &Q, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        struct Probe<'a, Q: DatasetQuery>(&'a Q);
        impl<Q: DatasetQuery> DatasetQuery for Probe<'_, Q> {
            fn machine_ids(&self) -> Vec<MachineId> {
                self.0.machine_ids()
            }
            fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
                self.0.jobs_running_at(t)
            }
            fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
                self.0.running_triples_at(t)
            }
            fn running_instance_count_at(&self, t: Timestamp) -> usize {
                self.0.running_instance_count_at(t)
            }
            fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
                self.0.alive_at(machine, t)
            }
            fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
                self.0.util_at(machine, t)
            }
            fn series_window(
                &self,
                machine: MachineId,
                metric: Metric,
                window: &TimeRange,
            ) -> Option<TimeSeries> {
                self.0.series_window(machine, metric, window)
            }
            // No overrides: running_delta is the provided stab-diff default.
        }
        Probe(src).running_delta(t0, t1)
    }

    #[test]
    fn indexed_running_delta_matches_stab_diff() {
        let ds = dataset();
        let probes: Vec<i64> = (-50..1400).step_by(83).chain([0, 500, 600, 900]).collect();
        for &a in &probes {
            for &b in &probes {
                let (t0, t1) = (Timestamp::new(a), Timestamp::new(b));
                let want = naive_delta(&ds, t0, t1);
                let got = ds.running_delta(t0, t1);
                assert_eq!(got, want, "delta {a} -> {b}");
                if a == b {
                    assert!(got.is_empty());
                }
                // Reversing the hop swaps the sides.
                let rev = ds.running_delta(t1, t0);
                assert_eq!(rev.entered, got.exited);
                assert_eq!(rev.exited, got.entered);
                assert_eq!(got.change_count(), got.entered.len() + got.exited.len());
            }
        }
    }

    #[test]
    fn same_triple_handoffs_cancel_in_the_indexed_delta() {
        // Two instances of one (job, task, machine) triple hand off inside
        // the hop: seq 0 ends at 100, seq 1 starts at 50 and outlives the
        // hop. The endpoint walk sees one exit and one enter, but the
        // running multiset is unchanged — the indexed override must cancel
        // the pair exactly like the stab-diff default does.
        let mut b = TraceDatasetBuilder::new();
        b.push_task(BatchTaskRecord {
            create_time: Timestamp::new(0),
            modify_time: Timestamp::new(1000),
            job: JobId::new(1),
            task: TaskId::new(1),
            instance_count: 2,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        });
        for (seq, s, e) in [(0u32, 0i64, 100i64), (1, 50, 150)] {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(1),
                task: TaskId::new(1),
                seq,
                total: 2,
                machine: MachineId::new(3),
                status: TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            });
        }
        let ds = b.build().unwrap();
        let delta = ds.running_delta(Timestamp::new(25), Timestamp::new(125));
        assert!(delta.is_empty(), "handoff must cancel: {delta:?}");
        assert_eq!(
            delta,
            naive_delta(&ds, Timestamp::new(25), Timestamp::new(125))
        );
        // A hop that only crosses the overlap start still reports the
        // second instance entering (count 1 → 2).
        let grow = ds.running_delta(Timestamp::new(25), Timestamp::new(75));
        assert_eq!(
            grow.entered,
            vec![(JobId::new(1), TaskId::new(1), MachineId::new(3))]
        );
        assert!(grow.exited.is_empty());
    }

    #[test]
    fn indexed_liveness_delta_matches_active_set_diff() {
        // Add a second lifecycle flip so hops cross 0, 1 or 2 checkpoints.
        let mut b = TraceDatasetBuilder::new();
        b.push_usage(ServerUsageRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(3),
            util: UtilizationTriple::clamped(0.4, 0.3, 0.2),
        });
        for (t, m, ev) in [
            (700i64, 7u32, MachineEvent::Remove),
            (900, 7, MachineEvent::Add),
            (400, 3, MachineEvent::SoftError),
            (500, 3, MachineEvent::Remove),
        ] {
            b.push_machine_event(MachineEventRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(m),
                event: ev,
                capacity_cpu: 0.0,
                capacity_mem: 0.0,
                capacity_disk: 0.0,
            });
        }
        let ds = b.build().unwrap();
        let diff = |t0: Timestamp, t1: Timestamp| {
            let from = ds.machines_active_at(t0);
            let to = ds.machines_active_at(t1);
            LivenessDelta {
                activated: to.iter().filter(|m| !from.contains(m)).copied().collect(),
                deactivated: from.iter().filter(|m| !to.contains(m)).copied().collect(),
            }
        };
        let probes: Vec<i64> = (-100..1200)
            .step_by(67)
            .chain([400, 500, 700, 900])
            .collect();
        for &a in &probes {
            for &b in &probes {
                let (t0, t1) = (Timestamp::new(a), Timestamp::new(b));
                let got = ds.liveness_delta(t0, t1);
                assert_eq!(got, diff(t0, t1), "liveness delta {a} -> {b}");
                if a == b {
                    assert!(got.is_empty());
                }
                // Reversing the hop swaps the sides.
                let rev = ds.liveness_delta(t1, t0);
                assert_eq!(rev.activated, got.deactivated);
                assert_eq!(rev.deactivated, got.activated);
            }
        }
    }

    #[test]
    fn util_hold_brackets_every_probe() {
        let ds = dataset();
        for m in [3u32, 5, 7, 99] {
            let m = MachineId::new(m);
            for t in (-100..1500).step_by(41) {
                let t = Timestamp::new(t);
                let hold = ds.util_hold(m, t);
                assert_eq!(hold.util, DatasetQuery::util_at(&ds, m, t), "{m} at {t}");
                assert!(hold.holds_at(t), "{m} window must contain {t}");
                // Every instant the hold claims must answer identically.
                for probe in (-100..1500).step_by(29).map(Timestamp::new) {
                    if hold.holds_at(probe) {
                        assert_eq!(
                            DatasetQuery::util_at(&ds, m, probe),
                            hold.util,
                            "{m}: hold [{:?}, {:?}) lied at {probe}",
                            hold.since,
                            hold.until
                        );
                    }
                }
            }
        }
        // Machine 3 samples every 300 s: holds are full sample cells.
        let hold = ds.util_hold(MachineId::new(3), Timestamp::new(450));
        assert_eq!(hold.since, Some(Timestamp::new(300)));
        assert_eq!(hold.until, Some(Timestamp::new(600)));
    }

    #[test]
    fn frame_matches_individual_queries() {
        let ds = dataset();
        for t in [0i64, 350, 700, 1200, 5000] {
            let t = Timestamp::new(t);
            let frame = ds.frame(t);
            assert_eq!(frame.at(), t);
            assert_eq!(frame.version(), 0, "immutable source");
            assert_eq!(frame.running_triples(), &ds.running_triples_at(t)[..]);
            assert_eq!(
                frame.running_instance_count(),
                DatasetQuery::running_instance_count_at(&ds, t)
            );
            assert_eq!(frame.jobs_running(), DatasetQuery::jobs_running_at(&ds, t));
            assert_eq!(frame.machine_ids(), &ds.machine_ids()[..]);
            assert_eq!(frame.machines_active(), ds.machines_active_at(t));
            for m in [3u32, 5, 7, 99] {
                let m = MachineId::new(m);
                assert_eq!(frame.alive(m), DatasetQuery::alive_at(&ds, m, t));
                assert_eq!(frame.util_of(m), DatasetQuery::util_at(&ds, m, t));
            }
        }
    }

    #[test]
    fn util_and_series_windows() {
        let ds = dataset();
        let u = DatasetQuery::util_at(&ds, MachineId::new(3), Timestamp::new(450)).unwrap();
        assert!((u.cpu.fraction() - 0.4).abs() < 1e-12);
        assert!(DatasetQuery::util_at(&ds, MachineId::new(5), Timestamp::new(450)).is_none());
        let w = TimeRange::new(Timestamp::new(300), Timestamp::new(900)).unwrap();
        let s = ds
            .series_window(MachineId::new(3), Metric::Cpu, &w)
            .unwrap();
        assert_eq!(s.len(), 2); // samples at 300 and 600; 900 excluded
        assert!(ds
            .series_window(MachineId::new(5), Metric::Cpu, &w)
            .is_none());
    }
}
