use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::TraceError;

/// A point in trace time, in whole seconds since trace start.
///
/// The Alibaba v2017 trace timestamps everything in seconds relative to the
/// start of the 24-hour collection window; the paper's case study refers to
/// timestamps such as `47400`, `46200` and `43800` directly in this unit.
/// Negative values are permitted (records occasionally refer to events before
/// the window opens).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The trace-start origin, `t = 0`.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from seconds since trace start.
    pub const fn new(seconds: i64) -> Self {
        Timestamp(seconds)
    }

    /// Seconds since trace start.
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// Rounds down to a multiple of `resolution` (e.g. the 300 s batch grid).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidResolution`] if `resolution` is not
    /// strictly positive.
    pub fn align_down(self, resolution: TimeDelta) -> Result<Self, TraceError> {
        if resolution.0 <= 0 {
            return Err(TraceError::InvalidResolution {
                seconds: resolution.0,
            });
        }
        Ok(Timestamp(self.0.div_euclid(resolution.0) * resolution.0))
    }

    /// Rounds up to a multiple of `resolution`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidResolution`] if `resolution` is not
    /// strictly positive.
    pub fn align_up(self, resolution: TimeDelta) -> Result<Self, TraceError> {
        let down = self.align_down(resolution)?;
        if down == self {
            Ok(self)
        } else {
            Ok(Timestamp(down.0 + resolution.0))
        }
    }

    /// Saturating minimum of two timestamps.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating maximum of two timestamps.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for Timestamp {
    type Output = TimeDelta;

    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

/// A signed duration in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// Zero-length duration.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The paper's batch-table reporting resolution: 300 seconds.
    pub const BATCH_RESOLUTION: TimeDelta = TimeDelta(300);
    /// One minute.
    pub const MINUTE: TimeDelta = TimeDelta(60);
    /// One hour.
    pub const HOUR: TimeDelta = TimeDelta(3600);
    /// One day — the span of the v2017 trace.
    pub const DAY: TimeDelta = TimeDelta(86_400);

    /// Creates a duration from whole seconds.
    pub const fn seconds(seconds: i64) -> Self {
        TimeDelta(seconds)
    }

    /// Creates a duration from whole minutes.
    pub const fn minutes(minutes: i64) -> Self {
        TimeDelta(minutes * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn hours(hours: i64) -> Self {
        TimeDelta(hours * 3600)
    }

    /// The duration in seconds.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// The duration as floating-point seconds (for scale math).
    pub const fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// True if this duration is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Absolute value.
    pub const fn abs(self) -> Self {
        TimeDelta(self.0.abs())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;

    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for TimeDelta {
    type Output = TimeDelta;

    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl std::ops::Div<i64> for TimeDelta {
    type Output = TimeDelta;

    fn div(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

/// A half-open interval of trace time, `[start, end)`.
///
/// Used for job/instance lifetimes, brush selections and series slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    start: Timestamp,
    end: Timestamp,
}

impl TimeRange {
    /// Creates the half-open interval `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvertedInterval`] if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, TraceError> {
        if end < start {
            return Err(TraceError::InvertedInterval { start, end });
        }
        Ok(TimeRange { start, end })
    }

    /// Interval covering the whole v2017 trace window, `[0, 86400)`.
    pub fn full_day() -> Self {
        TimeRange {
            start: Timestamp::ZERO,
            end: Timestamp::new(86_400),
        }
    }

    /// Interval start (inclusive).
    pub const fn start(&self) -> Timestamp {
        self.start
    }

    /// Interval end (exclusive).
    pub const fn end(&self) -> Timestamp {
        self.end
    }

    /// Interval length.
    pub fn duration(&self) -> TimeDelta {
        self.end - self.start
    }

    /// True when the interval contains no time.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `t` falls inside `[start, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// True when the two intervals share any time.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Intersection of two intervals, or `None` when disjoint.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeRange { start, end })
        } else {
            None
        }
    }

    /// Smallest interval containing both inputs.
    pub fn union(&self, other: &TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Clamps a timestamp into the interval (end-exclusive intervals clamp to
    /// `end`, which callers treat as the right edge for scales/brushes).
    pub fn clamp(&self, t: Timestamp) -> Timestamp {
        t.max(self.start).min(self.end)
    }

    /// Iterates over grid points `start, start+step, …` strictly below `end`.
    ///
    /// # Panics
    ///
    /// Does not panic; a non-positive `step` yields an empty iterator.
    pub fn steps(&self, step: TimeDelta) -> impl Iterator<Item = Timestamp> + '_ {
        let start = self.start;
        let end = self.end;
        let step_s = step.as_seconds();
        let count = if step_s > 0 && end > start {
            ((end - start).as_seconds() + step_s - 1) / step_s
        } else {
            0
        };
        (0..count).map(move |i| start + TimeDelta::seconds(i * step_s))
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::new(300);
        assert_eq!((t + TimeDelta::seconds(60)).seconds(), 360);
        assert_eq!((t - TimeDelta::seconds(500)).seconds(), -200);
        assert_eq!(Timestamp::new(900) - t, TimeDelta::seconds(600));
    }

    #[test]
    fn align_to_batch_grid() {
        let r = TimeDelta::BATCH_RESOLUTION;
        assert_eq!(
            Timestamp::new(47400).align_down(r).unwrap().seconds(),
            47400
        );
        assert_eq!(
            Timestamp::new(47401).align_down(r).unwrap().seconds(),
            47400
        );
        assert_eq!(Timestamp::new(47401).align_up(r).unwrap().seconds(), 47700);
        assert_eq!(Timestamp::new(-1).align_down(r).unwrap().seconds(), -300);
    }

    #[test]
    fn align_rejects_bad_resolution() {
        assert!(Timestamp::new(5).align_down(TimeDelta::ZERO).is_err());
        assert!(Timestamp::new(5).align_up(TimeDelta::seconds(-10)).is_err());
    }

    #[test]
    fn range_construction_and_containment() {
        let r = TimeRange::new(Timestamp::new(100), Timestamp::new(200)).unwrap();
        assert!(r.contains(Timestamp::new(100)));
        assert!(r.contains(Timestamp::new(199)));
        assert!(!r.contains(Timestamp::new(200)));
        assert_eq!(r.duration(), TimeDelta::seconds(100));
        assert!(TimeRange::new(Timestamp::new(2), Timestamp::new(1)).is_err());
    }

    #[test]
    fn empty_range_is_allowed_and_empty() {
        let r = TimeRange::new(Timestamp::new(5), Timestamp::new(5)).unwrap();
        assert!(r.is_empty());
        assert!(!r.contains(Timestamp::new(5)));
    }

    #[test]
    fn range_set_operations() {
        let a = TimeRange::new(Timestamp::new(0), Timestamp::new(100)).unwrap();
        let b = TimeRange::new(Timestamp::new(50), Timestamp::new(150)).unwrap();
        let c = TimeRange::new(Timestamp::new(200), Timestamp::new(300)).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.start().seconds(), i.end().seconds()), (50, 100));
        assert!(a.intersect(&c).is_none());
        let u = a.union(&c);
        assert_eq!((u.start().seconds(), u.end().seconds()), (0, 300));
    }

    #[test]
    fn adjacent_ranges_do_not_overlap() {
        let a = TimeRange::new(Timestamp::new(0), Timestamp::new(100)).unwrap();
        let b = TimeRange::new(Timestamp::new(100), Timestamp::new(200)).unwrap();
        assert!(!a.overlaps(&b));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn steps_cover_range_exclusively() {
        let r = TimeRange::new(Timestamp::new(0), Timestamp::new(900)).unwrap();
        let pts: Vec<i64> = r
            .steps(TimeDelta::BATCH_RESOLUTION)
            .map(|t| t.seconds())
            .collect();
        assert_eq!(pts, vec![0, 300, 600]);
        // Non-positive step: empty.
        assert_eq!(r.steps(TimeDelta::ZERO).count(), 0);
    }

    #[test]
    fn clamp_respects_bounds() {
        let r = TimeRange::new(Timestamp::new(10), Timestamp::new(20)).unwrap();
        assert_eq!(r.clamp(Timestamp::new(5)).seconds(), 10);
        assert_eq!(r.clamp(Timestamp::new(25)).seconds(), 20);
        assert_eq!(r.clamp(Timestamp::new(15)).seconds(), 15);
    }

    #[test]
    fn full_day_matches_trace_span() {
        let d = TimeRange::full_day();
        assert_eq!(d.duration(), TimeDelta::DAY);
    }
}
