//! Columnar on-disk trace store: sorted, checksummed, memory-mappable
//! segment files per record family.
//!
//! The CSV tables are a parse-everything-every-time format; the real
//! cluster-trace-v2017 corpus is ~100 GB, so reopening a dataset must not
//! cost a re-parse and resident memory must not be bounded by the corpus.
//! This module provides the storage half of that story:
//!
//! * [`SegmentWriter`] sorts each record family (`batch_task`,
//!   `batch_instance`, `server_usage`, `machine_events`, plus the machine
//!   capacity table) by its family key and writes fixed-layout
//!   little-endian **columnar** segment files of bounded row count,
//! * [`SegmentReader`] memory-maps a segment (with a portable buffered
//!   fallback) and serves zero-copy sorted column scans,
//! * [`TraceDataset::open`] is the second construction path next to the
//!   CSV parse: segments are mapped lazily (pages fault in on first
//!   touch), the batch/event families decode one exec-pool task per
//!   segment and concatenate (the writer guarantees non-overlapping
//!   sorted runs; one linear verify pass confirms, with a stable k-way
//!   merge fallback for hand-built stores), the machine-major
//!   `server_usage` columns turn into per-machine [`TimeSeries`]
//!   directly — no record materialization — and the sorted tables feed
//!   a trusted build that skips the builder's re-sorts. Any ordering
//!   violation falls back to the full record decode + general builder,
//!   so tampered stores behave exactly like the original path.
//!
//! # Segment format
//!
//! One segment file holds one sorted chunk of one record family:
//!
//! ```text
//! header   magic "BLS1" u32 | family u32 | row_count u64
//!          | column_count u32 | reserved u32
//! columns  column 0 ‖ column 1 ‖ …        (row_count fixed-width LE cells each)
//! footer   per column: offset u64 | len u64 | crc u32
//!          min_key i64 | max_key i64
//!          header_crc u32 | footer_len u32 | tail magic "BLSE" u32
//!          footer_crc u32
//! ```
//!
//! # Durability contract
//!
//! Every byte of a sealed segment is covered by exactly one CRC-32 (the
//! [`crate::wal`] machinery): the header by `header_crc`, each column by
//! its footer entry, and the footer itself — including `footer_len` and
//! the tail magic — by the trailing `footer_crc`. [`SegmentReader::open`]
//! verifies all of them before returning, so a torn tail, a short write or
//! any single-bit flip surfaces as a typed
//! [`TraceError::CorruptSegment`] naming the segment and the exact byte
//! region that failed — never as a panic, and never as silently wrong
//! data. `min_key`/`max_key` describe the sorted key range of the rows
//! (family-specific, see [`Family::key_of_row`] docs), letting a directory
//! open verify that consecutive segments of one family are
//! non-overlapping ascending ranges.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::wal::{crc32, put_f64, put_i64, put_u32, put_u64, Cursor};
use crate::{
    BatchInstanceRecord, BatchTaskRecord, JobId, MachineEvent, MachineEventRecord, MachineId,
    MachineInfo, Metric, ServerUsageRecord, TaskId, TaskStatus, TimeSeries, Timestamp,
    TraceDataset, TraceDatasetBuilder, TraceError, Utilization, UtilizationTriple,
};

/// Failpoint site evaluated before every segment-file write
/// (`batchlens_fault` grammar: `store.write=short_write:40@nth:2`, …).
pub const FAILPOINT_WRITE: &str = "store.write";

/// Failpoint site evaluated before every segment map/open.
pub const FAILPOINT_MMAP: &str = "store.mmap";

const HEADER_LEN: usize = 24;
const MAGIC: u32 = u32::from_le_bytes(*b"BLS1");
const TAIL_MAGIC: u32 = u32::from_le_bytes(*b"BLSE");
/// Fixed footer bytes past the per-column entries: min/max keys,
/// header crc, footer len, tail magic, footer crc.
const FOOTER_FIXED: usize = 16 + 4 + 4 + 4 + 4;
const COL_ENTRY: usize = 8 + 8 + 4;

/// Hard ceiling on rows per segment, guarding decode allocations against a
/// corrupted-but-plausible header the same way
/// [`crate::wal`]'s `MAX_PAYLOAD_BYTES` guards frame lengths.
pub const MAX_SEGMENT_ROWS: usize = 1 << 24;

/// The record families a segment can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// `batch_task` rows, sorted by `(job, task)`.
    BatchTask,
    /// `batch_instance` rows, sorted by `(job, task, seq)`.
    BatchInstance,
    /// `server_usage` rows, sorted by `(machine, time)` — machine-major,
    /// so one machine's samples are a contiguous column slice.
    ServerUsage,
    /// `machine_events` rows, sorted by `(time, machine)`.
    MachineEvents,
    /// Machine capacity declarations, sorted by machine id.
    Machines,
}

/// Cell width of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// 8-byte little-endian signed integer.
    I64,
    /// 4-byte little-endian unsigned integer.
    U32,
    /// 8-byte little-endian IEEE-754 double (bit-exact round trip).
    F64,
}

impl ColKind {
    /// Bytes per cell.
    pub const fn width(self) -> usize {
        match self {
            ColKind::I64 | ColKind::F64 => 8,
            ColKind::U32 => 4,
        }
    }
}

/// Schema entry: one named fixed-width column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name (diagnostics only; the layout is positional).
    pub name: &'static str,
    /// Cell width/kind.
    pub kind: ColKind,
}

const fn col(name: &'static str, kind: ColKind) -> ColumnSpec {
    ColumnSpec { name, kind }
}

const TASK_COLS: &[ColumnSpec] = &[
    col("create_time", ColKind::I64),
    col("modify_time", ColKind::I64),
    col("job", ColKind::U32),
    col("task", ColKind::U32),
    col("instance_count", ColKind::U32),
    col("status", ColKind::U32),
    col("plan_cpu", ColKind::F64),
    col("plan_mem", ColKind::F64),
];

const INSTANCE_COLS: &[ColumnSpec] = &[
    col("start_time", ColKind::I64),
    col("end_time", ColKind::I64),
    col("job", ColKind::U32),
    col("task", ColKind::U32),
    col("seq", ColKind::U32),
    col("total", ColKind::U32),
    col("machine", ColKind::U32),
    col("status", ColKind::U32),
    col("cpu_avg", ColKind::F64),
    col("cpu_max", ColKind::F64),
    col("mem_avg", ColKind::F64),
    col("mem_max", ColKind::F64),
];

const USAGE_COLS: &[ColumnSpec] = &[
    col("time", ColKind::I64),
    col("machine", ColKind::U32),
    col("cpu", ColKind::F64),
    col("mem", ColKind::F64),
    col("disk", ColKind::F64),
];

const EVENT_COLS: &[ColumnSpec] = &[
    col("time", ColKind::I64),
    col("machine", ColKind::U32),
    col("event", ColKind::U32),
    col("capacity_cpu", ColKind::F64),
    col("capacity_mem", ColKind::F64),
    col("capacity_disk", ColKind::F64),
];

const MACHINE_COLS: &[ColumnSpec] = &[
    col("machine", ColKind::U32),
    col("capacity_cpu", ColKind::F64),
    col("capacity_mem", ColKind::F64),
    col("capacity_disk", ColKind::F64),
];

impl Family {
    /// The family's on-disk tag.
    const fn tag(self) -> u32 {
        match self {
            Family::BatchTask => 1,
            Family::BatchInstance => 2,
            Family::ServerUsage => 3,
            Family::MachineEvents => 4,
            Family::Machines => 5,
        }
    }

    fn from_tag(tag: u32) -> Option<Family> {
        Some(match tag {
            1 => Family::BatchTask,
            2 => Family::BatchInstance,
            3 => Family::ServerUsage,
            4 => Family::MachineEvents,
            5 => Family::Machines,
            _ => return None,
        })
    }

    /// The family's table name, used as the segment file prefix.
    pub const fn table(self) -> &'static str {
        match self {
            Family::BatchTask => "batch_task",
            Family::BatchInstance => "batch_instance",
            Family::ServerUsage => "server_usage",
            Family::MachineEvents => "machine_events",
            Family::Machines => "machines",
        }
    }

    fn from_table(table: &str) -> Option<Family> {
        Some(match table {
            "batch_task" => Family::BatchTask,
            "batch_instance" => Family::BatchInstance,
            "server_usage" => Family::ServerUsage,
            "machine_events" => Family::MachineEvents,
            "machines" => Family::Machines,
            _ => return None,
        })
    }

    /// The family's column schema, in on-disk order.
    pub const fn columns(self) -> &'static [ColumnSpec] {
        match self {
            Family::BatchTask => TASK_COLS,
            Family::BatchInstance => INSTANCE_COLS,
            Family::ServerUsage => USAGE_COLS,
            Family::MachineEvents => EVENT_COLS,
            Family::Machines => MACHINE_COLS,
        }
    }

    fn row_width(self) -> usize {
        let mut w = 0;
        let cols = self.columns();
        let mut i = 0;
        while i < cols.len() {
            w += cols[i].kind.width();
            i += 1;
        }
        w
    }

    /// What `min_key`/`max_key` summarize for this family: batch families
    /// pack `(job << 32) | task`, machine events use the timestamp in
    /// seconds, and the machine-major families (`server_usage` and the
    /// machine table) use the machine id. Rows within a segment ascend by
    /// the full family sort key, of which this i64 is a (possibly
    /// coarsened) prefix.
    pub fn key_of_row(self) -> &'static str {
        match self {
            Family::BatchTask | Family::BatchInstance => "(job << 32) | task",
            Family::MachineEvents => "time (seconds)",
            Family::ServerUsage | Family::Machines => "machine id",
        }
    }
}

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> TraceError {
    TraceError::Io {
        op,
        path: path.display().to_string(),
        message: source.to_string(),
    }
}

fn corrupt(path: &Path, offset: u64, len: u64, message: impl Into<String>) -> TraceError {
    TraceError::CorruptSegment {
        segment: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        offset,
        len,
        message: message.into(),
    }
}

fn status_code(s: TaskStatus) -> u32 {
    match s {
        TaskStatus::Waiting => 0,
        TaskStatus::Running => 1,
        TaskStatus::Terminated => 2,
        TaskStatus::Failed => 3,
        TaskStatus::Cancelled => 4,
    }
}

fn status_from_code(code: u32) -> Option<TaskStatus> {
    Some(match code {
        0 => TaskStatus::Waiting,
        1 => TaskStatus::Running,
        2 => TaskStatus::Terminated,
        3 => TaskStatus::Failed,
        4 => TaskStatus::Cancelled,
        _ => return None,
    })
}

fn event_code(e: MachineEvent) -> u32 {
    match e {
        MachineEvent::Add => 0,
        MachineEvent::SoftError => 1,
        MachineEvent::HardError => 2,
        MachineEvent::Remove => 3,
    }
}

fn event_from_code(code: u32) -> Option<MachineEvent> {
    Some(match code {
        0 => MachineEvent::Add,
        1 => MachineEvent::SoftError,
        2 => MachineEvent::HardError,
        3 => MachineEvent::Remove,
        _ => return None,
    })
}

fn job_task_key(job: JobId, task: TaskId) -> i64 {
    ((u32::from(job) as i64) << 32) | u32::from(task) as i64
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Tuning for [`SegmentWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum rows per segment file; a family with more rows splits into
    /// consecutive non-overlapping sorted segments (which is what lets
    /// [`TraceDataset::open`] decode one exec-pool task per segment).
    pub segment_rows: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_rows: 65_536,
        }
    }
}

/// What a store write produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreReport {
    /// Rows written per family: tasks, instances, usage, events, machines.
    pub rows: [usize; 5],
    /// Total segment files written.
    pub segments: usize,
}

/// Writes sorted columnar segments into a directory — the durable half of
/// the trace store.
///
/// # Durability contract
///
/// A segment is **sealed** once `write_*` returns: its bytes are flushed
/// and fsynced, every region is checksummed as described in the
/// [module docs](self), and the file is never modified again. Writers
/// never overwrite an existing segment of the same family/index — reusing
/// a directory for a different dataset requires clearing it first. A crash
/// mid-write leaves a torn tail that [`SegmentReader::open`] rejects with
/// a typed [`TraceError::CorruptSegment`]; earlier sealed segments remain
/// readable.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    cfg: StoreConfig,
    segments_written: usize,
}

impl SegmentWriter {
    /// Creates `dir` (if needed) and a writer with the default config.
    pub fn create(dir: &Path) -> Result<SegmentWriter, TraceError> {
        SegmentWriter::with_config(dir, StoreConfig::default())
    }

    /// Creates `dir` (if needed) and a writer with an explicit config.
    pub fn with_config(dir: &Path, cfg: StoreConfig) -> Result<SegmentWriter, TraceError> {
        if cfg.segment_rows == 0 || cfg.segment_rows > MAX_SEGMENT_ROWS {
            return Err(TraceError::InvalidResolution {
                seconds: cfg.segment_rows as i64,
            });
        }
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            cfg,
            segments_written: 0,
        })
    }

    /// Segment files written so far.
    pub fn segments_written(&self) -> usize {
        self.segments_written
    }

    /// Writes the `batch_task` family (sorted by `(job, task)`); returns
    /// the number of segments written.
    pub fn write_tasks(&mut self, rows: &[BatchTaskRecord]) -> Result<usize, TraceError> {
        let mut sorted = rows.to_vec();
        sorted.sort_by_key(|r| (r.job, r.task));
        self.write_family(
            Family::BatchTask,
            &sorted,
            |r| job_task_key(r.job, r.task),
            {
                |out: &mut Vec<u8>, rows: &[BatchTaskRecord], c: usize| {
                    for r in rows {
                        match c {
                            0 => put_i64(out, r.create_time.seconds()),
                            1 => put_i64(out, r.modify_time.seconds()),
                            2 => put_u32(out, u32::from(r.job)),
                            3 => put_u32(out, u32::from(r.task)),
                            4 => put_u32(out, r.instance_count),
                            5 => put_u32(out, status_code(r.status)),
                            6 => put_f64(out, r.plan_cpu),
                            _ => put_f64(out, r.plan_mem),
                        }
                    }
                }
            },
        )
    }

    /// Writes the `batch_instance` family (sorted by `(job, task, seq)`).
    pub fn write_instances(&mut self, rows: &[BatchInstanceRecord]) -> Result<usize, TraceError> {
        let mut sorted = rows.to_vec();
        sorted.sort_by_key(|r| (r.job, r.task, r.seq));
        self.write_family(
            Family::BatchInstance,
            &sorted,
            |r| job_task_key(r.job, r.task),
            |out: &mut Vec<u8>, rows: &[BatchInstanceRecord], c: usize| {
                for r in rows {
                    match c {
                        0 => put_i64(out, r.start_time.seconds()),
                        1 => put_i64(out, r.end_time.seconds()),
                        2 => put_u32(out, u32::from(r.job)),
                        3 => put_u32(out, u32::from(r.task)),
                        4 => put_u32(out, r.seq),
                        5 => put_u32(out, r.total),
                        6 => put_u32(out, u32::from(r.machine)),
                        7 => put_u32(out, status_code(r.status)),
                        8 => put_f64(out, r.cpu_avg),
                        9 => put_f64(out, r.cpu_max),
                        10 => put_f64(out, r.mem_avg),
                        _ => put_f64(out, r.mem_max),
                    }
                }
            },
        )
    }

    /// Writes the `server_usage` family (sorted by `(machine, time)`,
    /// keyed by machine). Machine-major order means the merged stream at
    /// open time is already grouped per machine — the series build slices
    /// it linearly instead of re-bucketing a time-major stream row by row.
    /// Utilization fractions round-trip bit-exactly (stored as raw f64).
    pub fn write_usage(&mut self, rows: &[ServerUsageRecord]) -> Result<usize, TraceError> {
        let mut sorted = rows.to_vec();
        sorted.sort_by_key(|r| (r.machine, r.time));
        self.write_family(
            Family::ServerUsage,
            &sorted,
            |r| i64::from(u32::from(r.machine)),
            |out: &mut Vec<u8>, rows: &[ServerUsageRecord], c: usize| {
                for r in rows {
                    match c {
                        0 => put_i64(out, r.time.seconds()),
                        1 => put_u32(out, u32::from(r.machine)),
                        2 => put_f64(out, r.util.cpu.fraction()),
                        3 => put_f64(out, r.util.mem.fraction()),
                        _ => put_f64(out, r.util.disk.fraction()),
                    }
                }
            },
        )
    }

    /// Writes the `machine_events` family (sorted by `(time, machine)`).
    pub fn write_events(&mut self, rows: &[MachineEventRecord]) -> Result<usize, TraceError> {
        let mut sorted = rows.to_vec();
        sorted.sort_by_key(|r| (r.time, r.machine));
        self.write_family(
            Family::MachineEvents,
            &sorted,
            |r| r.time.seconds(),
            |out: &mut Vec<u8>, rows: &[MachineEventRecord], c: usize| {
                for r in rows {
                    match c {
                        0 => put_i64(out, r.time.seconds()),
                        1 => put_u32(out, u32::from(r.machine)),
                        2 => put_u32(out, event_code(r.event)),
                        3 => put_f64(out, r.capacity_cpu),
                        4 => put_f64(out, r.capacity_mem),
                        _ => put_f64(out, r.capacity_disk),
                    }
                }
            },
        )
    }

    /// Writes the machine capacity table (sorted by machine id).
    pub fn write_machines(
        &mut self,
        rows: &[(MachineId, MachineInfo)],
    ) -> Result<usize, TraceError> {
        let mut sorted = rows.to_vec();
        sorted.sort_by_key(|r| r.0);
        self.write_family(
            Family::Machines,
            &sorted,
            |r| i64::from(u32::from(r.0)),
            |out: &mut Vec<u8>, rows: &[(MachineId, MachineInfo)], c: usize| {
                for (m, info) in rows {
                    match c {
                        0 => put_u32(out, u32::from(*m)),
                        1 => put_f64(out, info.capacity_cpu),
                        2 => put_f64(out, info.capacity_mem),
                        _ => put_f64(out, info.capacity_disk),
                    }
                }
            },
        )
    }

    fn write_family<T>(
        &mut self,
        family: Family,
        sorted: &[T],
        key: impl Fn(&T) -> i64,
        encode_col: impl Fn(&mut Vec<u8>, &[T], usize),
    ) -> Result<usize, TraceError> {
        let mut written = 0;
        for (idx, chunk) in sorted.chunks(self.cfg.segment_rows).enumerate() {
            let path = self.dir.join(format!("{}-{idx:05}.seg", family.table()));
            let min_key = key(&chunk[0]);
            let max_key = key(&chunk[chunk.len() - 1]);
            let bytes = encode_segment(family, chunk, min_key, max_key, &encode_col);
            write_segment_file(&path, &bytes)?;
            written += 1;
        }
        self.segments_written += written;
        Ok(written)
    }
}

fn encode_segment<T>(
    family: Family,
    rows: &[T],
    min_key: i64,
    max_key: i64,
    encode_col: &impl Fn(&mut Vec<u8>, &[T], usize),
) -> Vec<u8> {
    let cols = family.columns();
    let mut out = Vec::with_capacity(HEADER_LEN + rows.len() * family.row_width());
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, family.tag());
    put_u64(&mut out, rows.len() as u64);
    put_u32(&mut out, cols.len() as u32);
    put_u32(&mut out, 0);
    debug_assert_eq!(out.len(), HEADER_LEN);
    let header_crc = crc32(&out);

    let mut entries: Vec<(u64, u64, u32)> = Vec::with_capacity(cols.len());
    for (c, col) in cols.iter().enumerate() {
        let start = out.len();
        encode_col(&mut out, rows, c);
        let len = out.len() - start;
        debug_assert_eq!(len, rows.len() * col.kind.width());
        entries.push((start as u64, len as u64, crc32(&out[start..])));
    }

    let footer_start = out.len();
    for (off, len, crc) in entries {
        put_u64(&mut out, off);
        put_u64(&mut out, len);
        put_u32(&mut out, crc);
    }
    put_i64(&mut out, min_key);
    put_i64(&mut out, max_key);
    put_u32(&mut out, header_crc);
    let footer_len = (out.len() - footer_start) + 4 + 4 + 4;
    put_u32(&mut out, footer_len as u32);
    put_u32(&mut out, TAIL_MAGIC);
    let footer_crc = crc32(&out[footer_start..]);
    put_u32(&mut out, footer_crc);
    out
}

/// Writes (and fsyncs) one sealed segment, honoring the
/// [`FAILPOINT_WRITE`] site: an injected `ShortWrite(n)` persists exactly
/// the first `n` bytes — a torn segment on disk — before erroring, exactly
/// like the WAL's append seam.
fn write_segment_file(path: &Path, bytes: &[u8]) -> Result<(), TraceError> {
    let mut file = fs::File::create(path).map_err(|e| io_err("create", path, e))?;
    match batchlens_fault::fire(FAILPOINT_WRITE) {
        None => {}
        Some(batchlens_fault::Fault::ShortWrite(n)) => {
            let n = n.min(bytes.len());
            file.write_all(&bytes[..n])
                .and_then(|_| file.sync_data())
                .map_err(|e| io_err("write", path, e))?;
            return Err(io_err(
                "write",
                path,
                batchlens_fault::injected_io_error(FAILPOINT_WRITE),
            ));
        }
        Some(_) => {
            return Err(io_err(
                "write",
                path,
                batchlens_fault::injected_io_error(FAILPOINT_WRITE),
            ));
        }
    }
    file.write_all(bytes)
        .and_then(|_| file.sync_data())
        .map_err(|e| io_err("write", path, e))
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A zero-copy view of one column's cells inside a mapped segment.
#[derive(Debug, Clone, Copy)]
pub struct ColumnScan<'a> {
    bytes: &'a [u8],
    kind: ColKind,
}

impl<'a> ColumnScan<'a> {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.bytes.len() / self.kind.width()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The cell kind.
    pub fn kind(&self) -> ColKind {
        self.kind
    }

    /// Cell `i` as i64 (must be an [`ColKind::I64`] column).
    pub fn i64_at(&self, i: usize) -> i64 {
        debug_assert_eq!(self.kind, ColKind::I64);
        let off = i * 8;
        i64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Cell `i` as u32 (must be a [`ColKind::U32`] column).
    pub fn u32_at(&self, i: usize) -> u32 {
        debug_assert_eq!(self.kind, ColKind::U32);
        let off = i * 4;
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Cell `i` as f64 (must be an [`ColKind::F64`] column).
    pub fn f64_at(&self, i: usize) -> f64 {
        debug_assert_eq!(self.kind, ColKind::F64);
        let off = i * 8;
        f64::from_bits(u64::from_le_bytes(
            self.bytes[off..off + 8].try_into().unwrap(),
        ))
    }

    /// Sum of an f64 column, accumulated in cell order — the column-scan
    /// kernel the `segment_scan_*` bench rows time against an in-RAM
    /// record-slice walk.
    pub fn sum_f64(&self) -> f64 {
        debug_assert_eq!(self.kind, ColKind::F64);
        let mut acc = 0.0;
        for chunk in self.bytes.chunks_exact(8) {
            acc += f64::from_bits(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        acc
    }
}

/// A sealed, validated, memory-mapped segment.
///
/// # Durability contract
///
/// `open` returns only after the tail magic, the footer CRC, the header
/// CRC and **every column CRC** have verified against the mapped bytes, so
/// a reader in hand is proof the segment is exactly what its writer
/// sealed. All scans after that are zero-copy reads of the mapped region;
/// the file must not be truncated while the reader lives (BatchLens
/// segments are immutable once sealed).
#[derive(Debug)]
pub struct SegmentReader {
    name: String,
    family: Family,
    rows: usize,
    min_key: i64,
    max_key: i64,
    cols: Vec<(usize, usize)>,
    map: memmap2::Mmap,
}

impl SegmentReader {
    /// Maps and validates the segment at `path` (mmap-backed where the
    /// platform allows, buffered otherwise).
    pub fn open(path: &Path) -> Result<SegmentReader, TraceError> {
        if batchlens_fault::fire(FAILPOINT_MMAP).is_some() {
            return Err(io_err(
                "map",
                path,
                batchlens_fault::injected_io_error(FAILPOINT_MMAP),
            ));
        }
        let map = memmap2::Mmap::open(path).map_err(|e| io_err("map", path, e))?;
        SegmentReader::from_map(path, map)
    }

    /// Opens the segment through the portable buffered backend
    /// unconditionally — the eager twin of the lazy [`SegmentReader::open`],
    /// used by the differential suite to prove the two backends are
    /// observationally identical.
    pub fn open_buffered(path: &Path) -> Result<SegmentReader, TraceError> {
        if batchlens_fault::fire(FAILPOINT_MMAP).is_some() {
            return Err(io_err(
                "map",
                path,
                batchlens_fault::injected_io_error(FAILPOINT_MMAP),
            ));
        }
        let map = memmap2::Mmap::open_buffered(path).map_err(|e| io_err("read", path, e))?;
        SegmentReader::from_map(path, map)
    }

    fn from_map(path: &Path, map: memmap2::Mmap) -> Result<SegmentReader, TraceError> {
        let data: &[u8] = &map;
        let len = data.len();
        if len < HEADER_LEN + FOOTER_FIXED {
            return Err(corrupt(path, 0, len as u64, "file too short for a segment"));
        }
        // Tail: footer_len | tail magic | footer crc.
        let tail = &data[len - 12..];
        let footer_len = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as usize;
        let tail_magic = u32::from_le_bytes(tail[4..8].try_into().unwrap());
        let footer_crc = u32::from_le_bytes(tail[8..12].try_into().unwrap());
        if tail_magic != TAIL_MAGIC {
            return Err(corrupt(path, (len - 8) as u64, 4, "bad tail magic"));
        }
        if footer_len < FOOTER_FIXED || footer_len > len - HEADER_LEN {
            return Err(corrupt(
                path,
                (len - 12) as u64,
                12,
                "footer length out of bounds",
            ));
        }
        let footer_start = len - footer_len;
        // The footer CRC covers everything from footer start up to (not
        // including) the trailing crc itself — so footer_len and the tail
        // magic are covered too.
        if crc32(&data[footer_start..len - 4]) != footer_crc {
            return Err(corrupt(
                path,
                footer_start as u64,
                footer_len as u64,
                "footer checksum mismatch",
            ));
        }
        // The header CRC lives in the (now trusted) footer.
        let header_crc = u32::from_le_bytes(data[len - 16..len - 12].try_into().unwrap());
        if crc32(&data[..HEADER_LEN]) != header_crc {
            return Err(corrupt(
                path,
                0,
                HEADER_LEN as u64,
                "header checksum mismatch",
            ));
        }

        let mut h = Cursor::new(&data[..HEADER_LEN]);
        let magic = h.u32().unwrap_or(0);
        let tag = h.u32().unwrap_or(0);
        let rows = h.u64().unwrap_or(0);
        let ncols = h.u32().unwrap_or(0);
        if magic != MAGIC {
            return Err(corrupt(path, 0, 4, "bad segment magic"));
        }
        let family = Family::from_tag(tag)
            .ok_or_else(|| corrupt(path, 4, 4, format!("unknown family tag {tag}")))?;
        let cols = family.columns();
        if ncols as usize != cols.len() {
            return Err(corrupt(
                path,
                16,
                4,
                format!("expected {} columns, header says {ncols}", cols.len()),
            ));
        }
        if rows > MAX_SEGMENT_ROWS as u64 {
            return Err(corrupt(path, 8, 8, format!("row count {rows} over limit")));
        }
        let rows = rows as usize;
        if footer_len != cols.len() * COL_ENTRY + FOOTER_FIXED {
            return Err(corrupt(
                path,
                (len - 12) as u64,
                12,
                "footer length disagrees with column count",
            ));
        }
        if HEADER_LEN + rows * family.row_width() != footer_start {
            return Err(corrupt(path, 8, 8, "row count disagrees with file length"));
        }

        let mut f = Cursor::new(&data[footer_start..len - 4]);
        let mut col_ranges = Vec::with_capacity(cols.len());
        let mut expected_off = HEADER_LEN;
        for (c, spec) in cols.iter().enumerate() {
            let off = f.u64().unwrap_or(0) as usize;
            let clen = f.u64().unwrap_or(0) as usize;
            let crc = f.u32().unwrap_or(0);
            if off != expected_off || clen != rows * spec.kind.width() {
                return Err(corrupt(
                    path,
                    (footer_start + c * COL_ENTRY) as u64,
                    COL_ENTRY as u64,
                    format!("column {} ({}) layout mismatch", c, spec.name),
                ));
            }
            if crc32(&data[off..off + clen]) != crc {
                return Err(corrupt(
                    path,
                    off as u64,
                    clen as u64,
                    format!("column {} ({}) checksum mismatch", c, spec.name),
                ));
            }
            col_ranges.push((off, clen));
            expected_off += clen;
        }
        let min_key = f.i64().unwrap_or(0);
        let max_key = f.i64().unwrap_or(0);

        Ok(SegmentReader {
            name: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            family,
            rows,
            min_key,
            max_key,
            cols: col_ranges,
            map,
        })
    }

    /// The segment's record family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The segment's file name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows in this segment.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Smallest family key in the segment (see [`Family::key_of_row`]).
    pub fn min_key(&self) -> i64 {
        self.min_key
    }

    /// Largest family key in the segment.
    pub fn max_key(&self) -> i64 {
        self.max_key
    }

    /// Whether the bytes are an actual memory map (false = buffered
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Zero-copy scan of column `idx` (panics on an out-of-range index —
    /// the schema is static per family, so that is a caller bug, not a
    /// data condition).
    pub fn column(&self, idx: usize) -> ColumnScan<'_> {
        let (off, len) = self.cols[idx];
        ColumnScan {
            bytes: &self.map[off..off + len],
            kind: self.family.columns()[idx].kind,
        }
    }

    fn expect_family(&self, family: Family) -> Result<(), TraceError> {
        if self.family == family {
            Ok(())
        } else {
            Err(TraceError::NotFound {
                entity: format!(
                    "{} rows in segment {} (family {})",
                    family.table(),
                    self.name,
                    self.family.table()
                ),
            })
        }
    }

    fn decode_err(&self, col: usize, row: usize, what: &str) -> TraceError {
        let (off, _) = self.cols[col];
        let w = self.family.columns()[col].kind.width();
        TraceError::CorruptSegment {
            segment: self.name.clone(),
            offset: (off + row * w) as u64,
            len: w as u64,
            message: format!("undecodable {what}"),
        }
    }

    /// Decodes every row of a `batch_task` segment, in stored (sorted)
    /// order.
    pub fn tasks(&self) -> Result<Vec<BatchTaskRecord>, TraceError> {
        self.expect_family(Family::BatchTask)?;
        let (create, modify) = (self.column(0), self.column(1));
        let (job, task) = (self.column(2), self.column(3));
        let (count, status) = (self.column(4), self.column(5));
        let (cpu, mem) = (self.column(6), self.column(7));
        (0..self.rows)
            .map(|i| {
                Ok(BatchTaskRecord {
                    create_time: Timestamp::new(create.i64_at(i)),
                    modify_time: Timestamp::new(modify.i64_at(i)),
                    job: JobId::new(job.u32_at(i)),
                    task: TaskId::new(task.u32_at(i)),
                    instance_count: count.u32_at(i),
                    status: status_from_code(status.u32_at(i))
                        .ok_or_else(|| self.decode_err(5, i, "task status"))?,
                    plan_cpu: cpu.f64_at(i),
                    plan_mem: mem.f64_at(i),
                })
            })
            .collect()
    }

    /// Decodes every row of a `batch_instance` segment, in stored order.
    pub fn instances(&self) -> Result<Vec<BatchInstanceRecord>, TraceError> {
        self.expect_family(Family::BatchInstance)?;
        let (start, end) = (self.column(0), self.column(1));
        let (job, task, seq) = (self.column(2), self.column(3), self.column(4));
        let (total, machine, status) = (self.column(5), self.column(6), self.column(7));
        let (ca, cm) = (self.column(8), self.column(9));
        let (ma, mm) = (self.column(10), self.column(11));
        (0..self.rows)
            .map(|i| {
                Ok(BatchInstanceRecord {
                    start_time: Timestamp::new(start.i64_at(i)),
                    end_time: Timestamp::new(end.i64_at(i)),
                    job: JobId::new(job.u32_at(i)),
                    task: TaskId::new(task.u32_at(i)),
                    seq: seq.u32_at(i),
                    total: total.u32_at(i),
                    machine: MachineId::new(machine.u32_at(i)),
                    status: status_from_code(status.u32_at(i))
                        .ok_or_else(|| self.decode_err(7, i, "instance status"))?,
                    cpu_avg: ca.f64_at(i),
                    cpu_max: cm.f64_at(i),
                    mem_avg: ma.f64_at(i),
                    mem_max: mm.f64_at(i),
                })
            })
            .collect()
    }

    /// Decodes every row of a `server_usage` segment, in stored order.
    pub fn usage(&self) -> Result<Vec<ServerUsageRecord>, TraceError> {
        self.expect_family(Family::ServerUsage)?;
        let (time, machine) = (self.column(0), self.column(1));
        let (cpu, mem, disk) = (self.column(2), self.column(3), self.column(4));
        Ok((0..self.rows)
            .map(|i| ServerUsageRecord {
                time: Timestamp::new(time.i64_at(i)),
                machine: MachineId::new(machine.u32_at(i)),
                util: UtilizationTriple::clamped(cpu.f64_at(i), mem.f64_at(i), disk.f64_at(i)),
            })
            .collect())
    }

    /// Decodes every row of a `machine_events` segment, in stored order.
    pub fn events(&self) -> Result<Vec<MachineEventRecord>, TraceError> {
        self.expect_family(Family::MachineEvents)?;
        let (time, machine, event) = (self.column(0), self.column(1), self.column(2));
        let (cc, cm, cd) = (self.column(3), self.column(4), self.column(5));
        (0..self.rows)
            .map(|i| {
                Ok(MachineEventRecord {
                    time: Timestamp::new(time.i64_at(i)),
                    machine: MachineId::new(machine.u32_at(i)),
                    event: event_from_code(event.u32_at(i))
                        .ok_or_else(|| self.decode_err(2, i, "machine event"))?,
                    capacity_cpu: cc.f64_at(i),
                    capacity_mem: cm.f64_at(i),
                    capacity_disk: cd.f64_at(i),
                })
            })
            .collect()
    }

    /// Decodes every row of a machine-capacity segment, in stored order.
    pub fn machines(&self) -> Result<Vec<(MachineId, MachineInfo)>, TraceError> {
        self.expect_family(Family::Machines)?;
        let (machine, cc) = (self.column(0), self.column(1));
        let (cm, cd) = (self.column(2), self.column(3));
        Ok((0..self.rows)
            .map(|i| {
                (
                    MachineId::new(machine.u32_at(i)),
                    MachineInfo {
                        capacity_cpu: cc.f64_at(i),
                        capacity_mem: cm.f64_at(i),
                        capacity_disk: cd.f64_at(i),
                    },
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Directory-level store
// ---------------------------------------------------------------------------

/// Lists the segment files in `dir`, name-sorted — which is `(family,
/// chunk index)` order, since writers name segments
/// `{family}-{index:05}.seg`.
pub fn list_store_segments(dir: &Path) -> Result<Vec<PathBuf>, TraceError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "seg") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// An opened segment directory: every segment mapped (pages still lazy)
/// and validated, grouped by family in chunk order.
#[derive(Debug)]
pub struct SegmentStore {
    segments: Vec<SegmentReader>,
}

impl SegmentStore {
    /// Opens every segment in `dir` (mmap-backed).
    pub fn open(dir: &Path) -> Result<SegmentStore, TraceError> {
        SegmentStore::open_with(dir, SegmentReader::open)
    }

    /// Opens every segment in `dir` through the buffered fallback.
    pub fn open_buffered(dir: &Path) -> Result<SegmentStore, TraceError> {
        SegmentStore::open_with(dir, SegmentReader::open_buffered)
    }

    fn open_with(
        dir: &Path,
        open: impl Fn(&Path) -> Result<SegmentReader, TraceError>,
    ) -> Result<SegmentStore, TraceError> {
        let paths = list_store_segments(dir)?;
        let mut segments = Vec::with_capacity(paths.len());
        for path in &paths {
            let seg = open(path)?;
            let expected = Family::from_table(
                path.file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
                    .rsplit_once('-')
                    .map(|(table, _)| table.to_string())
                    .unwrap_or_default()
                    .as_str(),
            );
            if expected != Some(seg.family()) {
                return Err(corrupt(
                    path,
                    4,
                    4,
                    format!(
                        "file name family disagrees with header ({})",
                        seg.family().table()
                    ),
                ));
            }
            segments.push(seg);
        }
        // Consecutive segments of one family must be non-overlapping
        // ascending key ranges — the writer seals sorted chunks in order.
        for pair in segments.windows(2) {
            if pair[0].family() == pair[1].family() && pair[0].max_key() > pair[1].min_key() {
                return Err(TraceError::CorruptSegment {
                    segment: pair[1].name().to_string(),
                    offset: 0,
                    len: 0,
                    message: format!("key range overlaps previous segment {}", pair[0].name()),
                });
            }
        }
        Ok(SegmentStore { segments })
    }

    /// All segments, in `(family, chunk index)` order.
    pub fn segments(&self) -> &[SegmentReader] {
        &self.segments
    }

    /// The segments of one family, in chunk order.
    pub fn family_segments(&self, family: Family) -> impl Iterator<Item = &SegmentReader> + '_ {
        self.segments.iter().filter(move |s| s.family() == family)
    }

    /// Total rows across the segments of one family.
    pub fn family_rows(&self, family: Family) -> usize {
        self.family_segments(family)
            .map(SegmentReader::row_count)
            .sum()
    }
}

/// Reconstructs the flat `server_usage` rows from a dataset's per-machine
/// series (they share one sample grid per machine, so the zip is exact),
/// in `(machine, time)` order — the store's usage sort order.
fn dataset_usage_rows(ds: &TraceDataset) -> Vec<ServerUsageRecord> {
    let mut rows = Vec::new();
    for machine in ds.machines() {
        let (Some(cpu), Some(mem), Some(disk)) = (
            machine.usage(Metric::Cpu),
            machine.usage(Metric::Memory),
            machine.usage(Metric::Disk),
        ) else {
            continue;
        };
        for i in 0..cpu.len() {
            rows.push(ServerUsageRecord {
                time: cpu.times()[i],
                machine: machine.id(),
                util: UtilizationTriple::clamped(
                    cpu.values()[i],
                    mem.values()[i],
                    disk.values()[i],
                ),
            });
        }
    }
    // `ds.machines()` iterates in id order and each series is
    // time-ascending, so the rows already come out machine-major sorted.
    debug_assert!(rows
        .windows(2)
        .all(|w| (w[0].machine, w[0].time) <= (w[1].machine, w[1].time)));
    rows
}

/// Dumps a built dataset into `dir` as columnar segments — the
/// segment-backed payload `batchlens::durability` adds next to the
/// canonical CSVs. Re-opening via [`TraceDataset::open`] rebuilds the
/// dataset **bit-identically** (the store round-trips every f64 raw).
pub fn dump_dataset(dir: &Path, ds: &TraceDataset) -> Result<StoreReport, TraceError> {
    dump_dataset_with(dir, ds, StoreConfig::default())
}

/// [`dump_dataset`] with an explicit segment size.
pub fn dump_dataset_with(
    dir: &Path,
    ds: &TraceDataset,
    cfg: StoreConfig,
) -> Result<StoreReport, TraceError> {
    let mut w = SegmentWriter::with_config(dir, cfg)?;
    let tasks: Vec<BatchTaskRecord> = ds.task_records().copied().collect();
    let usage = dataset_usage_rows(ds);
    let machines: Vec<(MachineId, MachineInfo)> =
        ds.machines().map(|m| (m.id(), m.info())).collect();
    w.write_tasks(&tasks)?;
    w.write_instances(ds.instance_records())?;
    w.write_usage(&usage)?;
    w.write_events(ds.machine_events())?;
    w.write_machines(&machines)?;
    Ok(StoreReport {
        rows: [
            tasks.len(),
            ds.instance_records().len(),
            usage.len(),
            ds.machine_events().len(),
            machines.len(),
        ],
        segments: w.segments_written(),
    })
}

/// Merges per-segment runs of one family into a single table, returning
/// whether the result is globally sorted by `key`.
///
/// The writer seals consecutive non-overlapping sorted chunks, so for any
/// store it wrote, plain concatenation in segment order *is* the fully
/// sorted table — one linear verification pass replaces a heap operation
/// per row. A store whose bytes checksum clean but whose rows are out of
/// order (hand-built or tampered) falls back to the stable k-way merge;
/// if even that leaves the table unsorted (a run was unsorted internally),
/// the `false` flag routes the open through the general re-sorting
/// builder instead of the trusted fast path.
fn merge_family_runs<T: Copy, K: Ord + Copy>(
    runs: Vec<Vec<T>>,
    key: impl Fn(&T) -> K,
) -> (Vec<T>, bool) {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out: Vec<T> = Vec::with_capacity(total);
    for run in &runs {
        out.extend_from_slice(run);
    }
    if out.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
        return (out, true);
    }
    let merged = kway_merge(runs, &key);
    let sorted = merged.windows(2).all(|w| key(&w[0]) <= key(&w[1]));
    (merged, sorted)
}

/// K-way merge of per-segment sorted runs by a total key, tie-broken by
/// run index — the same stable merge shape as the builder's parallel
/// chunk-sort, so the merged order is exactly what one big sort produces.
fn kway_merge<T: Copy, K: Ord + Copy>(runs: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Reverse((key(&r[0]), i)))
        .collect();
    let mut cursor = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        let rec = runs[i][cursor[i]];
        out.push(rec);
        cursor[i] += 1;
        if cursor[i] < runs[i].len() {
            heap.push(Reverse((key(&runs[i][cursor[i]]), i)));
        }
    }
    out
}

/// The decoded rows of one non-usage segment, tagged by family — the unit
/// of parallel decode in [`TraceDataset::open`]. Usage has no variant:
/// its series build straight from the mapped columns on the fast path
/// (see [`usage_series_from_columns`]), and the fallback decodes records
/// through [`SegmentReader::usage`] directly.
enum DecodedSegment {
    Tasks(Vec<BatchTaskRecord>),
    Instances(Vec<BatchInstanceRecord>),
    Events(Vec<MachineEventRecord>),
    Machines(Vec<(MachineId, MachineInfo)>),
}

fn decode_segment(seg: &SegmentReader) -> Result<DecodedSegment, TraceError> {
    Ok(match seg.family() {
        Family::BatchTask => DecodedSegment::Tasks(seg.tasks()?),
        Family::BatchInstance => DecodedSegment::Instances(seg.instances()?),
        Family::ServerUsage => unreachable!("usage segments are filtered before decode fan-out"),
        Family::MachineEvents => DecodedSegment::Events(seg.events()?),
        Family::Machines => DecodedSegment::Machines(seg.machines()?),
    })
}

/// Builds the per-machine `[cpu, mem, disk]` series straight from the
/// mapped usage columns — no `ServerUsageRecord` ever materializes. The
/// machine-major sort makes each machine's samples a contiguous slice of
/// every column (possibly spanning consecutive segments), so the series
/// are three clamped column copies sharing one verified time grid.
///
/// Returns `None` when the columns are not in store order (machine
/// non-decreasing, time strictly ascending per machine) — a store our
/// writer did not seal. The caller then decodes records and takes the
/// general builder path, which re-sorts and reports duplicate timestamps
/// exactly as the in-RAM build would.
fn usage_series_from_columns(segs: &[&SegmentReader]) -> Option<Vec<(MachineId, [TimeSeries; 3])>> {
    // Machine runs in store order: (machine, segment index, row range).
    let mut runs: Vec<(u32, usize, usize, usize)> = Vec::new();
    let mut prev_machine: Option<u32> = None;
    for (s, seg) in segs.iter().enumerate() {
        let col = seg.column(1);
        let rows = seg.row_count();
        let mut lo = 0;
        while lo < rows {
            let m = col.u32_at(lo);
            let mut hi = lo + 1;
            while hi < rows && col.u32_at(hi) == m {
                hi += 1;
            }
            if prev_machine.is_some_and(|pm| m < pm) {
                return None;
            }
            runs.push((m, s, lo, hi));
            prev_machine = Some(m);
            lo = hi;
        }
    }

    let mut out: Vec<(MachineId, [TimeSeries; 3])> = Vec::new();
    let mut idx = 0;
    while idx < runs.len() {
        let machine = runs[idx].0;
        let mut end = idx + 1;
        while end < runs.len() && runs[end].0 == machine {
            end += 1;
        }
        let group = &runs[idx..end];
        let total: usize = group.iter().map(|&(_, _, lo, hi)| hi - lo).sum();

        let mut times: Vec<Timestamp> = Vec::with_capacity(total);
        let mut last: Option<i64> = None;
        for &(_, s, lo, hi) in group {
            let tcol = segs[s].column(0);
            for i in lo..hi {
                let t = tcol.i64_at(i);
                if last.is_some_and(|l| t <= l) {
                    return None;
                }
                last = Some(t);
                times.push(Timestamp::new(t));
            }
        }
        let metric = |c: usize| -> Vec<f64> {
            let mut vals: Vec<f64> = Vec::with_capacity(total);
            for &(_, s, lo, hi) in group {
                let col = segs[s].column(c);
                for i in lo..hi {
                    // The same per-component clamp the record decode +
                    // builder path applies (`UtilizationTriple::clamped`
                    // clamps each metric independently).
                    vals.push(Utilization::clamped(col.f64_at(i)).fraction());
                }
            }
            vals
        };
        let (cpu, mem, disk) = (metric(2), metric(3), metric(4));
        out.push((
            MachineId::new(machine),
            [
                TimeSeries::from_sorted_parts(times.clone(), cpu),
                TimeSeries::from_sorted_parts(times.clone(), mem),
                TimeSeries::from_sorted_parts(times, disk),
            ],
        ));
        idx = end;
    }
    Some(out)
}

fn build_from_store(store: &SegmentStore, threads: usize) -> Result<TraceDataset, TraceError> {
    let threads = batchlens_exec::resolve_threads(threads);
    // One decode task per non-usage segment on the exec pool; results come
    // back in segment order, so the per-family run lists are deterministic.
    // Usage — by far the largest family — is *not* decoded into records
    // here: the fast path below builds its series straight from the mapped
    // columns.
    let segs: Vec<&SegmentReader> = store
        .segments()
        .iter()
        .filter(|s| s.family() != Family::ServerUsage)
        .collect();
    let decoded = batchlens_exec::try_par_map(threads, &segs, |seg| decode_segment(seg))?;

    let mut task_runs = Vec::new();
    let mut instance_runs = Vec::new();
    let mut event_runs = Vec::new();
    let mut machines: Vec<(MachineId, MachineInfo)> = Vec::new();
    for part in decoded {
        match part {
            DecodedSegment::Tasks(r) => task_runs.push(r),
            DecodedSegment::Instances(r) => instance_runs.push(r),
            DecodedSegment::Events(r) => event_runs.push(r),
            DecodedSegment::Machines(mut r) => machines.append(&mut r),
        }
    }

    let (tasks, tasks_sorted) = merge_family_runs(task_runs, |r: &BatchTaskRecord| (r.job, r.task));
    let (instances, instances_sorted) =
        merge_family_runs(instance_runs, |r: &BatchInstanceRecord| {
            (r.job, r.task, r.seq)
        });
    let (events, events_sorted) =
        merge_family_runs(event_runs, |r: &MachineEventRecord| (r.time, r.machine));

    let usage_segs: Vec<&SegmentReader> = store.family_segments(Family::ServerUsage).collect();
    if tasks_sorted && instances_sorted && events_sorted {
        if let Some(usage) = usage_series_from_columns(&usage_segs) {
            // Every table verified in store order — take the trusted
            // path, which runs the builder's validations but none of its
            // sorts or row-at-a-time re-bucketing. Bit-identical to the
            // builder route below (the workspace differential suite pins
            // both to the original dataset).
            return TraceDataset::from_sorted_tables(
                crate::dataset::SortedTables {
                    tasks,
                    instances,
                    usage,
                    events,
                    machines,
                },
                threads,
            );
        }
    }

    // A table failed order verification (possible only for stores not
    // sealed by our writer): decode the usage records after all and
    // rebuild through the general sorting builder.
    let usage_runs: Vec<Vec<ServerUsageRecord>> = usage_segs
        .iter()
        .map(|seg| seg.usage())
        .collect::<Result<_, _>>()?;
    let (usage, _) = merge_family_runs(usage_runs, |r: &ServerUsageRecord| (r.machine, r.time));
    let mut builder = TraceDatasetBuilder::new();
    // The store persists what a *built* dataset physically holds; its
    // original hierarchy strictness already ran, so reopening accepts
    // datasets that were built with dangling instances allowed.
    builder.allow_dangling_instances();
    builder.par_threads(threads);
    for (id, info) in machines {
        builder.declare_machine(id, info);
    }
    builder.extend_tables(tasks, instances, usage, events);
    builder.build()
}

impl TraceDataset {
    /// Opens a dataset from a columnar segment directory written by
    /// [`dump_dataset`] / [`SegmentWriter`] — the second construction path
    /// next to the CSV parse, and the fast one: segments map lazily,
    /// checksums verify against the mapped bytes, the sorted per-family
    /// runs concatenate after a linear order check, machine-major usage
    /// columns build per-machine series without materializing records,
    /// and the pre-sorted tables skip the builder's re-sorts on the way
    /// into the sharded index build. The result is
    /// **bit-identical** to the in-RAM build from the same tables (the
    /// workspace `store_differential` suite enforces it across the full
    /// [`crate::DatasetQuery`] surface).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for OS-level failures,
    /// [`TraceError::CorruptSegment`] for torn or bit-flipped segments
    /// (never a panic), and the usual builder errors for semantically
    /// invalid tables.
    pub fn open(dir: &Path) -> Result<TraceDataset, TraceError> {
        TraceDataset::open_with_threads(dir, 0)
    }

    /// [`TraceDataset::open`] with an explicit worker-thread count (`0` =
    /// process default, `1` = serial). The dataset is bit-identical at
    /// every thread count.
    pub fn open_with_threads(dir: &Path, threads: usize) -> Result<TraceDataset, TraceError> {
        let store = SegmentStore::open(dir)?;
        build_from_store(&store, threads)
    }

    /// [`TraceDataset::open`] through the buffered (non-mmap) backend —
    /// the eager twin the differential suite compares against the lazy
    /// mapped open.
    pub fn open_buffered(dir: &Path) -> Result<TraceDataset, TraceError> {
        let store = SegmentStore::open_buffered(dir)?;
        build_from_store(&store, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetQuery;
    use batchlens_fault::{arm, Fault, FaultSpec, Trigger};

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "batchlens-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        for job in 1..=3u32 {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(900),
                job: JobId::new(job),
                task: TaskId::new(1),
                instance_count: 2,
                status: TaskStatus::Terminated,
                plan_cpu: 1.5,
                plan_mem: 0.25,
            });
            for seq in 0..2 {
                b.push_instance(BatchInstanceRecord {
                    start_time: Timestamp::new(60 * i64::from(job)),
                    end_time: Timestamp::new(600 + 60 * i64::from(seq)),
                    job: JobId::new(job),
                    task: TaskId::new(1),
                    seq,
                    total: 2,
                    machine: MachineId::new(seq + job),
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.5,
                    cpu_max: 0.75,
                    mem_avg: 0.25,
                    mem_max: 0.5,
                });
            }
        }
        for t in 0..5 {
            for m in 1..=4u32 {
                b.push_usage(ServerUsageRecord {
                    time: Timestamp::new(t * 300),
                    machine: MachineId::new(m),
                    util: UtilizationTriple::clamped(0.1 * f64::from(m), 0.05 * f64::from(m), 0.3),
                });
            }
        }
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(1),
            event: MachineEvent::Add,
            capacity_cpu: 64.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        });
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(700),
            machine: MachineId::new(2),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        b.build().unwrap()
    }

    #[test]
    fn dump_open_round_trips_bit_identically() {
        let dir = temp_dir("roundtrip");
        let ds = sample_dataset();
        let report = dump_dataset(&dir, &ds).unwrap();
        assert_eq!(report.rows[0], 3);
        assert_eq!(report.rows[1], 6);
        assert!(report.segments >= 5);

        let reopened = TraceDataset::open(&dir).unwrap();
        assert_eq!(reopened, ds);
        for t in [0, 150, 600, 900] {
            let t = Timestamp::new(t);
            assert_eq!(reopened.frame(t), ds.frame(t), "frame({t})");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_open_equals_mapped_open() {
        let dir = temp_dir("buffered");
        let ds = sample_dataset();
        dump_dataset(&dir, &ds).unwrap();
        let mapped = TraceDataset::open(&dir).unwrap();
        let buffered = TraceDataset::open_buffered(&dir).unwrap();
        assert_eq!(mapped, buffered);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn small_segments_split_and_merge_back() {
        let dir = temp_dir("split");
        let ds = sample_dataset();
        let report = dump_dataset_with(&dir, &ds, StoreConfig { segment_rows: 2 }).unwrap();
        assert!(report.segments > 5, "tiny segments must split families");
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.family_rows(Family::ServerUsage), 20);
        assert!(store.family_segments(Family::ServerUsage).count() >= 10);
        let reopened = TraceDataset::open(&dir).unwrap();
        assert_eq!(reopened, ds);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_is_identical_at_every_thread_count() {
        let dir = temp_dir("threads");
        let ds = sample_dataset();
        dump_dataset_with(&dir, &ds, StoreConfig { segment_rows: 3 }).unwrap();
        let serial = TraceDataset::open_with_threads(&dir, 1).unwrap();
        let par = TraceDataset::open_with_threads(&dir, 8).unwrap();
        assert_eq!(serial, par);
        assert_eq!(serial, ds);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn column_scan_matches_record_walk() {
        let dir = temp_dir("scan");
        let ds = sample_dataset();
        dump_dataset(&dir, &ds).unwrap();
        let store = SegmentStore::open(&dir).unwrap();
        let seg = store
            .family_segments(Family::ServerUsage)
            .next()
            .expect("usage segment");
        let rows = seg.usage().unwrap();
        let scanned: f64 = seg.column(2).sum_f64();
        let walked: f64 = rows.iter().map(|r| r.util.cpu.fraction()).sum();
        assert_eq!(scanned.to_bits(), walked.to_bits());
        assert_eq!(seg.column(0).len(), rows.len());
        assert_eq!(seg.column(1).u32_at(0), u32::from(rows[0].machine));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_bit_flip_is_detected_with_its_region() {
        let dir = temp_dir("bitflip");
        let mut w = SegmentWriter::create(&dir).unwrap();
        let rows: Vec<ServerUsageRecord> = (0..8)
            .map(|i| ServerUsageRecord {
                time: Timestamp::new(i * 30),
                machine: MachineId::new(7),
                util: UtilizationTriple::clamped(0.5, 0.25, 0.125),
            })
            .collect();
        w.write_usage(&rows).unwrap();
        let path = list_store_segments(&dir).unwrap().remove(0);
        let clean = fs::read(&path).unwrap();
        SegmentReader::open(&path).unwrap();

        for byte in 0..clean.len() {
            for bit in 0..8u8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                fs::write(&path, &dirty).unwrap();
                let err = SegmentReader::open(&path)
                    .err()
                    .unwrap_or_else(|| panic!("flip at byte {byte} bit {bit} undetected"));
                match err {
                    TraceError::CorruptSegment {
                        segment,
                        offset,
                        len,
                        ..
                    } => {
                        assert_eq!(segment, path.file_name().unwrap().to_string_lossy());
                        let (off, len) = (offset as usize, len as usize);
                        assert!(
                            off <= byte && byte < off + len.max(1),
                            "flip at {byte} reported region {off}+{len}"
                        );
                    }
                    other => panic!("unexpected error kind: {other}"),
                }
            }
        }
        fs::write(&path, &clean).unwrap();
        SegmentReader::open(&path).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_is_a_typed_error() {
        let dir = temp_dir("torn");
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.write_machines(&[(MachineId::new(1), MachineInfo::default())])
            .unwrap();
        let path = list_store_segments(&dir).unwrap().remove(0);
        let clean = fs::read(&path).unwrap();
        for keep in 0..clean.len() {
            fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                matches!(
                    SegmentReader::open(&path),
                    Err(TraceError::CorruptSegment { .. })
                ),
                "truncation to {keep} bytes must be typed corruption"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_failpoint_leaves_torn_segment() {
        let _guard = batchlens_fault::test_guard();
        let dir = temp_dir("failpoint-short");
        arm(
            FAILPOINT_WRITE,
            FaultSpec::new(Fault::ShortWrite(40), Trigger::Nth(0)),
        );
        let mut w = SegmentWriter::create(&dir).unwrap();
        let err = w
            .write_machines(&[(MachineId::new(1), MachineInfo::default())])
            .unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }));
        batchlens_fault::disarm_all();
        let path = list_store_segments(&dir).unwrap().remove(0);
        assert_eq!(fs::metadata(&path).unwrap().len(), 40);
        assert!(matches!(
            SegmentReader::open(&path),
            Err(TraceError::CorruptSegment { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_failpoint_is_a_typed_io_error() {
        let _guard = batchlens_fault::test_guard();
        let dir = temp_dir("failpoint-map");
        let ds = sample_dataset();
        dump_dataset(&dir, &ds).unwrap();
        arm(
            FAILPOINT_MMAP,
            FaultSpec::new(Fault::Error, Trigger::Nth(0)),
        );
        let err = TraceDataset::open(&dir).unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }));
        batchlens_fault::disarm_all();
        assert_eq!(TraceDataset::open(&dir).unwrap(), ds);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_opens_as_empty_dataset() {
        let dir = temp_dir("empty");
        let ds = TraceDataset::open(&dir).unwrap();
        assert_eq!(ds.machine_count(), 0);
        assert!(ds.span().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let dir = temp_dir("missing");
        fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            TraceDataset::open(&dir),
            Err(TraceError::Io { .. })
        ));
    }

    #[test]
    fn wrong_family_scan_is_not_found() {
        let dir = temp_dir("family");
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.write_machines(&[(MachineId::new(1), MachineInfo::default())])
            .unwrap();
        let path = list_store_segments(&dir).unwrap().remove(0);
        let seg = SegmentReader::open(&path).unwrap();
        assert!(matches!(seg.tasks(), Err(TraceError::NotFound { .. })));
        assert!(seg.machines().is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
