use std::fmt;

use crate::{InstanceId, JobId, MachineId, TaskId, Timestamp};

/// Error type for trace construction, parsing and querying.
///
/// Every public fallible operation in this crate returns `Result<_, TraceError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A CSV line could not be parsed.
    ParseLine {
        /// 1-based line number within the input.
        line: usize,
        /// Name of the table being parsed (e.g. `"batch_task"`).
        table: &'static str,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A CSV field could not be parsed.
    ParseField {
        /// Name of the offending field.
        field: &'static str,
        /// The raw text that failed to parse.
        value: String,
    },
    /// An instance record references a task that has no `batch_task` record.
    UnknownTask {
        /// The job the instance claimed to belong to.
        job: JobId,
        /// The missing task.
        task: TaskId,
    },
    /// An instance record references a machine outside the machine table.
    UnknownMachine {
        /// The missing machine.
        machine: MachineId,
    },
    /// A record's time interval is inverted (end before start).
    InvertedInterval {
        /// Interval start.
        start: Timestamp,
        /// Interval end.
        end: Timestamp,
    },
    /// Two instances claimed the same `(job, task, seq)` identity.
    DuplicateInstance {
        /// The duplicated instance identity.
        instance: InstanceId,
    },
    /// A task was declared twice for the same job.
    DuplicateTask {
        /// Owning job.
        job: JobId,
        /// The duplicated task.
        task: TaskId,
    },
    /// A utilization value was outside `0.0..=1.0` after clamping was disabled.
    UtilizationOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// Samples pushed into a [`crate::TimeSeries`] were not time-ordered.
    UnorderedSamples {
        /// Timestamp of the previous sample.
        previous: Timestamp,
        /// Timestamp of the offending sample.
        offending: Timestamp,
    },
    /// A query referenced an entity that does not exist in the dataset.
    NotFound {
        /// Description of the missing entity, e.g. `"job job_77"`.
        entity: String,
    },
    /// A resolution or window parameter was zero or negative.
    InvalidResolution {
        /// The offending resolution in seconds.
        seconds: i64,
    },
    /// An OS-level IO failure while reading or writing trace storage (a
    /// columnar segment, or a streamed CSV source). The original
    /// `io::Error` is flattened to text so this type stays `Clone`.
    Io {
        /// The operation that failed (e.g. `"write"`, `"read line"`).
        op: &'static str,
        /// The path it failed on (empty for anonymous readers).
        path: String,
        /// The OS error, rendered.
        message: String,
    },
    /// A columnar segment file failed validation: torn tail, bad magic, or
    /// a checksum mismatch. The error pins the damage to a byte range of
    /// one named segment — corruption is always a typed result, never a
    /// panic.
    CorruptSegment {
        /// File name of the offending segment (not the full path).
        segment: String,
        /// Byte offset where the corrupt region starts.
        offset: u64,
        /// Length of the region the failed check covers (0 = the file's
        /// overall framing, e.g. a truncated tail).
        len: u64,
        /// What check failed.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ParseLine {
                line,
                table,
                message,
            } => {
                write!(f, "failed to parse {table} line {line}: {message}")
            }
            TraceError::ParseField { field, value } => {
                write!(f, "failed to parse field {field} from {value:?}")
            }
            TraceError::UnknownTask { job, task } => {
                write!(f, "instance references unknown task {task} of {job}")
            }
            TraceError::UnknownMachine { machine } => {
                write!(f, "record references unknown machine {machine}")
            }
            TraceError::InvertedInterval { start, end } => {
                write!(f, "interval end {end} precedes start {start}")
            }
            TraceError::DuplicateInstance { instance } => {
                write!(f, "duplicate instance record {instance}")
            }
            TraceError::DuplicateTask { job, task } => {
                write!(f, "duplicate task record {task} of {job}")
            }
            TraceError::UtilizationOutOfRange { value } => {
                write!(f, "utilization {value} outside 0.0..=1.0")
            }
            TraceError::UnorderedSamples {
                previous,
                offending,
            } => {
                write!(f, "sample at {offending} pushed after sample at {previous}")
            }
            TraceError::NotFound { entity } => write!(f, "{entity} not found"),
            TraceError::InvalidResolution { seconds } => {
                write!(f, "invalid resolution of {seconds} seconds")
            }
            TraceError::Io { op, path, message } => {
                if path.is_empty() {
                    write!(f, "{op} failed: {message}")
                } else {
                    write!(f, "{op} {path} failed: {message}")
                }
            }
            TraceError::CorruptSegment {
                segment,
                offset,
                len,
                message,
            } => {
                write!(
                    f,
                    "corrupt segment {segment} at offset {offset} (+{len}): {message}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A malformed row skipped by a recovering CSV parse (`recover: true` in
/// [`crate::csv::ParseOptions`]): the line number, the table, and the error
/// the strict parser would have aborted with.
///
/// Warnings are diagnostics, not errors — a recovering load succeeds with
/// the parseable rows and reports what it had to skip, line-numbered so the
/// operator can fix the source file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseWarning {
    /// 1-based line number within the input.
    pub line: usize,
    /// Name of the table being parsed (e.g. `"batch_task"`).
    pub table: &'static str,
    /// The error the row failed with.
    pub error: TraceError,
}

impl fmt::Display for ParseWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "skipped {} line {}: {}",
            self.table, self.line, self.error
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = TraceError::UnknownMachine {
            machine: MachineId::new(7),
        };
        let text = err.to_string();
        assert!(text.starts_with("record references unknown machine"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }

    #[test]
    fn parse_line_mentions_table_and_line() {
        let err = TraceError::ParseLine {
            line: 12,
            table: "server_usage",
            message: "too few fields".into(),
        };
        let text = err.to_string();
        assert!(text.contains("server_usage"));
        assert!(text.contains("12"));
    }
}
