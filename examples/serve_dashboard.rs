//! The serving layer end to end: one live-monitor-backed lens, three
//! concurrent dashboard sessions over real loopback sockets.
//!
//! The walkthrough proves the layer's two core guarantees on the wire:
//!
//! * **Shared frames** — three sessions rendering the same instant of the
//!   same monitor state get bit-identical SVG bytes from exactly **one**
//!   underlying frame capture (the `/statsz` frame-cache counters move by
//!   one miss, the rest hits);
//! * **Independent alert cursors** — each session's `/alerts` poll sees
//!   the saturation burst exactly once, without stealing from the other
//!   sessions (and a re-poll is empty).
//!
//! Run with: `cargo run -p batchlens-serve --example serve_dashboard`

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{MachineId, ServerUsageRecord, TimeDelta, Timestamp, UtilizationTriple};
use batchlens::BatchLens;
use batchlens_serve::codec::{read_response, ClientResponse};
use batchlens_serve::session::{AlertsPayload, FrameInfo, SessionCreated};
use batchlens_serve::stats::StatszPayload;
use batchlens_serve::{ServeConfig, Server, SessionManager};

/// One round trip on an open keep-alive connection.
fn call(conn: &mut TcpStream, method: &str, target: &str, body: &str) -> ClientResponse {
    // One buffer per request: fragmented small writes on a Nagle-enabled
    // socket cost a delayed-ACK round trip per request.
    let req = format!(
        "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(req.as_bytes()).expect("request written");
    let mut reader = BufReader::new(conn.try_clone().expect("clone socket"));
    read_response(&mut reader)
        .expect("response framed")
        .expect("connection open")
}

/// What one dashboard client saw, for the cross-session assertions.
struct ClientOutcome {
    svg: Vec<u8>,
    frame: FrameInfo,
    first_poll: AlertsPayload,
    second_poll: AlertsPayload,
}

fn client_session(addr: SocketAddr, at: Timestamp, phases: &Barrier) -> ClientOutcome {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let created: SessionCreated =
        serde_json::from_str(&call(&mut conn, "POST", "/sessions", "").text())
            .expect("session created");
    let id = created.session;
    // Before the burst: the cursor starts at "now", so the poll is empty.
    let quiet: AlertsPayload =
        serde_json::from_str(&call(&mut conn, "GET", &format!("/sessions/{id}/alerts"), "").text())
            .expect("alerts payload");
    assert!(quiet.live && quiet.alerts.is_empty());

    phases.wait(); // all sessions exist; main fires the burst
    phases.wait(); // burst ingested, monitor idle again

    // Interact: every session scrubs to the same instant...
    let event = format!("{{\"SelectTimestamp\": {}}}", at.seconds());
    assert_eq!(
        call(&mut conn, "POST", &format!("/sessions/{id}/events"), &event).status,
        200
    );
    // ...and renders concurrently: same (version, timestamp) key, so the
    // three captures coalesce onto one.
    let svg = call(
        &mut conn,
        "GET",
        &format!("/sessions/{id}/render?format=svg&width=900&height=700"),
        "",
    );
    assert_eq!(svg.status, 200);
    let frame: FrameInfo =
        serde_json::from_str(&call(&mut conn, "GET", &format!("/sessions/{id}/frame"), "").text())
            .expect("frame payload");
    let first_poll: AlertsPayload =
        serde_json::from_str(&call(&mut conn, "GET", &format!("/sessions/{id}/alerts"), "").text())
            .expect("alerts payload");
    let second_poll: AlertsPayload =
        serde_json::from_str(&call(&mut conn, "GET", &format!("/sessions/{id}/alerts"), "").text())
            .expect("alerts payload");
    ClientOutcome {
        svg: svg.body,
        frame,
        first_poll,
        second_poll,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A live monitor fed with the overload day's usage and structure.
    let dataset = scenario::fig3c(17).run()?;
    let span_end = dataset.span().map(|s| s.end()).unwrap_or(Timestamp::new(0));
    let monitor = Arc::new(StreamMonitor::new(StreamConfig {
        horizon: TimeDelta::DAY,
        ..Default::default()
    })?);
    let mut usage = export_usage_records(&dataset);
    usage.sort_by_key(|r| (r.time, r.machine));
    for rec in usage {
        monitor.ingest(rec);
    }
    monitor.ingest_instances(dataset.instance_records().iter().copied());
    for ev in dataset.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let mut lens = BatchLens::new(dataset);
    lens.attach_live_monitor(Arc::clone(&monitor));

    let manager = Arc::new(SessionManager::new(Arc::new(lens)));
    let server = Arc::new(Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&manager),
        ServeConfig {
            workers: 4,
            ..Default::default()
        },
    )?);
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = Arc::clone(&server);
    let serve_thread = thread::spawn(move || runner.serve());
    println!("serving batchlens on http://{addr}");

    // Three concurrent dashboard sessions, phase-locked with main.
    let at = scenario::T_FIG3C;
    let phases = Arc::new(Barrier::new(4));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let phases = Arc::clone(&phases);
            thread::spawn(move || client_session(addr, at, &phases))
        })
        .collect();

    // Fire a saturation burst once every session's cursor is positioned.
    phases.wait();
    let seq_before = monitor.next_alert_seq();
    for k in 0..6i64 {
        monitor.ingest(ServerUsageRecord {
            time: span_end + TimeDelta::seconds(60 * (k + 1)),
            machine: MachineId::new(0),
            util: UtilizationTriple::clamped(0.97, 0.35, 0.3),
        });
    }
    let fired = monitor.next_alert_seq() - seq_before;
    assert!(fired > 0, "the burst must fire alerts");
    println!("burst fired {fired} alerts");
    phases.wait();

    let outcomes: Vec<ClientOutcome> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    // Bit-identical frames: same (version, timestamp) key → same bytes.
    assert!(
        outcomes.windows(2).all(|w| w[0].svg == w[1].svg),
        "sessions rendering one instant must get identical SVG bytes"
    );
    let mut frames: Vec<FrameInfo> = outcomes.iter().map(|o| o.frame.clone()).collect();
    for f in &mut frames {
        f.session = 0; // the session id is the only legitimate difference
    }
    assert!(frames.windows(2).all(|w| w[0] == w[1]));
    println!(
        "3 sessions share one frame @ {} (v{}): {} jobs, {} active machines",
        frames[0].at,
        frames[0].version,
        frames[0].jobs_running.len(),
        frames[0].machines_active.len()
    );

    // Exactly one underlying capture, observed through /statsz.
    let mut conn = TcpStream::connect(addr)?;
    let statsz: StatszPayload = serde_json::from_str(&call(&mut conn, "GET", "/statsz", "").text())
        .expect("statsz payload");
    assert_eq!(
        statsz.frame_cache.misses, 1,
        "six frame-keyed requests (3 renders + 3 frame queries) → one capture"
    );
    assert_eq!(statsz.frame_cache.hits, 5);
    assert_eq!(statsz.sessions.len(), 3);
    println!(
        "frame cache: {} hits / {} misses (hit rate {:.2}), worker queue depth {}",
        statsz.frame_cache.hits,
        statsz.frame_cache.misses,
        statsz.frame_cache.hit_rate,
        statsz.worker_pool.queue_depth
    );

    // Independent cursors: every session saw the whole burst exactly once.
    for o in &outcomes {
        let seqs: Vec<u64> = o.first_poll.alerts.iter().map(|a| a.seq).collect();
        assert_eq!(seqs.len() as u64, fired);
        assert_eq!(seqs.first().copied(), Some(seq_before));
        assert!(o.second_poll.alerts.is_empty(), "re-poll delivers nothing");
        assert_eq!(o.first_poll.missed, 0);
    }
    println!("each session polled the burst exactly once ({fired} alerts per cursor)");

    handle.shutdown();
    serve_thread.join().expect("server joined");
    println!("server drained and joined; ok");
    Ok(())
}
