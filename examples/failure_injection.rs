//! Injects a cascading hardware failure into a simulated cluster and shows
//! how it appears in the trace: machine-lifecycle events, lost availability,
//! and the jobs left stranded on dead nodes.
//!
//! Run with: `cargo run -p batchlens --example failure_injection`

use batchlens::sim::failure::{failure_events, CascadeModel};
use batchlens::sim::{MachineFailure, SimConfig, Simulation};
use batchlens::trace::{MachineEvent, MachineId, TimeDelta, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hard crash of machine 5 at t=3600, cascading to its rack neighbours.
    let seed = MachineFailure {
        machine: MachineId::new(5),
        at: Timestamp::new(3600),
        hard: true,
        recover_after: Some(TimeDelta::minutes(20)),
    };
    let cascade = CascadeModel {
        radius: 2,
        propagation_delay: TimeDelta::minutes(2),
        hard: true,
    };
    let failures = cascade.expand(&[seed], 40);
    println!("injecting {} failures (1 seed + cascade):", failures.len());
    for f in &failures {
        println!(
            "  {} {} at {}{}",
            f.machine,
            if f.hard { "CRASH" } else { "soft-error" },
            f.at,
            f.recover_after
                .map(|d| format!(" (recovers after {d})"))
                .unwrap_or_default()
        );
    }
    println!(
        "\n{} machine-event records emitted",
        failure_events(&failures).len()
    );

    let mut cfg = SimConfig::small(7);
    cfg.machines = 40;
    cfg.window = batchlens::trace::TimeRange::new(Timestamp::ZERO, Timestamp::new(10_800))?;
    let ds = Simulation::new(cfg).with_failures(failures.clone()).run()?;

    // Which machines are down at t=4000 (after the cascade propagates)?
    let t = Timestamp::new(4000);
    let down: Vec<MachineId> = ds
        .machines()
        .filter(|m| !m.alive_at(t))
        .map(|m| m.id())
        .collect();
    println!("\nmachines down at {t}: {down:?}");

    // Recovery: by t=6000 the seed (recover after 20 min = 1200 s from 3600 =
    // 4800) should be back.
    let recovered = Timestamp::new(6000);
    let still_down: Vec<MachineId> = ds
        .machines()
        .filter(|m| !m.alive_at(recovered))
        .map(|m| m.id())
        .collect();
    println!("machines still down at {recovered}: {still_down:?}");

    // Count the hard-error events in the trace.
    let crashes = ds
        .machine_events()
        .iter()
        .filter(|e| e.event == MachineEvent::HardError)
        .count();
    println!("\ntotal hard-error events in trace: {crashes}");

    Ok(())
}
