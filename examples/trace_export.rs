//! Round-trips a simulated trace through the Alibaba-v2017 CSV codec:
//! simulate → write the four tables as CSV → parse them back → rebuild the
//! dataset → confirm the statistics match.
//!
//! This demonstrates that `batchlens-sim` emits exactly the v2017 schema
//! `batchlens-trace` consumes, so the reproduction could ingest the real
//! dump unchanged.
//!
//! Run with: `cargo run -p batchlens --example trace_export`

use batchlens::sim::{SimConfig, Simulation};
use batchlens::trace::csv;
use batchlens::trace::stats::DatasetStats;
use batchlens::trace::{
    BatchInstanceRecord, BatchTaskRecord, MachineEventRecord, ServerUsageRecord,
    TraceDatasetBuilder,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Simulation::new(SimConfig::small(99)).run()?;
    let before = DatasetStats::compute(&dataset);
    println!(
        "original: {} jobs, {} instances",
        before.jobs, before.instances
    );

    // Flatten the dataset back into the four v2017 tables.
    let tasks: Vec<BatchTaskRecord> = dataset.task_records().copied().collect();
    let instances: Vec<BatchInstanceRecord> = dataset.instance_records().to_vec();
    let usage: Vec<ServerUsageRecord> = dataset
        .machines()
        .flat_map(|m| {
            let cpu = m.usage(batchlens::trace::Metric::Cpu);
            let times: Vec<_> = cpu.map(|s| s.times().to_vec()).unwrap_or_default();
            times.into_iter().filter_map(move |t| {
                m.util_at(t).map(|util| ServerUsageRecord {
                    time: t,
                    machine: m.id(),
                    util,
                })
            })
        })
        .collect();
    let events: Vec<MachineEventRecord> = dataset.machine_events().to_vec();

    // Serialize.
    let task_csv = csv::write_batch_tasks(&tasks);
    let inst_csv = csv::write_batch_instances(&instances);
    let usage_csv = csv::write_server_usage(&usage);
    let event_csv = csv::write_machine_events(&events);

    let dir = std::env::temp_dir().join("batchlens_trace");
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join("batch_task.csv"), &task_csv)?;
    std::fs::write(dir.join("batch_instance.csv"), &inst_csv)?;
    std::fs::write(dir.join("server_usage.csv"), &usage_csv)?;
    std::fs::write(dir.join("machine_events.csv"), &event_csv)?;
    println!(
        "wrote 4 CSV tables to {} ({} KiB total)",
        dir.display(),
        (task_csv.len() + inst_csv.len() + usage_csv.len() + event_csv.len()) / 1024
    );

    // Parse back and rebuild.
    let tasks2 = csv::parse_batch_tasks(&task_csv)?;
    let instances2 = csv::parse_batch_instances(&inst_csv)?;
    let usage2 = csv::parse_server_usage(&usage_csv)?;
    let events2 = csv::parse_machine_events(&event_csv)?;

    let mut builder = TraceDatasetBuilder::new();
    builder.extend_tables(tasks2, instances2, usage2, events2);
    let rebuilt = builder.build()?;
    let after = DatasetStats::compute(&rebuilt);

    println!(
        "rebuilt : {} jobs, {} instances",
        after.jobs, after.instances
    );
    assert_eq!(before.jobs, after.jobs);
    assert_eq!(before.instances, after.instances);
    assert_eq!(before.tasks, after.tasks);
    println!("\nround-trip preserved the hierarchy ✓");

    Ok(())
}
