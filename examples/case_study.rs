//! Reproduces the paper's Section IV case study: the three regimes at
//! timestamps 47400 / 46200 / 43800, plus the mass shutdown at 44100.
//!
//! For each regime it prints the regime summary and the root-cause report,
//! and writes the dashboard SVG. This is the narrative the paper tells,
//! regenerated from the simulated trace.
//!
//! Run with: `cargo run -p batchlens --example case_study`

use batchlens::pipeline::Pipeline;
use batchlens::report::case_study_report;
use batchlens::sim::scenario;
use batchlens::trace::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::temp_dir().join("batchlens_case_study");
    std::fs::create_dir_all(&out_dir)?;

    type Build = Box<dyn Fn() -> batchlens::sim::Simulation>;
    let cases: [(&str, Build, Timestamp); 3] = [
        (
            "fig3a_healthy",
            Box::new(|| scenario::fig3a(7)),
            scenario::T_FIG3A,
        ),
        (
            "fig3b_medium_spike",
            Box::new(|| scenario::fig3b(7)),
            scenario::T_FIG3B,
        ),
        (
            "fig3c_overload_thrashing",
            Box::new(|| scenario::fig3c(7)),
            scenario::T_FIG3C,
        ),
    ];

    for (name, build, at) in cases {
        println!("\n################ {name} @ {at} ################");
        let sim = build();
        let dataset = sim.run()?;

        // Narrative report.
        let report = case_study_report(&dataset, at);
        println!("{report}");

        // Dashboard SVG via the pipeline.
        let pipe = Pipeline::new(build());
        let art = pipe.artifacts_at(at, 900.0, 620.0)?;
        let path = out_dir.join(format!("{name}_dashboard.svg"));
        std::fs::write(&path, &art.dashboard_svg)?;
        println!(
            "wrote {} ({} bytes)",
            path.display(),
            art.dashboard_svg.len()
        );
    }

    // The mass shutdown: show the cluster before and after timestamp 44100.
    println!(
        "\n################ mass shutdown @ {} ################",
        scenario::T_SHUTDOWN
    );
    let ds = scenario::fig3c(7).run()?;
    let before = ds.jobs_running_at(Timestamp::new(scenario::T_SHUTDOWN.seconds() - 60));
    let after = ds.jobs_running_at(Timestamp::new(scenario::T_SHUTDOWN.seconds() + 60));
    println!(
        "before: {} jobs running; after: {} job(s) — {}",
        before.len(),
        after.len(),
        after
            .iter()
            .map(|j| j.id().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("(paper: only job_11599 is left on the entire platform)");

    Ok(())
}
