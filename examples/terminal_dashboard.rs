//! Renders the BatchLens bubble chart to the terminal as ASCII, then steps
//! through the three case-study timestamps — a browser-free way to watch the
//! cluster's color/shape change over the day.
//!
//! Rendering is **frame-driven**: each snapshot is one transactional
//! [`batchlens::BatchLens::frame_at`] capture, and everything printed for
//! that instant (hierarchy, counts, bubbles) derives from that single
//! frame — the same render path the serving layer uses per request.
//!
//! Run with: `cargo run -p batchlens --example terminal_dashboard`

use batchlens::analytics::hierarchy::HierarchySnapshot;
use batchlens::render::ascii::AsciiCanvas;
use batchlens::render::BubbleChart;
use batchlens::report::regime_banner;
use batchlens::sim::scenario;
use batchlens::BatchLens;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full day contains all three regimes.
    let ds = scenario::paper_day_with_machines(7, 80).run()?;
    let app = BatchLens::new(ds);

    for (label, at) in [
        ("healthy (Fig 3a)", scenario::T_FIG3A),
        ("medium + spike (Fig 3b)", scenario::T_FIG3B),
        ("overload + thrashing (Fig 3c)", scenario::T_FIG3C),
    ] {
        println!("\n======== {label} ========");
        println!("{}", regime_banner(app.dataset(), at));
        // One frame per instant: every product below agrees by construction.
        let frame = app.frame_at(at);
        let snap = HierarchySnapshot::from_frame(&frame);
        println!(
            "{} jobs, {} node glyphs, {} machines active (frame v{})",
            snap.jobs.len(),
            snap.total_nodes(),
            frame.machines_active().len(),
            frame.version()
        );
        let scene = BubbleChart::new(600.0, 600.0).labels(false).render(&snap);
        let canvas = AsciiCanvas::render(&scene, 72, 32);
        print!("{}", canvas.to_text());
    }

    // Revisiting an instant replays the shared frame from cache.
    let _ = app.frame_at(scenario::T_FIG3C);
    let (hits, misses) = app.frame_cache_stats();
    println!("\nframe cache: {hits} hits / {misses} misses");

    Ok(())
}
