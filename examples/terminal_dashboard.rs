//! Renders the BatchLens bubble chart to the terminal as ASCII, then steps
//! through the three case-study timestamps — a browser-free way to watch the
//! cluster's color/shape change over the day.
//!
//! Run with: `cargo run -p batchlens --example terminal_dashboard`

use batchlens::analytics::hierarchy::HierarchySnapshot;
use batchlens::render::ascii::AsciiCanvas;
use batchlens::render::BubbleChart;
use batchlens::report::regime_banner;
use batchlens::sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full day contains all three regimes.
    let ds = scenario::paper_day_with_machines(7, 80).run()?;

    for (label, at) in [
        ("healthy (Fig 3a)", scenario::T_FIG3A),
        ("medium + spike (Fig 3b)", scenario::T_FIG3B),
        ("overload + thrashing (Fig 3c)", scenario::T_FIG3C),
    ] {
        println!("\n======== {label} ========");
        println!("{}", regime_banner(&ds, at));
        let snap = HierarchySnapshot::at(&ds, at);
        println!(
            "{} jobs, {} node glyphs",
            snap.jobs.len(),
            snap.total_nodes()
        );
        let scene = BubbleChart::new(600.0, 600.0).labels(false).render(&snap);
        let canvas = AsciiCanvas::render(&scene, 72, 32);
        print!("{}", canvas.to_text());
    }

    Ok(())
}
