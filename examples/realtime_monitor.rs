//! The real-time online extension (paper future work §VI): stream a
//! simulated day's usage records through the rolling-window
//! [`StreamMonitor`] over a channel and print alerts as they fire.
//!
//! A producer thread replays `server_usage` records in time order; the main
//! thread ingests them and surfaces high-utilization and thrashing alerts
//! online, without ever holding the whole trace in an index. Structural
//! records (`batch_instance`, `machine_events`) stream in too, maintaining
//! the rolling interval/liveness indexes — so the same snapshot queries the
//! batch dataset answers run against the live window at the end.
//!
//! Run with: `cargo run -p batchlens --example realtime_monitor`

use std::thread;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::Metric;
use crossbeam::channel::bounded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = scenario::fig3c(11).run()?;
    let mut records = export_usage_records(&dataset);
    records.sort_by_key(|r| (r.time, r.machine));
    println!("streaming {} usage records", records.len());

    let (tx, rx) = bounded(1024);
    let producer = thread::spawn(move || {
        for rec in records {
            if tx.send(rec).is_err() {
                break;
            }
        }
    });

    // A day-long rolling window: the live snapshot queries at the end ask
    // about an instant mid-trace, which must still be inside the window —
    // intervals wholly behind `frontier - horizon` are evicted.
    let monitor = std::sync::Arc::new(
        StreamMonitor::new(StreamConfig {
            horizon: batchlens::trace::TimeDelta::DAY,
            ..Default::default()
        })
        .unwrap(),
    );
    let mut high_alerts = 0usize;
    let mut thrash_alerts = 0usize;
    let mut first_thrash = None;
    let mut missed = 0u64;
    // A non-destructive cursor over the alert sequence: `alerts_since`
    // reads from a remembered position instead of draining, so any number
    // of consumers (this one, a serving layer's sessions) could coexist.
    // Lagging behind the bounded retention shows up as `missed`, never as
    // silent loss.
    let mut next_seq = 0u64;
    let mut consume = |monitor: &StreamMonitor| {
        let batch = monitor.alerts_since(next_seq);
        next_seq = batch.next_seq;
        missed += batch.missed;
        for alert in batch.alerts {
            if alert.is_thrashing() {
                thrash_alerts += 1;
                if first_thrash.is_none() {
                    first_thrash = Some(alert);
                }
            } else {
                high_alerts += 1;
            }
        }
    };
    for (i, rec) in rx.into_iter().enumerate() {
        monitor.ingest(rec);
        if i % 256 == 0 {
            consume(&monitor);
        }
    }
    consume(&monitor);
    producer.join().ok();

    println!(
        "ingested {} records ({} stragglers dropped)",
        monitor.ingested(),
        monitor.stale_dropped()
    );
    println!("tracking {} machines", monitor.tracked_machines());
    println!("high-utilization alerts: {high_alerts}");
    println!("thrashing alerts: {thrash_alerts}");
    println!("alerts evicted before the cursor read them: {missed}");
    if let Some(a) = first_thrash {
        println!(
            "first thrashing alert: {} @ {} (memory {:.0}%)",
            a.machine,
            a.at,
            a.value * 100.0
        );
    }

    // Spot-check one machine's current rolling CPU window.
    if let Some(series) = monitor.series(batchlens::trace::MachineId::new(0), Metric::Cpu) {
        println!(
            "machine_0 rolling CPU window holds {} samples",
            series.len()
        );
    }

    // Live window queries: stream the structural tables in as well, then
    // attach the monitor to a lens and render **frame-driven** — one
    // transactional capture answers every question about the instant, the
    // same path the serving layer takes per request.
    use batchlens::trace::DatasetQuery;
    monitor.ingest_instances(dataset.instance_records().iter().copied());
    for ev in dataset.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let at = scenario::T_FIG3C;
    let batch_jobs = DatasetQuery::jobs_running_at(&dataset, at);
    let mut app = batchlens::BatchLens::new(dataset);
    app.attach_live_monitor(std::sync::Arc::clone(&monitor));
    let frame = app.frame_at(at);
    println!(
        "live frame @ {at} (v{}): {} jobs running on {} active machines (batch agrees: {})",
        frame.version(),
        frame.jobs_running().len(),
        frame.machines_active().len(),
        frame.jobs_running() == batch_jobs,
    );
    let snapshot = batchlens::analytics::hierarchy::HierarchySnapshot::from_frame(&frame);
    println!(
        "live hierarchy snapshot: {} job bubbles, {} node glyphs",
        snapshot.jobs.len(),
        snapshot.total_nodes()
    );
    // The full dashboard off the same frame, rasterized for the terminal.
    let scene = batchlens::render::dashboard::Dashboard::new(640.0, 256.0)
        .render_from_frame(&frame, app.timeline());
    print!(
        "{}",
        batchlens::render::ascii::AsciiCanvas::render(&scene, 80, 24).to_text()
    );

    Ok(())
}
