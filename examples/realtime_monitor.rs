//! The real-time online extension (paper future work §VI): stream a
//! simulated day's usage records through the rolling-window
//! [`StreamMonitor`] over a channel and print alerts as they fire.
//!
//! A producer thread replays `server_usage` records in time order; the main
//! thread ingests them and surfaces high-utilization and thrashing alerts
//! online, without ever holding the whole trace in an index. Structural
//! records (`batch_instance`, `machine_events`) stream in too, maintaining
//! the rolling interval/liveness indexes — so the same snapshot queries the
//! batch dataset answers run against the live window at the end.
//!
//! Run with: `cargo run -p batchlens --example realtime_monitor`

use std::thread;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::Metric;
use crossbeam::channel::bounded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = scenario::fig3c(11).run()?;
    let mut records = export_usage_records(&dataset);
    records.sort_by_key(|r| (r.time, r.machine));
    println!("streaming {} usage records", records.len());

    let (tx, rx) = bounded(1024);
    let producer = thread::spawn(move || {
        for rec in records {
            if tx.send(rec).is_err() {
                break;
            }
        }
    });

    // A day-long rolling window: the live snapshot queries at the end ask
    // about an instant mid-trace, which must still be inside the window —
    // intervals wholly behind `frontier - horizon` are evicted.
    let monitor = StreamMonitor::new(StreamConfig {
        horizon: batchlens::trace::TimeDelta::DAY,
        ..Default::default()
    })
    .unwrap();
    let mut high_alerts = 0usize;
    let mut thrash_alerts = 0usize;
    let mut first_thrash = None;
    let mut consume = |monitor: &StreamMonitor| {
        // "Frame" boundary: the cheap length probe costs nothing when no
        // alert fired, and the drain hands each alert out exactly once —
        // no per-frame clone of the full alert history.
        if monitor.alerts_len() == 0 {
            return;
        }
        for alert in monitor.drain_alerts() {
            if alert.is_thrashing() {
                thrash_alerts += 1;
                if first_thrash.is_none() {
                    first_thrash = Some(alert);
                }
            } else {
                high_alerts += 1;
            }
        }
    };
    for (i, rec) in rx.into_iter().enumerate() {
        monitor.ingest(rec);
        if i % 256 == 0 {
            consume(&monitor);
        }
    }
    consume(&monitor);
    producer.join().ok();

    println!(
        "ingested {} records ({} stragglers dropped)",
        monitor.ingested(),
        monitor.stale_dropped()
    );
    println!("tracking {} machines", monitor.tracked_machines());
    println!("high-utilization alerts: {high_alerts}");
    println!("thrashing alerts: {thrash_alerts}");
    if let Some(a) = first_thrash {
        println!(
            "first thrashing alert: {} @ {} (memory {:.0}%)",
            a.machine,
            a.at,
            a.value * 100.0
        );
    }

    // Spot-check one machine's current rolling CPU window.
    if let Some(series) = monitor.series(batchlens::trace::MachineId::new(0), Metric::Cpu) {
        println!(
            "machine_0 rolling CPU window holds {} samples",
            series.len()
        );
    }

    // Live window queries: stream the structural tables in as well, then
    // ask the rolling indexes the same questions the batch dataset answers
    // — and check they agree (the differential suite proves this in depth).
    use batchlens::trace::DatasetQuery;
    monitor.ingest_instances(dataset.instance_records().iter().copied());
    for ev in dataset.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let view = monitor.live_view();
    let at = scenario::T_FIG3C;
    let live_jobs = view.jobs_running_at(at);
    let batch_jobs = DatasetQuery::jobs_running_at(&dataset, at);
    println!(
        "live window @ {at}: {} jobs running on {} active machines (batch agrees: {})",
        live_jobs.len(),
        view.machines_active_at(at).len(),
        live_jobs == batch_jobs,
    );
    let snapshot = batchlens::analytics::hierarchy::HierarchySnapshot::at(&view, at);
    println!(
        "live hierarchy snapshot: {} job bubbles, {} node glyphs",
        snapshot.jobs.len(),
        snapshot.total_nodes()
    );

    Ok(())
}
