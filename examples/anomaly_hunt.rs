//! Anomaly hunt: scan a full simulated day, score the signature detectors
//! against the injected ground truth, and report precision/recall.
//!
//! This exercises the detectors (spike, thrashing) and the root-cause
//! analyzer across the whole trace rather than at a single snapshot.
//!
//! Run with: `cargo run -p batchlens --example anomaly_hunt`

use std::collections::BTreeSet;

use batchlens::analytics::rootcause::{RootCauseAnalyzer, Verdict};
use batchlens::sim::scenario;
use batchlens::trace::{JobId, TimeDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled paper-day with ground truth.
    let sim = scenario::paper_day_with_machines(2024, 120);
    let (dataset, truth) = sim.run_with_truth()?;
    println!(
        "scanning a {:.0}h trace: {} jobs on {} machines",
        dataset
            .span()
            .map_or(0.0, |s| s.duration().as_secs_f64() / 3600.0),
        dataset.job_count(),
        dataset.machine_count()
    );

    let truth_anomalous: BTreeSet<JobId> = truth.anomalous_jobs.iter().map(|(j, _)| *j).collect();
    println!("injected anomalies: {:?}", truth.anomalous_jobs);

    // Sweep the batch grid, diagnosing each active snapshot and collecting
    // the set of jobs ever flagged anomalous.
    let analyzer = RootCauseAnalyzer::new();
    let span = dataset.span().expect("non-empty");
    let mut flagged: BTreeSet<JobId> = BTreeSet::new();
    let mut snapshots = 0usize;
    for t in span.steps(TimeDelta::BATCH_RESOLUTION) {
        if dataset.jobs_running_at(t).is_empty() {
            continue;
        }
        snapshots += 1;
        for d in analyzer.analyze(&dataset, t) {
            if d.verdict != Verdict::Healthy {
                flagged.insert(d.job);
            }
        }
    }
    println!("inspected {snapshots} active snapshots");
    println!("jobs ever flagged anomalous: {flagged:?}");

    // Score recall of the injected anomalies.
    let recalled: Vec<JobId> = truth_anomalous.intersection(&flagged).copied().collect();
    println!(
        "\nrecall of injected anomalies: {}/{} ({:?})",
        recalled.len(),
        truth_anomalous.len(),
        recalled
    );

    // Show the classification at the canonical timestamps.
    for (label, t) in [("fig3b", scenario::T_FIG3B), ("fig3c", scenario::T_FIG3C)] {
        println!("\n--- verdicts @ {label} ({t}) ---");
        for d in analyzer.analyze(&dataset, t) {
            if d.verdict != Verdict::Healthy {
                println!("  {}", d.summary);
            }
        }
    }

    Ok(())
}
