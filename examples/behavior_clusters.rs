//! Clusters machines by behavioral signature and renders the clusters as a
//! radial comparison (the spatial-comparison idea of the paper's Intercept
//! Graph reference). Prints cluster sizes and the hottest cluster's members.
//!
//! Run with: `cargo run -p batchlens --example behavior_clusters`

use batchlens::analytics::behavior::{behavior_vectors, cluster_behaviors};
use batchlens::render::radial::{RadialComparison, Spoke};
use batchlens::render::svg::to_svg;
use batchlens::sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = scenario::fig3c(7).run()?;
    let window = ds.span().unwrap();
    let vectors = behavior_vectors(&ds, &window);
    println!("summarized {} machines over {}", vectors.len(), window);

    let k = 4;
    let clusters = cluster_behaviors(&vectors, k, 50).expect("enough machines");
    println!(
        "\nk={k} behavior clusters (cpu_mean, cpu_std, mem_mean, disk_mean, peak, anomaly_rate):"
    );
    for (i, centroid) in clusters.centroids.iter().enumerate() {
        println!(
            "  cluster {i}: size {:>3} | [{:.2} {:.2} {:.2} {:.2} {:.2} {:.2}]",
            clusters.members(i).len(),
            centroid[0],
            centroid[1],
            centroid[2],
            centroid[3],
            centroid[4],
            centroid[5],
        );
    }

    // Identify the hottest cluster (highest CPU centroid).
    let hottest = clusters
        .centroids
        .iter()
        .enumerate()
        .max_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
        .unwrap()
        .0;
    let members = clusters.members(hottest);
    println!(
        "\nhottest cluster {hottest} has {} machines:",
        members.len()
    );
    for m in members.iter().take(8) {
        print!("{m} ");
    }
    println!("{}", if members.len() > 8 { "…" } else { "" });

    // Render each cluster centroid as a radial spoke (before = cpu_std proxy,
    // after = cpu_mean) and write the SVG.
    let spokes: Vec<Spoke> = clusters
        .centroids
        .iter()
        .enumerate()
        .map(|(i, c)| Spoke {
            label: format!("c{i} ({})", clusters.members(i).len()),
            before: c[3], // disk mean
            after: c[0],  // cpu mean
        })
        .collect();
    let svg = to_svg(&RadialComparison::new(480.0, 480.0).render(&spokes));
    let out = std::env::temp_dir().join("batchlens_behavior_radial.svg");
    std::fs::write(&out, &svg)?;
    println!(
        "\nwrote radial comparison ({} bytes) to {}",
        svg.len(),
        out.display()
    );

    Ok(())
}
