//! Compares the three placement policies by the co-allocation density and
//! load balance they produce — the scheduler choice shapes the bubble
//! chart's color uniformity (the paper's "uniform in color distribution due
//! to the load balance") and the number of dotted co-allocation links.
//!
//! Run with: `cargo run -p batchlens --example scheduler_compare`

use batchlens::analytics::coalloc::CoallocationIndex;
use batchlens::analytics::compare::RegimeSummary;
use batchlens::sim::{SchedulerKind, SimConfig, Simulation};
use batchlens::trace::{TimeDelta, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("policy         | mean util | util spread (p90-p10) | max shared machines");
    println!("---------------|-----------|-----------------------|--------------------");
    for sched in [
        SchedulerKind::LeastLoaded,
        SchedulerKind::RoundRobin,
        SchedulerKind::Packing,
    ] {
        let mut cfg = SimConfig::medium(7);
        cfg.scheduler = sched;
        let ds = Simulation::new(cfg).run()?;

        // Sample a few active timestamps and average the metrics.
        let span = ds.span().unwrap();
        let mut util_sum = 0.0;
        let mut spread_sum = 0.0;
        let mut max_shared = 0usize;
        let mut n = 0;
        for t in span.steps(TimeDelta::hours(1)) {
            if ds.jobs_running_at(t).is_empty() {
                continue;
            }
            let summary = RegimeSummary::at(&ds, t);
            util_sum += summary.mean;
            spread_sum += summary.p90 - summary.p10;
            max_shared = max_shared.max(CoallocationIndex::at(&ds, t).len());
            n += 1;
        }
        let n = n.max(1) as f64;
        println!(
            "{:<14} | {:>8.1}% | {:>21.3} | {:>18}",
            sched_name(sched),
            util_sum / n * 100.0,
            spread_sum / n,
            max_shared
        );
    }

    println!("\nleast-loaded / round-robin spread every job across all machines, so");
    println!("many jobs share each node (dense co-allocation links, the Fig 3(b) case).");
    println!("packing dedicates a node to one job until full, so far fewer nodes are");
    println!("shared and the per-node load is the most even.");
    let _ = Timestamp::ZERO;
    Ok(())
}

fn sched_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::LeastLoaded => "least-loaded",
        SchedulerKind::RoundRobin => "round-robin",
        SchedulerKind::Packing => "packing",
    }
}
