//! Renders a machine × time CPU-utilization heatmap of a full simulated day
//! and writes it as SVG — the temporal overview that complements the
//! snapshot bubble chart (the "behavioral lines" idea of the paper's ref
//! [21]). Also prints the sharpest load change across the day.
//!
//! Run with: `cargo run -p batchlens --example cluster_heatmap`

use batchlens::analytics::compare::SnapshotDiff;
use batchlens::render::heatmap::Heatmap;
use batchlens::render::svg::to_svg;
use batchlens::sim::scenario;
use batchlens::trace::{Metric, TimeDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = scenario::paper_day_with_machines(7, 100).run()?;
    let window = ds.span().unwrap();

    let scene = Heatmap::new(1200.0, 700.0)
        .bucket(TimeDelta::minutes(10))
        .max_rows(100)
        .render(&ds, Metric::Cpu, &window);
    let svg = to_svg(&scene);
    let out = std::env::temp_dir().join("batchlens_heatmap.svg");
    std::fs::write(&out, &svg)?;
    println!(
        "wrote {}×time CPU heatmap ({} KiB) to {}",
        ds.machine_count(),
        svg.len() / 1024,
        out.display()
    );

    // The mass shutdown at 44100 is the day's sharpest collapse.
    let diff = SnapshotDiff::between(&ds, scenario::T_FIG3C, scenario::T_SHUTDOWN);
    println!("\naround the mass shutdown:");
    println!("  {}", diff.summary());
    println!("  collapse detected: {}", diff.collapsed(0.1));

    Ok(())
}
