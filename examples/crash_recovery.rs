//! Crash/restart durability demo: a live monitor is killed mid-stream —
//! tearing the tail of its write-ahead log — restarted from the log, and
//! proven to end in the exact state of a monitor that never crashed.
//!
//! The crash schedule comes from the simulator's
//! [`CrashRestartRegime`](batchlens::sim::CrashRestartRegime): the process
//! dies at scripted times (losing un-synced trailing bytes of the active
//! WAL segment), stays down for the scripted downtime — deliveries arriving
//! meanwhile are lost, as against any dead collector — and restarts by
//! replaying the log with [`StreamMonitor::recover`]. A reference monitor
//! receives exactly the deliveries the crashing one accepted; at the end,
//! counters, alert buffers and live-window query frames must agree
//! bit-identically.
//!
//! Run with: `cargo run -p batchlens --example crash_recovery`

use std::fs::OpenOptions;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::{scenario, CrashRestartRegime, MonitorCrash};
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::wal::{WalConfig, WalWriter};
use batchlens::trace::{DatasetQuery, TimeDelta, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = scenario::fig3b(17).run()?;
    let mut records = export_usage_records(&dataset);
    records.sort_by_key(|r| (r.time, r.machine));
    let span = dataset.span().expect("simulated dataset has a span");
    println!(
        "streaming {} usage records over [{}, {})",
        records.len(),
        span.start(),
        span.end()
    );

    let wal_dir = std::env::temp_dir().join(format!("batchlens-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let cfg = StreamConfig {
        horizon: TimeDelta::DAY,
        ..Default::default()
    };

    // Two scripted crashes: one clean kill, one power-style failure that
    // tears 11 bytes (half a frame header) off the active segment.
    let mid = Timestamp::new((span.start().seconds() + span.end().seconds()) / 2);
    let regime = CrashRestartRegime::new(vec![
        MonitorCrash {
            at: Timestamp::new(span.start().seconds() + 600),
            restart_after: TimeDelta::minutes(5),
            torn_tail_bytes: 0,
        },
        MonitorCrash {
            at: mid,
            restart_after: TimeDelta::minutes(10),
            torn_tail_bytes: 11,
        },
    ]);

    // The crashing monitor, WAL-attached; the reference never crashes and
    // ingests exactly what the crashing one accepts.
    let live = StreamMonitor::new(cfg)?;
    live.attach_wal(WalWriter::open(&wal_dir, WalConfig::default())?);
    let reference = StreamMonitor::new(cfg)?;

    let live_cell = std::cell::RefCell::new(Some(live));
    let stats = regime.drive(
        records.into_iter().map(|r| (r.time, r)),
        |rec| {
            let cell = live_cell.borrow();
            let monitor = cell.as_ref().expect("monitor is up while delivering");
            monitor.ingest(rec);
            reference.ingest(rec);
        },
        |crash| {
            // Process death: the monitor object is dropped without any
            // orderly shutdown, and the crash optionally tears the tail of
            // the newest segment (bytes that never made it out of the page
            // cache).
            let monitor = live_cell.borrow_mut().take().expect("up before a crash");
            drop(monitor); // no detach, no sync — a kill, not a shutdown
            if crash.torn_tail_bytes > 0 {
                let newest = std::fs::read_dir(&wal_dir)
                    .expect("wal dir exists")
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "wal"))
                    .max()
                    .expect("at least one segment");
                let len = newest.metadata().expect("segment metadata").len();
                let file = OpenOptions::new()
                    .write(true)
                    .open(&newest)
                    .expect("open segment");
                file.set_len(len.saturating_sub(crash.torn_tail_bytes))
                    .expect("tear tail");
            }
            println!(
                "crash at t={} (torn tail: {} bytes), down for {}s",
                crash.at,
                crash.torn_tail_bytes,
                crash.restart_after.as_seconds()
            );
        },
        |crash| {
            let (monitor, report) =
                StreamMonitor::recover(&wal_dir, cfg).expect("recovery never fails on content");
            println!(
                "restart at t={}: replayed {} records, discarded {} bytes ({})",
                crash.restart_at(),
                report.records_replayed,
                report.bytes_discarded,
                report.reason
            );
            // Resume logging: the writer truncates the torn tail and
            // continues the sequence numbering.
            monitor.attach_wal(
                WalWriter::open(&wal_dir, WalConfig::default()).expect("wal writer resumes"),
            );
            *live_cell.borrow_mut() = Some(monitor);
        },
    );
    println!(
        "delivered {} records, lost {} to downtime, {} crashes",
        stats.delivered, stats.lost, stats.crashes
    );

    let live = live_cell
        .into_inner()
        .expect("drive ends with a live monitor");

    // The durability claim this demo proves end to end: at any moment, the
    // WAL alone suffices to rebuild the current monitor **bit-identically**
    // — even after two crashes, a torn segment tail, and lost deliveries.
    drop(live.detach_wal());
    let (rebuilt, report) = StreamMonitor::recover(&wal_dir, cfg)?;
    println!(
        "final recovery: {} records, {} bytes discarded ({})",
        report.records_replayed, report.bytes_discarded, report.reason
    );
    assert_eq!(rebuilt.state_version(), live.state_version());
    assert_eq!(rebuilt.ingested(), live.ingested());
    assert_eq!(rebuilt.stale_dropped(), live.stale_dropped());
    assert_eq!(rebuilt.late_accepted(), live.late_accepted());
    assert_eq!(rebuilt.total_alerts(), live.total_alerts());
    assert_eq!(rebuilt.peek_alerts(), live.peek_alerts());
    for probe in [span.start(), mid, span.end()] {
        assert_eq!(
            rebuilt.live_view().frame(probe),
            live.live_view().frame(probe),
            "recovered frame({probe}) must be bit-identical"
        );
    }
    println!(
        "rebuilt == live: version={} ingested={} alerts={} (never-crashed reference ingested {})",
        rebuilt.state_version(),
        rebuilt.ingested(),
        rebuilt.total_alerts(),
        reference.ingested()
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("crash recovery demo complete");
    Ok(())
}
