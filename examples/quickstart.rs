//! Quickstart: simulate a small cluster, open a BatchLens session, drive a
//! few interactions, and write a bubble-chart SVG.
//!
//! Run with: `cargo run -p batchlens --example quickstart`

use batchlens::interaction::Event;
use batchlens::sim::{SimConfig, Simulation};
use batchlens::trace::stats::DatasetStats;
use batchlens::BatchLens;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a small Alibaba-v2017-shaped cluster (seeded → reproducible).
    let dataset = Simulation::new(SimConfig::small(2025)).run()?;
    let stats = DatasetStats::compute(&dataset);
    println!(
        "simulated {} jobs, {} tasks, {} instances on {} machines",
        stats.jobs, stats.tasks, stats.instances, stats.machines
    );
    println!(
        "single-task jobs: {:.0}%, multi-instance tasks: {:.0}%",
        stats.single_task_job_fraction * 100.0,
        stats.multi_instance_task_fraction * 100.0
    );

    // 2. Open a session and jump to the first moment with running work.
    let mut app = BatchLens::new(dataset);
    app.jump_to_first_activity();
    println!("\nsnapshot at {}", app.now());

    let snapshot = app.snapshot();
    println!(
        "{} job bubble(s), {} node glyph(s)",
        snapshot.jobs.len(),
        snapshot.total_nodes()
    );

    // 3. Select the first running job and switch the detail metric.
    if let Some(job) = snapshot.jobs.first() {
        app.apply(Event::SelectJob(job.job));
        app.apply(Event::SetDetailMetric(batchlens::trace::Metric::Memory));
        println!("selected {}", job.job);
    }

    // 4. Render the bubble chart and report its size.
    let svg = app.render_bubble(700.0, 700.0);
    let out = std::env::temp_dir().join("batchlens_quickstart.svg");
    std::fs::write(&out, &svg)?;
    println!(
        "\nwrote bubble chart ({} bytes) to {}",
        svg.len(),
        out.display()
    );

    // 5. Step the snapshot forward and show the regime banner.
    app.apply(Event::StepTimestamp(600));
    println!(
        "{}",
        batchlens::report::regime_banner(app.dataset(), app.now())
    );

    Ok(())
}
