//! Minimal, offline stand-in for `parking_lot`: panic-free `lock()` built on
//! `std::sync`, recovering from poisoning (parking_lot has no poisoning).

use std::fmt;
use std::sync;

/// A mutex whose `lock` never returns a `Result` (parking_lot API shape).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
