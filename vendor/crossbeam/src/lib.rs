//! Minimal, offline stand-in for `crossbeam`: the `channel::bounded` MPSC
//! surface the examples use (delegating to `std::sync::mpsc`) and the
//! `deque::{Injector, Worker, Stealer}` work-stealing surface the
//! `batchlens-exec` pool is built on (mutex-backed, same API and the same
//! LIFO-owner / FIFO-thief semantics, without the lock-free internals).

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// A cloneable sending half.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }

        /// Sends `value` without blocking: a full channel returns it in
        /// `TrySendError::Full` (the real crate's semantics, via
        /// `SyncSender::try_send`).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value)
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns immediately with a value or an empty/disconnected error.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates values until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_round_trip() {
            let (tx, rx) = bounded(4);
            let t = std::thread::spawn(move || {
                for i in 0..10u32 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            t.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}

/// Work-stealing deques (subset of `crossbeam::deque`).
///
/// The real crate's types are lock-free; these stand-ins guard a `VecDeque`
/// with a mutex but preserve the observable contract the pool relies on:
///
/// * [`Worker::pop`] takes from the owner's end (LIFO for a `new_lifo`
///   worker),
/// * [`Stealer::steal`] and [`Injector::steal`] take from the opposite
///   (FIFO) end, so thieves drain the oldest work first,
/// * [`Injector::steal_batch_and_pop`] moves a batch into the worker's
///   local queue and immediately pops one task for the caller.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO injector queue shared by every worker.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the global queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local queue and pops one of
        /// them for the caller (the hot path of a work-stealing loop: one
        /// lock acquisition amortizes several tasks).
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let n = queue.len();
            if n == 0 {
                return Steal::Empty;
            }
            // Same batch sizing idea as the real crate: half the queue,
            // capped so one thief cannot hoard everything.
            let batch = (n / 2 + 1).min(32);
            let mut local = dest.queue.lock().expect("worker poisoned");
            for _ in 0..batch.saturating_sub(1) {
                match queue.pop_front() {
                    Some(t) => local.push_back(t),
                    None => break,
                }
            }
            let task = queue
                .pop_front()
                .expect("n > 0 and at most batch - 1 <= n - 1 items were moved");
            Steal::Success(task)
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// A worker's local deque; the owner pops LIFO, thieves steal FIFO.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker queue (the only flavour the pool uses).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker poisoned").push_back(task);
        }

        /// Pops a task from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker poisoned").pop_back()
        }

        /// True when the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker poisoned").is_empty()
        }

        /// A handle other threads use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A thief-side handle onto one worker's queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("worker poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_fifo_worker_lifo() {
            let inj: Injector<u32> = Injector::new();
            for i in 0..4 {
                inj.push(i);
            }
            assert_eq!(inj.steal(), Steal::Success(0));
            let w = Worker::new_lifo();
            w.push(10);
            w.push(11);
            assert_eq!(w.pop(), Some(11));
            assert_eq!(w.stealer().steal(), Steal::Success(10));
            assert!(w.is_empty());
        }

        #[test]
        fn batch_steal_fills_local_queue() {
            let inj: Injector<u32> = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            let got = inj.steal_batch_and_pop(&w);
            assert!(matches!(got, Steal::Success(_)));
            assert!(!w.is_empty());
            assert!(inj.len() < 10);
        }
    }
}
