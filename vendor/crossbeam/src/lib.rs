//! Minimal, offline stand-in for `crossbeam`: the `channel::bounded` MPSC
//! surface the examples use, delegating to `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// A cloneable sending half.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns immediately with a value or an empty/disconnected error.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates values until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_round_trip() {
            let (tx, rx) = bounded(4);
            let t = std::thread::spawn(move || {
                for i in 0..10u32 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            t.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}
