//! Minimal, offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's surface the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits (via a simple self-describing [`Value`] data
//! model), derive macros re-exported from `serde_derive`, and impls for the
//! std types that appear in BatchLens data structures.
//!
//! The data model is deliberately simple: `to_value` lowers a Rust value
//! into a [`Value`] tree, `from_value` raises it back. `serde_json` renders
//! the tree to JSON text and parses it back. Maps with non-string keys are
//! represented as sequences of `[key, value]` pairs in JSON, which keeps
//! round-trips lossless without serde's full trait machinery.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Map with arbitrary (not only string) keys.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Looks up `key` in a map whose keys are strings.
pub fn map_get<'a>(map: &'a [(Value, Value)], key: &str) -> Option<&'a Value> {
    map.iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError {
            msg: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into the intermediate representation.
    fn to_value(&self) -> Value;
}

/// A type that can be raised back from a [`Value`].
pub trait Deserialize: Sized {
    /// Raises a value of this type from the intermediate representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(u),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if matches!(v, Value::Null) {
            // serde_json writes non-finite floats as null.
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                Ok(($({
                    let _ = $idx; // positional
                    $name::from_value(it.next().ok_or_else(|| DeError::custom("tuple too short"))?)?
                },)+))
            }
        }
    )*};
}
impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_entries(v)?
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

/// Iterates map entries from either a `Map` or a sequence of `[k, v]` pairs
/// (the JSON encoding of non-string-keyed maps).
fn map_entries(v: &Value) -> Result<Box<dyn Iterator<Item = (&Value, &Value)> + '_>, DeError> {
    match v {
        Value::Map(m) => Ok(Box::new(m.iter().map(|(k, v)| (k, v)))),
        Value::Seq(s) => {
            for pair in s {
                match pair.as_seq() {
                    Some(p) if p.len() == 2 => {}
                    _ => return Err(DeError::custom("expected [key, value] pair")),
                }
            }
            Ok(Box::new(s.iter().map(|pair| {
                let p = pair.as_seq().expect("checked above");
                (&p[0], &p[1])
            })))
        }
        _ => Err(DeError::custom("expected map")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.0f64), (3, 4.0)];
        let rt = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(rt, v);

        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), vec![1.0f64, 2.0]);
        let rt = BTreeMap::<(u32, u32), Vec<f64>>::from_value(&m.to_value()).unwrap();
        assert_eq!(rt, m);

        let arr = [1.0f64, 2.0, 3.0];
        let rt = <[f64; 3]>::from_value(&arr.to_value()).unwrap();
        assert_eq!(rt, arr);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&5u32.to_value()).unwrap(),
            Some(5)
        );
    }
}
