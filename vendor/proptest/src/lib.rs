//! Minimal, offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `#![proptest_config(...)]`, range strategies over numeric
//! types, tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Cases are generated from a deterministic per-test seed (hash of the test
//! name and the case index), so failures are reproducible. There is no
//! shrinking: the failing case's index is reported instead.
//!
//! Like the real crate, the `PROPTEST_CASES` environment variable overrides
//! the case count; unlike the real crate it also overrides explicit
//! [`ProptestConfig::with_cases`] values — that is the hook CI's
//! deep-property job uses to run the same suites at 512 cases without
//! touching the sources.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

/// The `PROPTEST_CASES` override, when set to a parsable count.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases (`PROPTEST_CASES` in the
    /// environment takes precedence — the deep-run hook).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The `prop` namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Strategy for vectors with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.random_range(self.size.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector strategy of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Declares property tests. Each function's arguments are drawn from the
/// given strategies `cases` times; `prop_assert*` failures report the case
/// index for reproduction.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    (config = $config:expr;) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f was {f}");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..4, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!((0.0..5.0).contains(x));
            }
            let total: f64 = v.iter().sum();
            prop_assert!(total.is_finite());
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = super::case_rng("t", 3);
        let mut b = super::case_rng("t", 3);
        let sa: f64 = rand::Rng::random(&mut a);
        let sb: f64 = rand::Rng::random(&mut b);
        assert_eq!(sa, sb);
    }
}
