//! Minimal, offline stand-in for the `rand` crate (0.9-style API).
//!
//! Provides [`RngCore`] / [`Rng`] / [`SeedableRng`] and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64). The simulator only
//! needs uniform draws — `random::<f64>()`, `random_range(..)` — and
//! determinism under `seed_from_u64`; statistical quality of xoshiro256++ is
//! far beyond what the workload models can detect.

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods on any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias of [`Rng`] kept for source compatibility with code importing
/// `rand::RngExt`.
pub use Rng as RngExt;

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)`.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&z));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..200 {
            match rng.random_range(0u32..=1) {
                0 => saw_lo = true,
                _ => saw_hi = true,
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
