//! Minimal read-only memory mapping for the BatchLens workspace.
//!
//! The build environment has no network access, so this crate stands in for
//! the `memmap2` dependency with the one capability the columnar trace
//! store needs: map a file read-only and hand out `&[u8]`. Two backends sit
//! behind one type:
//!
//! * **Mapped** (unix): direct `mmap(2)`/`munmap(2)` FFI — no `libc` crate
//!   exists in the workspace, so the two symbols are declared here. Pages
//!   fault in lazily, which is what makes larger-than-RAM segment
//!   directories openable at all.
//! * **Owned** (everywhere): the file is read into an anonymous buffer.
//!   This is the portable fallback — non-unix targets, `mmap` failures
//!   (e.g. filesystems that refuse mapping), and callers that ask for it
//!   explicitly ([`Mmap::open_buffered`]) all land here, so tests run
//!   anywhere with identical semantics.
//!
//! The public API is safe. The usual `mmap` caveat applies and is accepted
//! by this workspace's usage: the mapped file must not be truncated while
//! the map is alive (BatchLens segments are immutable once sealed — they
//! are written to a temp name and never modified after).

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// The mapped region is PROT_READ and never handed out mutably; moving the
// raw pointer across threads is as safe as moving the Vec of the fallback.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

/// A read-only view of a file's bytes: `mmap`-backed where the platform
/// allows it, an owned in-memory copy otherwise. Dereferences to `[u8]`.
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Opens `path` read-only and maps it. On unix this tries `mmap(2)`
    /// first and silently falls back to a buffered read when the mapping
    /// is refused; elsewhere it always buffers. Empty files map to an
    /// empty slice without touching `mmap` (a zero-length mapping is
    /// invalid).
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let len = len as usize;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !sys::map_failed(ptr) {
                return Ok(Mmap {
                    inner: Inner::Mapped { ptr, len },
                });
            }
            // fall through to the buffered read
        }
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    /// Opens `path` through the portable fallback unconditionally: the
    /// whole file is read into an owned buffer. Useful for differential
    /// tests that must prove the two backends are observationally
    /// identical, and for platforms where mapping misbehaves.
    pub fn open_buffered(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    /// Whether this view is an actual `mmap` (false = owned fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Inner::Owned(buf) => buf,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = *self {
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str, contents: &[u8]) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "batchlens-mmap-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn mapped_and_buffered_views_agree() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("agree", &data);
        let mapped = Mmap::open(&path).unwrap();
        let buffered = Mmap::open_buffered(&path).unwrap();
        assert_eq!(&*mapped, &data[..]);
        assert_eq!(&*buffered, &data[..]);
        assert!(!buffered.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let m = Mmap::open(&path).unwrap();
        assert!(m.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_file("missing", b"x");
        std::fs::remove_file(&path).unwrap();
        assert!(Mmap::open(&path).is_err());
        assert!(Mmap::open_buffered(&path).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn unix_open_actually_maps() {
        let path = temp_file("maps", b"hello segment");
        let m = Mmap::open(&path).unwrap();
        assert!(m.is_mapped());
        assert_eq!(&*m, b"hello segment");
        std::fs::remove_file(&path).ok();
    }
}
