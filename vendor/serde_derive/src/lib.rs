//! Hand-rolled `#[derive(Serialize, Deserialize)]` macros for the vendored
//! serde subset (no `syn`/`quote` available offline).
//!
//! Supported shapes — everything the BatchLens workspace derives on:
//!
//! * structs with named fields (serialized as a string-keyed map),
//! * tuple structs (single field → the inner value, matching serde_json's
//!   newtype behaviour, so `#[serde(transparent)]` is honoured implicitly;
//!   several fields → a sequence),
//! * unit structs (serialized as `null`),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation),
//! * generic type parameters (each parameter gets a `Serialize` /
//!   `Deserialize` bound).
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one the
//! workspace uses is `transparent`, whose behaviour falls out of the newtype
//! rule above.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Type parameter identifiers (lifetimes and const params excluded).
    type_params: Vec<String>,
    /// All generic parameter identifiers in order, rendered for the type
    /// position (e.g. `["'a", "T"]`).
    all_params: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing --

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let item_kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let (type_params, all_params) = parse_generics(&tokens, &mut i);

    // Skip a where-clause if present (none in this workspace, but cheap).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "where" => i += 1,
            TokenTree::Group(_) | TokenTree::Punct(_) => break,
            _ => i += 1,
        }
    }

    let kind = if item_kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        }
    } else if item_kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        panic!("derive target must be a struct or enum, found `{item_kind}`");
    };

    Input {
        name,
        type_params,
        all_params,
        kind,
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` after the type name; returns (type params, all params).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut type_params = Vec::new();
    let mut all_params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (type_params, all_params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut pending_lifetime = false;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expecting_param => {
                pending_lifetime = true;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expecting_param = false,
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                let s = id.to_string();
                if pending_lifetime {
                    all_params.push(format!("'{s}"));
                    pending_lifetime = false;
                } else if s == "const" {
                    // const generic: the next ident is the param name.
                } else {
                    type_params.push(s.clone());
                    all_params.push(s);
                }
                expecting_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    (type_params, all_params)
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then skip the type up to a top-level ','.
        debug_assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips a type expression, stopping at a top-level `,` (or end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0isize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip a discriminant (`= expr`) up to the next top-level ','.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // ','
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen --

fn impl_header(input: &Input, trait_name: &str) -> String {
    let bounds: Vec<String> = input
        .type_params
        .iter()
        .map(|p| format!("{p}: ::serde::{trait_name}"))
        .collect();
    let generics = if bounds.is_empty() {
        String::new()
    } else {
        format!("<{}>", bounds.join(", "))
    };
    let ty_args = if input.all_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.all_params.join(", "))
    };
    format!(
        "impl{generics} ::serde::{trait_name} for {name}{ty_args}",
        name = input.name
    )
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s =
                String::from("let mut __m: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((::serde::Value::Str(String::from(\"{f}\")), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ty = &input.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from(
                            "let mut __f: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.push((::serde::Value::Str(String::from(\"{f}\")), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {pat} }} => {{ {inner} ::serde::Value::Map(vec![(::serde::Value::Str(String::from(\"{vn}\")), ::serde::Value::Map(__f))]) }},\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let pat = binders.join(", ");
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__x0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{ty}::{vn}({pat}) => ::serde::Value::Map(vec![(::serde::Value::Str(String::from(\"{vn}\")), {payload})]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}",
        header = impl_header(input, "Serialize")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}\"))?;\n"
            );
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: match ::serde::map_get(__m, \"{f}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => return Err(::serde::DeError::missing_field(\"{f}\")) }},\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n"
            );
            s.push_str(&format!(
                "if __s.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple length\")); }}\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", items.join(", ")));
            s
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            // Unit variants arrive as strings; payload variants as single-entry
            // maps keyed by the variant name.
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                        keyed_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    Shape::Named(fields) => {
                        let mut inner = format!(
                            "let __f = __payload.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map payload for {name}::{vn}\"))?;\n"
                        );
                        inner.push_str(&format!("return Ok({name}::{vn} {{\n"));
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: match ::serde::map_get(__f, \"{f}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => return Err(::serde::DeError::missing_field(\"{f}\")) }},\n"
                            ));
                        }
                        inner.push_str("});");
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
                    }
                    Shape::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!(
                                "return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?));"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "let __s = __payload.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence payload\"))?;\nif __s.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong payload length\")); }}\nreturn Ok({name}::{vn}({}));",
                                items.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n match __s {{\n{unit_arms} _ => {{}}\n }}\n}}\n\
                 if let Some(__m) = __v.as_map() {{\n if __m.len() == 1 {{\n if let Some(__k) = __m[0].0.as_str() {{\n let __payload = &__m[0].1;\n match __k {{\n{keyed_arms} _ => {{}}\n }}\n }}\n }}\n}}\n\
                 Err(::serde::DeError::custom(\"unknown variant for {name}\"))"
            )
        }
    };
    format!(
        "{header} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}",
        header = impl_header(input, "Deserialize")
    )
}
