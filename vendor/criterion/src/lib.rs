//! Minimal, offline stand-in for `criterion`.
//!
//! Implements the subset of the API the benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`, `BenchmarkId`,
//! `Throughput` — with a simple adaptive timer: each benchmark is warmed up
//! once, then iterated until a per-benchmark wall-clock budget is spent, and
//! the mean ns/iter is printed. Pass `--test` (as `cargo test` does for
//! harness-less targets) to run every benchmark exactly once.
//!
//! Results are also collected in-process and can be drained via
//! [`Criterion::take_results`] — the BENCH_trace.json emitter uses this.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One timed result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measurement: Duration::from_millis(200),
            sample_size: 100,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test` ⇒ single-iteration mode).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Sets the nominal sample count (scales the measurement budget).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up time (accepted for API compatibility; warm-up is one run).
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.to_string();
        self.run_one(id, &mut f);
        self
    }

    /// Drains the results collected so far.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Prints a final summary (no-op; results print as they complete).
    pub fn final_summary(&self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, f: &mut F) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            budget: self
                .measurement
                .mul_f64((self.sample_size as f64 / 100.0).clamp(0.1, 1.0)),
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iterations as f64
        };
        println!(
            "bench: {id:<50} {:>14.1} ns/iter ({} iters)",
            ns, bencher.iterations
        );
        self.results.push(BenchResult {
            id,
            ns_per_iter: ns,
            iterations: bencher.iterations,
        });
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the group's throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(full, &mut f);
        self.criterion.sample_size = saved;
        self
    }

    /// Benchmarks a function with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declared throughput of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`: one warm-up run, then iterations until the budget is spent
    /// (or exactly one iteration in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also sizes the first batch).
        let warm_start = Instant::now();
        black_box(f());
        let warm = warm_start.elapsed();
        if self.test_mode {
            self.total = warm;
            self.iterations = 1;
            return;
        }
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
            iterations += 1;
            if Instant::now() >= deadline || iterations >= 1_000_000 {
                break;
            }
        }
        self.total = total;
        self.iterations = iterations;
    }
}

/// Declares a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_results() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert!(results[0].iterations >= 1);
        assert_eq!(results[0].id, "g/noop");
        assert_eq!(results[1].id, "g/sum/4");
    }
}
