//! Minimal, offline stand-in for `serde_json` over the vendored serde
//! [`Value`] model.
//!
//! String-keyed maps render as JSON objects; maps with structured keys
//! (tuples, typed ids) render as arrays of `[key, value]` pairs so the
//! round-trip stays lossless. Floats use Rust's shortest-round-trip
//! formatting, and non-finite floats serialize as `null` (matching real
//! serde_json).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest representation that round-trips through parse.
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_items(
                out,
                items.iter(),
                indent,
                depth,
                ('[', ']'),
                |out, item, d| write_value(out, item, indent, d),
            );
        }
        Value::Map(entries) => {
            let all_string_keys = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if all_string_keys {
                write_items(
                    out,
                    entries.iter(),
                    indent,
                    depth,
                    ('{', '}'),
                    |out, (k, v), d| {
                        write_value(out, k, indent, d);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_value(out, v, indent, d);
                    },
                );
            } else {
                // Structured keys: array of [key, value] pairs.
                write_items(
                    out,
                    entries.iter(),
                    indent,
                    depth,
                    ('[', ']'),
                    |out, (k, v), d| {
                        out.push('[');
                        write_value(out, k, indent, d);
                        out.push(',');
                        write_value(out, v, indent, d);
                        out.push(']');
                    },
                );
            }
        }
    }
}

fn write_items<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(
            from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(),
            1.25
        );
        assert_eq!(from_str::<f64>(&to_string(&1.0f64).unwrap()).unwrap(), 1.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, 2.0, -3.25];
        assert_eq!(from_str::<Vec<f64>>(&to_string(&v).unwrap()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        m.insert("b".to_string(), vec![3]);
        let text = to_string(&m).unwrap();
        assert!(
            text.starts_with('{'),
            "string keys render as an object: {text}"
        );
        assert_eq!(from_str::<BTreeMap<String, Vec<u32>>>(&text).unwrap(), m);

        // Structured keys fall back to [key, value] pair arrays.
        let mut m2 = BTreeMap::new();
        m2.insert((1u32, 2u32), 3u32);
        let text2 = to_string(&m2).unwrap();
        assert!(
            text2.starts_with('['),
            "tuple keys render as pairs: {text2}"
        );
        assert_eq!(from_str::<BTreeMap<(u32, u32), u32>>(&text2).unwrap(), m2);
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![Some(1u32), None, Some(3)];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[0.1f64, 1e-300, 12345.678901234567, f64::MAX] {
            let rt = from_str::<f64>(&to_string(&f).unwrap()).unwrap();
            assert_eq!(rt, f);
        }
    }
}
