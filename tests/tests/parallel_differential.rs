//! Differential proptests for the parallel execution layer: every parallel
//! path must be **bit-identical to the serial path** at any thread count.
//!
//! Thread counts {1, 2, 7} cover the serial fallback, the minimal pool and
//! an odd oversubscribed pool (more workers than this container has cores),
//! so scheduling order varies wildly between runs — any dependence on it
//! would flake here.

use batchlens::analytics::aggregate::ClusterTimeline;
use batchlens::analytics::detect::{detect_all_machines, Ensemble, ThresholdDetector};
use batchlens::sim::{SimConfig, Simulation};
use batchlens::trace::{
    BatchInstanceRecord, BatchTaskRecord, JobId, MachineId, ServerUsageRecord, TaskId, TaskStatus,
    TimeSeries, Timestamp, TraceDataset, TraceDatasetBuilder, TraceError, UtilizationTriple,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// A random record soup: tasks for every referenced job, instances over a
/// handful of machines, usage samples (deduplicated per machine/time so the
/// success path is exercised — error parity has its own tests below).
#[derive(Debug, Clone)]
struct Soup {
    tasks: Vec<BatchTaskRecord>,
    instances: Vec<BatchInstanceRecord>,
    usage: Vec<ServerUsageRecord>,
}

fn soup_strategy() -> impl Strategy<Value = Soup> {
    (
        prop::collection::vec(
            // (job, task, machine, start, duration)
            (0u32..6, 1u32..4, 0u32..8, 0i64..5_000, 1i64..4_000),
            1..60,
        ),
        prop::collection::vec(
            // (machine, time, cpu)
            (0u32..8, 0i64..8_000, 0.0f64..1.0),
            1..300,
        ),
    )
        .prop_map(|(inst_rows, usage_rows)| {
            let mut tasks = Vec::new();
            let mut instances = Vec::new();
            let mut seen_task = std::collections::BTreeSet::new();
            let mut seq_of = std::collections::BTreeMap::new();
            for (job, task, machine, start, dur) in inst_rows {
                if seen_task.insert((job, task)) {
                    tasks.push(BatchTaskRecord {
                        create_time: Timestamp::new(0),
                        modify_time: Timestamp::new(10_000),
                        job: JobId::new(job),
                        task: TaskId::new(task),
                        instance_count: 1,
                        status: TaskStatus::Terminated,
                        plan_cpu: 1.0,
                        plan_mem: 0.5,
                    });
                }
                let seq = seq_of.entry((job, task)).or_insert(0u32);
                instances.push(BatchInstanceRecord {
                    start_time: Timestamp::new(start),
                    end_time: Timestamp::new(start + dur),
                    job: JobId::new(job),
                    task: TaskId::new(task),
                    seq: *seq,
                    total: 1,
                    machine: MachineId::new(machine),
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                });
                *seq += 1;
            }
            let mut seen_usage = std::collections::BTreeSet::new();
            let usage = usage_rows
                .into_iter()
                .filter(|&(machine, t, _)| seen_usage.insert((machine, t)))
                .map(|(machine, t, cpu)| ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(machine),
                    util: UtilizationTriple::clamped(cpu, cpu * 0.7, cpu * 0.4),
                })
                .collect();
            Soup {
                tasks,
                instances,
                usage,
            }
        })
}

fn build_with_threads(soup: &Soup, threads: usize) -> Result<TraceDataset, TraceError> {
    let mut b = TraceDatasetBuilder::new();
    b.par_threads(threads);
    b.extend_tables(
        soup.tasks.iter().copied(),
        soup.instances.iter().copied(),
        soup.usage.iter().cloned(),
        std::iter::empty(),
    );
    b.build()
}

/// Short random series on irregular grids, enough of them to cross the
/// 64-series chunk boundary of the parallel sweep tree.
fn series_set() -> impl Strategy<Value = Vec<TimeSeries>> {
    prop::collection::vec(
        prop::collection::vec((0i64..5_000, -2.0f64..2.0), 1..25),
        1..140,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut samples| {
                samples.sort_by_key(|(t, _)| *t);
                samples.dedup_by_key(|(t, _)| *t);
                samples
                    .into_iter()
                    .map(|(t, v)| (Timestamp::new(t), v))
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel dataset build produces a bit-identical dataset at every
    /// thread count (indexes, series, spans — full structural equality).
    #[test]
    fn dataset_build_parallel_equals_serial(soup in soup_strategy()) {
        let serial = build_with_threads(&soup, 1).expect("soup is valid");
        for threads in THREAD_COUNTS {
            let par = build_with_threads(&soup, threads).expect("soup is valid");
            prop_assert_eq!(&par, &serial, "threads={}", threads);
        }
    }

    /// The chunk-merged parallel sweeps are bit-identical at every thread
    /// count, and max (associative) additionally reproduces the serial
    /// multiset sweep bit for bit at any chunk count.
    #[test]
    fn timeline_sweeps_parallel_equal_serial(series in series_set()) {
        let refs: Vec<&TimeSeries> = series.iter().collect();
        let mean1 = TimeSeries::mean_of_par(refs.iter().copied(), 1);
        let sum1 = TimeSeries::sum_of_par(refs.iter().copied(), 1);
        let max1 = TimeSeries::max_of_par(refs.iter().copied(), 1);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&TimeSeries::mean_of_par(refs.iter().copied(), threads), &mean1);
            prop_assert_eq!(&TimeSeries::sum_of_par(refs.iter().copied(), threads), &sum1);
            prop_assert_eq!(&TimeSeries::max_of_par(refs.iter().copied(), threads), &max1);
        }
        prop_assert_eq!(&max1, &TimeSeries::max_of(refs.iter().copied()));
        // Mean/sum associate per chunk: same grid, same values up to float
        // rounding of the fixed combine tree.
        let serial_mean = TimeSeries::mean_of(refs.iter().copied());
        prop_assert_eq!(mean1.times(), serial_mean.times());
        for (a, b) in mean1.values().iter().zip(serial_mean.values()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{} vs {}", a, b);
        }
        // At or below one chunk the tree *is* the serial sweep.
        if refs.len() <= 64 {
            prop_assert_eq!(&mean1, &serial_mean);
            prop_assert_eq!(&sum1, &TimeSeries::sum_of(refs.iter().copied()));
        }
    }

    /// Batch detection fanned out over every machine is bit-identical to
    /// the serial per-machine loop at every thread count.
    #[test]
    fn detect_all_machines_parallel_equals_serial(soup in soup_strategy()) {
        let ds = build_with_threads(&soup, 1).expect("soup is valid");
        let detector = ThresholdDetector { high: 0.5, min_samples: 1 };
        let serial = detect_all_machines(&ds, &detector, None, 1);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                &detect_all_machines(&ds, &detector, None, threads),
                &serial,
                "threads={}",
                threads
            );
        }
    }
}

/// `ClusterTimeline` over a real simulated cluster (wider than one sweep
/// chunk) is bit-identical at every thread count.
#[test]
fn cluster_timeline_bit_identical_across_thread_counts() {
    let mut cfg = SimConfig::small(5);
    cfg.machines = 150; // > one 64-series chunk per metric
    let ds = Simulation::new(cfg).run().unwrap();
    let serial = ClusterTimeline::build_with_threads(&ds, 1);
    for threads in [2usize, 7] {
        assert_eq!(
            ClusterTimeline::build_with_threads(&ds, threads),
            serial,
            "threads={threads}"
        );
    }
}

/// A full simulated dataset (the production path: `Simulation::run` goes
/// through the parallel builder) is bit-identical at every thread count.
#[test]
fn simulated_dataset_bit_identical_across_thread_counts() {
    let ds1 = Simulation::new(SimConfig::small(9)).run().unwrap();
    // `Simulation::run` uses the process default; rebuild its records
    // through explicit thread counts via the ensemble detector path instead:
    // compare cluster-wide detection, which touches every index and series.
    let ensemble = Ensemble::standard();
    let serial = detect_all_machines(&ds1, &ensemble, None, 1);
    for threads in [2usize, 7] {
        assert_eq!(detect_all_machines(&ds1, &ensemble, None, threads), serial);
    }
}

/// Builder errors must propagate as `Err` from worker threads — never as a
/// panic — and name the same offending record at every thread count.
#[test]
fn builder_errors_propagate_from_workers() {
    // Duplicate usage timestamps on one machine, buried in a large table so
    // the sharded (actually multi-threaded) path is exercised.
    let mut b = TraceDatasetBuilder::new();
    b.par_threads(7);
    for m in 0..40u32 {
        for i in 0..600i64 {
            b.push_usage(ServerUsageRecord {
                time: Timestamp::new(i * 60),
                machine: MachineId::new(m),
                util: UtilizationTriple::clamped(0.3, 0.3, 0.3),
            });
        }
    }
    b.push_usage(ServerUsageRecord {
        time: Timestamp::new(120), // duplicate on machine 17
        machine: MachineId::new(17),
        util: UtilizationTriple::clamped(0.9, 0.9, 0.9),
    });
    let err = b.build().expect_err("duplicate usage timestamp");
    assert!(
        matches!(err, TraceError::UnorderedSamples { .. }),
        "{err:?}"
    );

    // Duplicate instances far enough into the sorted table to cross the
    // validation shard boundary (8192 records per shard).
    let mut b = TraceDatasetBuilder::new();
    b.par_threads(7);
    b.allow_dangling_instances();
    let inst = |job: u32, seq: u32| BatchInstanceRecord {
        start_time: Timestamp::new(0),
        end_time: Timestamp::new(100),
        job: JobId::new(job),
        task: TaskId::new(1),
        seq,
        total: 1,
        machine: MachineId::new(job % 16),
        status: TaskStatus::Terminated,
        cpu_avg: 0.1,
        cpu_max: 0.2,
        mem_avg: 0.1,
        mem_max: 0.2,
    };
    for job in 0..20_000u32 {
        b.push_instance(inst(job, 0));
    }
    b.push_instance(inst(19_997, 0)); // duplicate near the table's end
    let errs: Vec<TraceError> = [1usize, 2, 7]
        .into_iter()
        .map(|threads| {
            let mut b = b.clone();
            b.par_threads(threads);
            b.build().expect_err("duplicate instance")
        })
        .collect();
    assert!(
        matches!(&errs[0], TraceError::DuplicateInstance { .. }),
        "{errs:?}"
    );
    assert_eq!(errs[1], errs[0], "error differs at 2 threads");
    assert_eq!(errs[2], errs[0], "error differs at 7 threads");
}

/// The SLA checker and behavior-vector fan-outs also honor the determinism
/// contract (they ride the same pool).
#[test]
fn sla_and_behavior_fan_outs_are_deterministic() {
    use batchlens::analytics::behavior::behavior_vectors_with_threads;
    use batchlens::analytics::sla::{check_with_threads, SlaPolicy};
    let ds = Simulation::new(SimConfig::small(3)).run().unwrap();
    let window = ds.span().unwrap();
    let policy = SlaPolicy::default();
    let sla1 = check_with_threads(&ds, &policy, 1);
    let beh1 = behavior_vectors_with_threads(&ds, &window, 1);
    for threads in [2usize, 7] {
        assert_eq!(check_with_threads(&ds, &policy, threads), sla1);
        assert_eq!(behavior_vectors_with_threads(&ds, &window, threads), beh1);
    }
}
