//! Differential proptests for the online rolling index layer: every
//! [`DatasetQuery`] a `LiveWindowView` answers must be **bit-identical** to
//! the batch `TraceDataset` answer over the same records — the stream/batch
//! analogue of `parallel_differential`.
//!
//! Each case generates a random record soup (irregular grids, staggered
//! machines, duplicate timestamps, zero-length and straggler instance
//! windows, bounded out-of-order delivery), streams it into a
//! `StreamMonitor` one record at a time, replays the monitor's documented
//! acceptance rule as a golden model to derive the batch feed, builds the
//! indexed `TraceDataset` from that feed, and compares the full shared
//! query surface at probe timestamps across the window.

use std::collections::BTreeSet;

use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{
    BatchInstanceRecord, BatchTaskRecord, DatasetQuery, JobId, MachineEvent, MachineEventRecord,
    MachineId, Metric, ServerUsageRecord, TaskId, TaskStatus, TimeDelta, TimeRange, Timestamp,
    TraceDataset, TraceDatasetBuilder, UtilizationTriple,
};
use proptest::prelude::*;

/// A random record soup plus its delivery order.
#[derive(Debug, Clone)]
struct Soup {
    tasks: Vec<BatchTaskRecord>,
    instances: Vec<BatchInstanceRecord>,
    /// Usage records in delivery order: per-machine time-ordered modulo a
    /// bounded jitter (see [`soup_strategy`]), so some arrive late within
    /// the monitor's tolerance and some beyond it.
    usage_deliveries: Vec<ServerUsageRecord>,
    events: Vec<MachineEventRecord>,
}

const MACHINES: u32 = 6;
/// Delivery jitter stays under this; the monitor's tolerance in the tests.
const TOLERANCE_S: i64 = 240;

fn soup_strategy() -> impl Strategy<Value = Soup> {
    (
        prop::collection::vec(
            // (job, task, machine, start, duration) — durations of 0 (empty)
            // and huge (straggler) both appear.
            (0u32..5, 1u32..4, 0..MACHINES, 0i64..4_000, 0i64..3_000),
            1..50,
        ),
        prop::collection::vec(
            // (machine, time, cpu, delivery jitter)
            (0..MACHINES, 0i64..6_000, 0.0f64..1.0, 0i64..TOLERANCE_S),
            1..250,
        ),
        prop::collection::vec(
            // (machine, time, event kind selector)
            (0..MACHINES, 0i64..6_000, 0u8..4),
            0..12,
        ),
    )
        .prop_map(|(inst_rows, usage_rows, event_rows)| {
            let mut tasks = Vec::new();
            let mut instances = Vec::new();
            let mut seen_task = BTreeSet::new();
            let mut seq_of = std::collections::BTreeMap::new();
            for (job, task, machine, start, dur) in inst_rows {
                if seen_task.insert((job, task)) {
                    tasks.push(BatchTaskRecord {
                        create_time: Timestamp::new(0),
                        modify_time: Timestamp::new(20_000),
                        job: JobId::new(job),
                        task: TaskId::new(task),
                        instance_count: 1,
                        status: TaskStatus::Terminated,
                        plan_cpu: 1.0,
                        plan_mem: 0.5,
                    });
                }
                let seq = seq_of.entry((job, task)).or_insert(0u32);
                // Every tenth duration becomes a straggler spanning far past
                // the soup's horizon.
                let dur = if dur % 10 == 9 { 50_000 } else { dur };
                instances.push(BatchInstanceRecord {
                    start_time: Timestamp::new(start),
                    end_time: Timestamp::new(start + dur),
                    job: JobId::new(job),
                    task: TaskId::new(task),
                    seq: *seq,
                    total: 1,
                    machine: MachineId::new(machine),
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                });
                *seq += 1;
            }
            // Usage deliveries ordered by (time + jitter) — a realistic
            // interleaved feed where records arrive up to TOLERANCE_S late
            // relative to faster peers. Duplicate (machine, time) rows stay
            // in: the monitor must reject re-deliveries of a retained
            // timestamp, and the golden model mirrors that.
            let mut deliveries: Vec<(i64, ServerUsageRecord)> = usage_rows
                .into_iter()
                .map(|(machine, t, cpu, jitter)| {
                    let rec = ServerUsageRecord {
                        time: Timestamp::new(t),
                        machine: MachineId::new(machine),
                        util: UtilizationTriple::clamped(cpu, cpu * 0.7, cpu * 0.4),
                    };
                    (t + jitter, rec)
                })
                .collect();
            deliveries.sort_by_key(|&(arrival, rec)| (arrival, rec.machine, rec.time));
            let usage_deliveries = deliveries.into_iter().map(|(_, rec)| rec).collect();
            // Duplicate (machine, time) events stay in: both sides must
            // resolve equal-time ties dead-wins, independent of order.
            let events = event_rows
                .into_iter()
                .map(|(machine, t, kind)| MachineEventRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(machine),
                    event: match kind {
                        0 => MachineEvent::Add,
                        1 => MachineEvent::SoftError,
                        2 => MachineEvent::HardError,
                        _ => MachineEvent::Remove,
                    },
                    capacity_cpu: 1.0,
                    capacity_mem: 1.0,
                    capacity_disk: 1.0,
                })
                .collect();
            Soup {
                tasks,
                instances,
                usage_deliveries,
                events,
            }
        })
}

/// Streams the soup into a monitor (usage in delivery order, instances and
/// events shuffled deterministically by a round-robin pick) and builds the
/// batch dataset from the records the monitor's documented acceptance rule
/// admits. Returns `(monitor, dataset, rejected usage records)`.
fn stream_and_build(soup: &Soup, cfg: StreamConfig) -> (StreamMonitor, TraceDataset, u64) {
    let monitor = StreamMonitor::new(cfg).unwrap();
    // Interleave structural records with usage so index maintenance and
    // window maintenance interleave like a real feed. Deterministic order.
    for (i, rec) in soup.instances.iter().enumerate() {
        if i % 2 == 0 {
            monitor.ingest_instance(*rec);
        } else {
            // The open/close path must land in the same indexed state.
            monitor.instance_started(rec.job, rec.task, rec.seq, rec.machine, rec.start_time);
            monitor.instance_finished(rec.job, rec.task, rec.seq, rec.end_time);
        }
    }
    for ev in soup.events.iter().rev() {
        // Reverse arrival: liveness checkpoints must sort themselves.
        monitor.ingest_machine_event(*ev);
    }
    // Golden model of the usage acceptance rule: last-seen per machine,
    // accept in-order or within tolerance (first delivery per timestamp).
    let mut accepted: Vec<ServerUsageRecord> = Vec::new();
    let mut seen: std::collections::BTreeMap<MachineId, (Timestamp, BTreeSet<Timestamp>)> =
        std::collections::BTreeMap::new();
    let mut rejected = 0u64;
    for rec in &soup.usage_deliveries {
        monitor.ingest(*rec);
        let entry = seen
            .entry(rec.machine)
            .or_insert_with(|| (rec.time, BTreeSet::new()));
        let ok = if entry.1.is_empty() || rec.time > entry.0 {
            entry.0 = rec.time;
            true
        } else {
            entry.0 - rec.time <= cfg.ooo_tolerance && !entry.1.contains(&rec.time)
        };
        if ok {
            entry.1.insert(rec.time);
            accepted.push(*rec);
        } else {
            rejected += 1;
        }
    }
    let mut b = TraceDatasetBuilder::new();
    b.extend_tables(
        soup.tasks.iter().copied(),
        soup.instances.iter().copied(),
        accepted,
        soup.events.iter().copied(),
    );
    let ds = b.build().expect("accepted soup is valid");
    (monitor, ds, rejected)
}

/// Probe timestamps covering the soup's span, its edges and far outside.
fn probes() -> impl Iterator<Item = Timestamp> {
    (-500..7_000)
        .step_by(171)
        .chain([0, 3_999, 4_000, 5_999, 6_000, 55_000, -10_000])
        .map(Timestamp::new)
}

/// Asserts the full shared query surface equal at `t`.
fn assert_queries_equal(
    live: &batchlens::stream::LiveWindowView<'_>,
    ds: &TraceDataset,
    t: Timestamp,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        live.jobs_running_at(t),
        DatasetQuery::jobs_running_at(ds, t),
        "jobs_running_at({})",
        t
    );
    prop_assert_eq!(
        live.running_triples_at(t),
        ds.running_triples_at(t),
        "running_triples_at({})",
        t
    );
    prop_assert_eq!(
        live.running_instance_count_at(t),
        DatasetQuery::running_instance_count_at(ds, t),
        "running_instance_count_at({})",
        t
    );
    prop_assert_eq!(
        live.machines_active_at(t),
        ds.machines_active_at(t),
        "machines_active_at({})",
        t
    );
    for m in 0..MACHINES {
        let m = MachineId::new(m);
        prop_assert_eq!(
            live.alive_at(m, t),
            DatasetQuery::alive_at(ds, m, t),
            "alive_at({}, {})",
            m,
            t
        );
        // Bit-identical utilization triples (f64 equality, not tolerance).
        prop_assert_eq!(
            live.util_at(m, t),
            DatasetQuery::util_at(ds, m, t),
            "util_at({}, {})",
            m,
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With a horizon wide enough to retain everything, every shared query
    /// is bit-identical between the live view and the batch dataset at
    /// every probe — including out-of-order usage arrivals within
    /// tolerance, which both sides must retain identically.
    #[test]
    fn live_window_queries_equal_batch(soup in soup_strategy()) {
        let cfg = StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            ..Default::default()
        };
        let (monitor, ds, rejected) = stream_and_build(&soup, cfg);
        prop_assert_eq!(monitor.stale_dropped(), rejected, "acceptance-rule parity");
        let live = monitor.live_view();
        // The two sources agree on the machine universe.
        prop_assert_eq!(live.machine_ids(), ds.machine_ids());
        for t in probes() {
            assert_queries_equal(&live, &ds, t)?;
        }
        // Windowed series extraction, over a few windows.
        for (lo, hi) in [(-100i64, 2_000i64), (1_000, 1_001), (0, 6_500)] {
            let w = TimeRange::new(Timestamp::new(lo), Timestamp::new(hi)).unwrap();
            for m in 0..MACHINES {
                let m = MachineId::new(m);
                for metric in Metric::ALL {
                    prop_assert_eq!(
                        live.series_window(m, metric, &w),
                        ds.series_window(m, metric, &w),
                        "series_window({}, {:?}, [{}, {}))",
                        m, metric, lo, hi
                    );
                }
            }
        }
    }

    /// With a tight horizon, eviction may discard old intervals — but every
    /// structural query **inside the retained window** (probes at or after
    /// `frontier - horizon`) still equals the batch answer: eviction only
    /// removes intervals that can no longer match there.
    #[test]
    fn eviction_preserves_in_window_equality(soup in soup_strategy()) {
        let horizon = TimeDelta::seconds(2_500);
        let cfg = StreamConfig {
            horizon,
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            ..Default::default()
        };
        let (monitor, ds, _) = stream_and_build(&soup, cfg);
        let live = monitor.live_view();
        // The frontier is the max structural event time the monitor saw.
        let frontier = soup
            .instances
            .iter()
            .map(|r| r.end_time.max(r.start_time))
            .max();
        let Some(frontier) = frontier else { return Ok(()) };
        let cutoff = frontier - horizon;
        for t in probes().filter(|&t| t >= cutoff) {
            prop_assert_eq!(
                live.jobs_running_at(t),
                DatasetQuery::jobs_running_at(&ds, t),
                "jobs_running_at({}) inside retained window (cutoff {})",
                t,
                cutoff
            );
            prop_assert_eq!(
                live.running_triples_at(t),
                ds.running_triples_at(t),
                "running_triples_at({})",
                t
            );
        }
    }

    /// The generic analytics consumers — hierarchy snapshot and
    /// co-allocation index — produce structurally equal results from either
    /// source (they only see the DatasetQuery surface).
    #[test]
    fn snapshots_and_coalloc_equal_from_either_source(soup in soup_strategy()) {
        use batchlens::analytics::coalloc::CoallocationIndex;
        use batchlens::analytics::hierarchy::HierarchySnapshot;
        let cfg = StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            ..Default::default()
        };
        let (monitor, ds, _) = stream_and_build(&soup, cfg);
        let live = monitor.live_view();
        for t in (0..6_000).step_by(997).map(Timestamp::new) {
            prop_assert_eq!(
                HierarchySnapshot::at(&live, t),
                HierarchySnapshot::at(&ds, t),
                "hierarchy snapshot at {}",
                t
            );
            prop_assert_eq!(
                CoallocationIndex::at(&live, t),
                CoallocationIndex::at(&ds, t),
                "coallocation at {}",
                t
            );
        }
    }
}

/// Beyond-tolerance stragglers are rejected by the monitor and must *not*
/// be fed to the batch side — the golden model in `stream_and_build`
/// replicates the rule; this pins it on a hand-built case.
#[test]
fn beyond_tolerance_stragglers_stay_dropped() {
    let cfg = StreamConfig {
        horizon: TimeDelta::hours(100),
        ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
        ..Default::default()
    };
    let monitor = StreamMonitor::new(cfg).unwrap();
    let rec = |t: i64, cpu: f64| ServerUsageRecord {
        time: Timestamp::new(t),
        machine: MachineId::new(0),
        util: UtilizationTriple::clamped(cpu, 0.2, 0.2),
    };
    monitor.ingest(rec(1_000, 0.5));
    monitor.ingest(rec(1_000 - TOLERANCE_S, 0.6)); // exactly at tolerance: in
    monitor.ingest(rec(1_000 - TOLERANCE_S - 1, 0.7)); // beyond: dropped
    monitor.ingest(rec(1_000, 0.9)); // duplicate: dropped
    assert_eq!(monitor.late_accepted(), 1);
    assert_eq!(monitor.stale_dropped(), 2);
    let s = monitor
        .series(MachineId::new(0), Metric::Cpu)
        .expect("machine tracked");
    assert_eq!(s.len(), 2);
    // The retained window equals a batch build over the accepted records.
    let mut b = TraceDatasetBuilder::new();
    b.push_usage(rec(1_000, 0.5));
    b.push_usage(rec(1_000 - TOLERANCE_S, 0.6));
    let ds = b.build().unwrap();
    let w = TimeRange::new(Timestamp::new(0), Timestamp::new(2_000)).unwrap();
    assert_eq!(
        monitor
            .live_view()
            .series_window(MachineId::new(0), Metric::Cpu, &w),
        ds.series_window(MachineId::new(0), Metric::Cpu, &w)
    );
}
