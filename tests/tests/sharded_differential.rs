//! Differential proptests for the sharded ingestion facade: a
//! [`ShardedMonitor`] fed a delivery sequence — mixed record-at-a-time and
//! sealed batch epochs, with stragglers and out-of-order arrivals — must be
//! **bit-identical** to a single [`StreamMonitor`] fed the same records one
//! at a time, on every [`DatasetQuery`] method, on transactional frames, on
//! every counter, and on the global alert sequence (values *and* sequence
//! numbers).
//!
//! Each case runs the comparison at shard counts {1, 4} × worker-pool
//! widths {1, 8}: shard count must never change an answer, and neither may
//! the parallelism of the epoch fan-out. CI additionally re-runs the whole
//! suite under `BATCHLENS_THREADS={1,8}` for the pool-default paths.

use std::collections::BTreeSet;

use batchlens::shard::ShardedMonitor;
use batchlens::stream::{Alert, BatchSequencer, StreamConfig, StreamMonitor};
use batchlens::trace::{
    BatchInstanceRecord, DatasetQuery, JobId, MachineEvent, MachineEventRecord, MachineId, Metric,
    ServerUsageRecord, TaskId, TaskStatus, TimeDelta, TimeRange, Timestamp, UtilizationTriple,
};
use proptest::prelude::*;

const MACHINES: u32 = 8;
/// The monitor tolerance; delivery jitter deliberately exceeds it so some
/// records are beyond-tolerance stragglers on both sides.
const TOLERANCE_S: i64 = 180;

/// A random record soup plus its delivery order.
#[derive(Debug, Clone)]
struct Soup {
    instances: Vec<BatchInstanceRecord>,
    /// Usage records in delivery order (bounded jitter, some beyond the
    /// monitor tolerance, duplicate timestamps included).
    usage_deliveries: Vec<ServerUsageRecord>,
    events: Vec<MachineEventRecord>,
    /// Where to cut `usage_deliveries` into alternating single-ingest runs
    /// and sealed batch epochs.
    chunk: usize,
}

fn soup_strategy() -> impl Strategy<Value = Soup> {
    (
        prop::collection::vec(
            // (job, task, machine, start, duration)
            (0u32..5, 1u32..4, 0..MACHINES, 0i64..4_000, 0i64..3_000),
            1..40,
        ),
        prop::collection::vec(
            // (machine, time, cpu, delivery jitter — up to 2x tolerance)
            (0..MACHINES, 0i64..6_000, 0.0f64..1.0, 0i64..2 * TOLERANCE_S),
            1..220,
        ),
        prop::collection::vec((0..MACHINES, 0i64..6_000, 0u8..4), 0..10),
        5usize..40,
    )
        .prop_map(|(inst_rows, usage_rows, event_rows, chunk)| {
            let mut instances = Vec::new();
            let mut seq_of = std::collections::BTreeMap::new();
            for (job, task, machine, start, dur) in inst_rows {
                let seq = seq_of.entry((job, task)).or_insert(0u32);
                instances.push(BatchInstanceRecord {
                    start_time: Timestamp::new(start),
                    end_time: Timestamp::new(start + dur),
                    job: JobId::new(job),
                    task: TaskId::new(task),
                    seq: *seq,
                    total: 1,
                    machine: MachineId::new(machine),
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                });
                *seq += 1;
            }
            let mut deliveries: Vec<(i64, ServerUsageRecord)> = usage_rows
                .into_iter()
                .map(|(machine, t, cpu, jitter)| {
                    let rec = ServerUsageRecord {
                        time: Timestamp::new(t),
                        machine: MachineId::new(machine),
                        util: UtilizationTriple::clamped(cpu, cpu * 0.7, cpu * 0.4),
                    };
                    (t + jitter, rec)
                })
                .collect();
            deliveries.sort_by_key(|&(arrival, rec)| (arrival, rec.machine, rec.time));
            let events = event_rows
                .into_iter()
                .map(|(machine, t, kind)| MachineEventRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(machine),
                    event: match kind {
                        0 => MachineEvent::Add,
                        1 => MachineEvent::SoftError,
                        2 => MachineEvent::HardError,
                        _ => MachineEvent::Remove,
                    },
                    capacity_cpu: 1.0,
                    capacity_mem: 1.0,
                    capacity_disk: 1.0,
                })
                .collect();
            Soup {
                instances,
                usage_deliveries: deliveries.into_iter().map(|(_, rec)| rec).collect(),
                events,
                chunk,
            }
        })
}

/// Feeds the soup identically into `single` (every record one at a time)
/// and `sharded` (even chunks one at a time, odd chunks as sealed batch
/// epochs), interleaving structural records between chunks, and asserts the
/// fired alert streams bit-identical as they happen. Returns all alerts.
fn feed(
    soup: &Soup,
    single: &StreamMonitor,
    sharded: &ShardedMonitor,
) -> Result<Vec<Alert>, TestCaseError> {
    let sequencer = BatchSequencer::new();
    let mut fired = Vec::new();
    // Structural records: every instance through both, alternating the
    // completed-record and open/close paths; events in reverse arrival.
    for (i, rec) in soup.instances.iter().enumerate() {
        if i % 2 == 0 {
            single.ingest_instance(*rec);
            sharded.ingest_instance(*rec);
        } else {
            single.instance_started(rec.job, rec.task, rec.seq, rec.machine, rec.start_time);
            sharded.instance_started(rec.job, rec.task, rec.seq, rec.machine, rec.start_time);
            let a = single.instance_finished(rec.job, rec.task, rec.seq, rec.end_time);
            let b = sharded.instance_finished(rec.job, rec.task, rec.seq, rec.end_time);
            prop_assert_eq!(a, b, "instance_finished outcome");
        }
    }
    for ev in soup.events.iter().rev() {
        single.ingest_machine_event(*ev);
        sharded.ingest_machine_event(*ev);
    }
    for (k, chunk) in soup.usage_deliveries.chunks(soup.chunk).enumerate() {
        if k % 2 == 0 {
            for &rec in chunk {
                let a = single.ingest(rec);
                let b = sharded.ingest(rec);
                prop_assert_eq!(&a, &b, "single-record alert parity");
                fired.extend(a);
            }
        } else {
            // The single monitor still sees the records one at a time: the
            // sharded epoch fan-out must be equivalent to that.
            let batch = sequencer.seal(
                chunk.last().map_or(Timestamp::new(0), |r| r.time),
                chunk.to_vec(),
            );
            let mut a = Vec::new();
            for &rec in chunk {
                a.extend(single.ingest(rec));
            }
            let b = sharded.ingest_batch(&batch);
            prop_assert_eq!(&a, &b, "epoch alert parity (order and seq)");
            fired.extend(a);
        }
    }
    Ok(fired)
}

/// Probe timestamps covering the soup's span, edges and far outside.
fn probes() -> impl Iterator<Item = Timestamp> {
    (-500..7_000)
        .step_by(237)
        .chain([0, 3_999, 4_000, 5_999, 6_000, 55_000, -10_000])
        .map(Timestamp::new)
}

fn assert_surfaces_equal(
    single: &StreamMonitor,
    sharded: &ShardedMonitor,
) -> Result<(), TestCaseError> {
    // Merged counters.
    prop_assert_eq!(sharded.ingested(), single.ingested());
    prop_assert_eq!(sharded.stale_dropped(), single.stale_dropped());
    prop_assert_eq!(sharded.late_accepted(), single.late_accepted());
    prop_assert_eq!(sharded.ingested_instances(), single.ingested_instances());
    prop_assert_eq!(sharded.ingested_events(), single.ingested_events());
    prop_assert_eq!(sharded.tracked_machines(), single.tracked_machines());
    prop_assert_eq!(sharded.live_instances(), single.live_instances());
    prop_assert_eq!(sharded.state_version(), single.state_version());
    // The global alert sequence: retained ring, totals, and the
    // cursorable surface.
    prop_assert_eq!(sharded.peek_alerts(), single.peek_alerts());
    prop_assert_eq!(sharded.total_alerts(), single.total_alerts());
    prop_assert_eq!(sharded.alerts_len(), single.alerts_len());
    prop_assert_eq!(sharded.alerts_overflowed(), single.alerts_overflowed());
    use batchlens::stream::AlertSource;
    prop_assert_eq!(sharded.next_alert_seq(), single.next_alert_seq());
    let a = AlertSource::alerts_since(single, 0);
    let b = AlertSource::alerts_since(sharded, 0);
    prop_assert_eq!(a.alerts, b.alerts);
    prop_assert_eq!(a.next_seq, b.next_seq);
    prop_assert_eq!(a.missed, b.missed);

    let live = single.live_view();
    prop_assert_eq!(sharded.machine_ids(), live.machine_ids());
    for t in probes() {
        prop_assert_eq!(
            sharded.jobs_running_at(t),
            live.jobs_running_at(t),
            "jobs_running_at({})",
            t
        );
        prop_assert_eq!(
            sharded.running_triples_at(t),
            live.running_triples_at(t),
            "running_triples_at({})",
            t
        );
        prop_assert_eq!(
            sharded.running_instance_count_at(t),
            live.running_instance_count_at(t),
            "running_instance_count_at({})",
            t
        );
        prop_assert_eq!(
            sharded.machines_active_at(t),
            live.machines_active_at(t),
            "machines_active_at({})",
            t
        );
        for m in 0..MACHINES {
            let m = MachineId::new(m);
            prop_assert_eq!(sharded.alive_at(m, t), live.alive_at(m, t), "alive_at");
            prop_assert_eq!(sharded.util_at(m, t), live.util_at(m, t), "util_at");
            prop_assert_eq!(sharded.util_hold(m, t), live.util_hold(m, t), "util_hold");
        }
        // One-version-cut transactional capture vs the single-lock capture.
        prop_assert_eq!(sharded.frame(t), live.frame(t), "frame({})", t);
    }
    for (lo, hi) in [(-100i64, 2_000i64), (1_000, 1_001), (0, 6_500)] {
        let w = TimeRange::new(Timestamp::new(lo), Timestamp::new(hi)).unwrap();
        for m in 0..MACHINES {
            let m = MachineId::new(m);
            for metric in Metric::ALL {
                prop_assert_eq!(
                    sharded.series_window(m, metric, &w),
                    live.series_window(m, metric, &w),
                    "series_window({}, {:?})",
                    m,
                    metric
                );
            }
        }
    }
    for (t0, t1) in [(0i64, 2_000i64), (2_000, 500), (-300, 6_500)] {
        let (t0, t1) = (Timestamp::new(t0), Timestamp::new(t1));
        prop_assert_eq!(
            sharded.running_delta(t0, t1),
            live.running_delta(t0, t1),
            "running_delta({}, {})",
            t0,
            t1
        );
        prop_assert_eq!(
            sharded.liveness_delta(t0, t1),
            live.liveness_delta(t0, t1),
            "liveness_delta({}, {})",
            t0,
            t1
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract: at shard counts {1, 4} × pool widths {1, 8},
    /// the sharded facade is bit-identical to the single monitor on every
    /// query, frame, counter and alert — with stragglers, out-of-order
    /// arrivals and mixed single/batch epochs interleaved.
    #[test]
    fn sharded_facade_equals_single_monitor(soup in soup_strategy()) {
        let cfg = StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            ..Default::default()
        };
        for shards in [1usize, 4] {
            for threads in [1usize, 8] {
                let single = StreamMonitor::new(cfg).unwrap();
                let sharded = ShardedMonitor::new(cfg, shards)
                    .unwrap()
                    .with_threads(threads);
                feed(&soup, &single, &sharded)?;
                assert_surfaces_equal(&single, &sharded)?;
            }
        }
    }

    /// Draining mid-feed preserves parity: the facade drains shard rings
    /// and its global ring in one sweep, returning exactly what the single
    /// monitor's drain returns, and both resume identically afterwards.
    #[test]
    fn drains_interleave_without_divergence(soup in soup_strategy()) {
        let cfg = StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            ..Default::default()
        };
        let single = StreamMonitor::new(cfg).unwrap();
        let sharded = ShardedMonitor::new(cfg, 4).unwrap().with_threads(2);
        let halfway = soup.usage_deliveries.len() / 2;
        for (i, &rec) in soup.usage_deliveries.iter().enumerate() {
            let a = single.ingest(rec);
            let b = sharded.ingest(rec);
            prop_assert_eq!(a, b);
            if i == halfway {
                prop_assert_eq!(single.drain_alerts(), sharded.drain_alerts());
                prop_assert_eq!(single.alerts_len(), 0);
                prop_assert_eq!(sharded.alerts_len(), 0);
            }
        }
        prop_assert_eq!(single.peek_alerts(), sharded.peek_alerts());
        prop_assert_eq!(single.total_alerts(), sharded.total_alerts());
    }

    /// A tiny alert ring overflows identically on both sides: global
    /// eviction order and the overflow counter agree, so lagging cursors
    /// observe identical gaps either way.
    #[test]
    fn alert_overflow_is_identical(soup in soup_strategy()) {
        let cfg = StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
            alert_capacity: 3,
            ..Default::default()
        };
        let single = StreamMonitor::new(cfg).unwrap();
        let sharded = ShardedMonitor::new(cfg, 4).unwrap().with_threads(2);
        feed(&soup, &single, &sharded)?;
        prop_assert_eq!(sharded.peek_alerts(), single.peek_alerts());
        prop_assert_eq!(sharded.alerts_overflowed(), single.alerts_overflowed());
        prop_assert_eq!(sharded.total_alerts(), single.total_alerts());
    }
}

/// A deterministic straggler scenario across shard boundaries, pinned
/// outside proptest: per-machine acceptance is shard-local state, so a
/// record that is stale for one machine must not disturb another machine in
/// a different (or the same) shard.
#[test]
fn cross_shard_stragglers_stay_shard_local() {
    let cfg = StreamConfig {
        ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
        ..Default::default()
    };
    let single = StreamMonitor::new(cfg).unwrap();
    let sharded = ShardedMonitor::new(cfg, 4).unwrap();
    let rec = |machine: u32, t: i64| ServerUsageRecord {
        time: Timestamp::new(t),
        machine: MachineId::new(machine),
        util: UtilizationTriple::clamped(0.5, 0.3, 0.3),
    };
    let feedboth = |r: ServerUsageRecord| {
        let a = single.ingest(r);
        let b = sharded.ingest(r);
        assert_eq!(a, b);
    };
    feedboth(rec(0, 1_000));
    feedboth(rec(1, 10)); // machine 1 is far behind machine 0: fine
    feedboth(rec(0, 1_000 - TOLERANCE_S)); // boundary-late: accepted
    feedboth(rec(0, 1_000 - TOLERANCE_S - 1)); // beyond: dropped
    feedboth(rec(1, 20)); // machine 1 unaffected by machine 0's frontier
    assert_eq!(sharded.stale_dropped(), single.stale_dropped());
    assert_eq!(sharded.late_accepted(), single.late_accepted());
    assert_eq!(sharded.ingested(), single.ingested());
    assert_eq!(sharded.ingested(), 4);
}

/// Machine-set partition sanity: every machine the facade reports belongs
/// to exactly one shard, and the union over shards is the whole universe.
#[test]
fn shards_partition_the_machine_universe() {
    let sharded = ShardedMonitor::new(StreamConfig::default(), 4).unwrap();
    for machine in 0..64u32 {
        sharded.ingest(ServerUsageRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(0.4, 0.3, 0.3),
        });
    }
    let mut union = BTreeSet::new();
    let mut total = 0usize;
    for i in 0..sharded.shard_count() {
        let ids = sharded.shard(i).live_view().machine_ids();
        total += ids.len();
        for id in &ids {
            assert_eq!(sharded.shard_of(*id), i, "machine in its owning shard");
        }
        union.extend(ids);
    }
    assert_eq!(total, 64, "no machine in two shards");
    assert_eq!(union.len(), 64);
    assert_eq!(sharded.machine_ids(), union.into_iter().collect::<Vec<_>>());
}
