//! End-to-end integration tests spanning simulate → analyze → render.

use batchlens::interaction::Event;
use batchlens::sim::scenario;
use batchlens::trace::{JobId, Metric, Timestamp};
use batchlens::BatchLens;

/// The full pipeline runs and every view renders for each canonical regime.
#[test]
fn every_regime_renders_end_to_end() {
    for (build, at) in [
        (
            scenario::fig3a as fn(u64) -> batchlens::sim::Simulation,
            scenario::T_FIG3A,
        ),
        (scenario::fig3b, scenario::T_FIG3B),
        (scenario::fig3c, scenario::T_FIG3C),
    ] {
        let ds = build(100).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(at));
        assert!(app.render_bubble(800.0, 800.0).contains("<circle"));
        assert!(app.render_timeline(800.0, 100.0).contains("<polyline"));
        let dash = app.render_dashboard(1400.0, 900.0);
        assert!(dash.starts_with("<?xml"));
        assert!(dash.contains("BatchLens @"));
    }
}

/// Selecting a job and brushing narrows the line chart's window consistently
/// across the analytics and render layers.
#[test]
fn brush_narrows_detail_across_layers() {
    let ds = scenario::fig2_sample(1).run().unwrap();
    let mut app = BatchLens::new(ds);
    app.apply(Event::SelectTimestamp(Timestamp::new(3000)));
    app.apply(Event::SelectJob(scenario::JOB_7399));

    let full = app.selected_job_lines().unwrap();
    let full_points: usize = full.lines.iter().map(|l| l.series.len()).sum();

    app.apply(Event::BrushTime(
        batchlens::trace::TimeRange::new(Timestamp::new(1200), Timestamp::new(2400)).unwrap(),
    ));
    let brushed = app.selected_job_lines().unwrap();
    let brushed_points: usize = brushed.lines.iter().map(|l| l.series.len()).sum();

    assert!(
        brushed_points < full_points,
        "brush should reduce plotted points"
    );
    assert_eq!(app.view().effective_window().end(), Timestamp::new(2400));
}

/// Hovering a shared machine surfaces its co-allocation links, which the
/// render layer can draw.
#[test]
fn hover_surfaces_coallocation_links() {
    use batchlens::analytics::CoallocationIndex;
    let ds = scenario::fig3b(2).run().unwrap();
    let idx = CoallocationIndex::at(&ds, scenario::T_FIG3B);
    assert!(!idx.is_empty(), "fig3b should have shared machines");
    let shared = idx.shared_machines()[0].machine;

    let mut app = BatchLens::new(ds);
    app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
    app.apply(Event::HoverMachine(shared));
    assert_eq!(app.view().hovered_machine(), Some(shared));
    assert!(!idx.links_for(shared).is_empty());
}

/// The detail metric switch propagates to the rendered line chart.
#[test]
fn detail_metric_switch_changes_chart_title() {
    let ds = scenario::fig3b(3).run().unwrap();
    let mut app = BatchLens::new(ds);
    app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
    app.apply(Event::SelectJob(scenario::JOB_7901));
    let cpu = app.render_line_chart(400.0, 200.0);
    assert!(cpu.contains("CPU utilization"));
    app.apply(Event::SetDetailMetric(Metric::Memory));
    let mem = app.render_line_chart(400.0, 200.0);
    assert!(mem.contains("Memory utilization"));
}

/// The case-study narrative facts hold across the layers: healthy jobs are
/// diagnosed healthy, job_8124 is least utilized, the spike and thrashing
/// jobs are diagnosed correctly.
#[test]
fn case_study_narrative_holds() {
    use batchlens::analytics::rootcause::{RootCauseAnalyzer, Verdict};

    // Fig 3(a): healthy, job_8124 least utilized.
    let ds = scenario::fig3a(4).run().unwrap();
    let snap = batchlens::analytics::hierarchy::HierarchySnapshot::at(&ds, scenario::T_FIG3A);
    let least = snap.jobs_by_mean_util()[0].0;
    assert_eq!(least, scenario::JOB_8124);

    // Fig 3(b): job_7901 end spike.
    let ds = scenario::fig3b(4).run().unwrap();
    let d = RootCauseAnalyzer::new()
        .analyze(&ds, scenario::T_FIG3B)
        .into_iter()
        .find(|d| d.job == scenario::JOB_7901)
        .unwrap();
    assert_eq!(d.verdict, Verdict::EndSpike);

    // Fig 3(c): job_11939 thrashing.
    let ds = scenario::fig3c(4).run().unwrap();
    let d = RootCauseAnalyzer::new()
        .analyze(&ds, scenario::T_FIG3C)
        .into_iter()
        .find(|d| d.job == scenario::JOB_11939)
        .unwrap();
    assert_eq!(d.verdict, Verdict::Thrashing);
}

/// The interaction log replays deterministically into the same SVG.
#[test]
fn interaction_replay_is_reproducible() {
    let script = [
        Event::SelectTimestamp(scenario::T_FIG3B),
        Event::SelectJob(JobId::new(7901)),
        Event::SetDetailMetric(Metric::Memory),
        Event::BrushTime(
            batchlens::trace::TimeRange::new(Timestamp::new(45600), Timestamp::new(46800)).unwrap(),
        ),
    ];
    let render = || {
        let ds = scenario::fig3b(5).run().unwrap();
        let mut app = BatchLens::new(ds);
        for &e in &script {
            app.apply(e);
        }
        app.render_dashboard(1200.0, 800.0)
    };
    assert_eq!(render(), render());
}

/// Paper-scale (reduced) day contains every named job and survives the
/// shutdown correctly end to end.
#[test]
fn paper_day_end_to_end() {
    let ds = scenario::paper_day_with_machines(6, 100).run().unwrap();
    for id in [
        scenario::JOB_7513,
        scenario::JOB_11939,
        scenario::JOB_11599,
        scenario::JOB_7901,
        scenario::JOB_8121,
        scenario::JOB_8124,
        scenario::JOB_6639,
    ] {
        assert!(ds.job(id).is_some(), "{id} missing");
    }
    let app = BatchLens::new(ds);
    // Rendering the whole day's dashboard at the overload timestamp works.
    let mut app = app;
    app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
    assert!(app.render_dashboard(1400.0, 900.0).contains("<svg"));
}
