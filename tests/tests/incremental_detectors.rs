//! Differential property tests for the incremental detection engine:
//! feeding samples one at a time through a [`DetectorState`] must agree with
//! batch `detect`, and — for the purely causal kernels — with the retained
//! whole-series scan references, bit for bit, on random irregular grids.

use batchlens::analytics::detect::{
    reference, CusumDetector, Detector, DetectorState, Ensemble, EwmaDetector, IqrDetector,
    MadDetector, SpikeDetector, ThrashingDetector, ThresholdDetector, ZScoreDetector,
};
use batchlens::analytics::AnomalySpan;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{
    MachineId, Metric, ServerUsageRecord, TimeDelta, TimeRange, TimeSeries, Timestamp,
    UtilizationTriple,
};
use proptest::prelude::*;

/// A random series on an irregular grid: cumulative gaps of 1..600 s.
fn irregular_series() -> impl Strategy<Value = TimeSeries> {
    prop::collection::vec((1i64..600, 0.0f64..1.0), 0..250).prop_map(|steps| {
        let mut t = 0i64;
        let mut s = TimeSeries::new();
        for (gap, v) in steps {
            t += gap;
            s.push(Timestamp::new(t), v).expect("gaps are positive");
        }
        s
    })
}

/// Feeds `series` sample-by-sample through a fresh state of `d`.
fn state_fed(d: &dyn Detector, series: &TimeSeries) -> Vec<AnomalySpan> {
    let mut state = d.state();
    let mut out = Vec::new();
    for (t, v) in series.iter() {
        if let Some(span) = state.push(t, v).closed {
            out.push(span);
        }
    }
    out.extend(state.finish());
    out
}

fn all_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(ThresholdDetector::new(0.7)),
        Box::new(ZScoreDetector::new(2.5)),
        Box::new(EwmaDetector::default()),
        Box::new(MadDetector::default()),
        Box::new(CusumDetector::default()),
        Box::new(IqrDetector::default()),
        Box::new(Ensemble::standard()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Incremental == batch for every detector: `detect` is the provided
    /// method over the state, and a second manual state run must reproduce
    /// it exactly (states carry no hidden whole-series dependence).
    #[test]
    fn incremental_matches_batch(series in irregular_series()) {
        for d in all_detectors() {
            let batch = d.detect(&series);
            let fed = state_fed(d.as_ref(), &series);
            prop_assert_eq!(&batch, &fed, "detector {} diverged", d.name());
        }
    }

    /// The threshold state reproduces the original whole-series scan
    /// bit for bit.
    #[test]
    fn threshold_matches_reference(series in irregular_series(), high in 0.1f64..0.95) {
        let det = ThresholdDetector { high, min_samples: 2 };
        prop_assert_eq!(det.detect(&series), reference::threshold(&det, &series));
    }

    /// The EWMA state reproduces the original whole-series scan bit for bit.
    #[test]
    fn ewma_matches_reference(series in irregular_series()) {
        let det = EwmaDetector::default();
        prop_assert_eq!(det.detect(&series), reference::ewma(&det, &series));
    }

    /// The CUSUM state reproduces the original whole-series scan bit for bit.
    #[test]
    fn cusum_matches_reference(series in irregular_series()) {
        let det = CusumDetector::default();
        prop_assert_eq!(det.detect(&series), reference::cusum(&det, &series));
    }

    /// The incremental spike matcher agrees with the original two-pass scan
    /// on random series and job windows.
    #[test]
    fn spike_matches_reference(
        series in irregular_series(),
        start in 0i64..40_000,
        dur in 1i64..30_000,
    ) {
        let window = TimeRange::new(Timestamp::new(start), Timestamp::new(start + dur)).unwrap();
        let det = SpikeDetector::new();
        let incremental = det.match_spike(&series, &window);
        let scanned = reference::match_spike(&det, &series, &window);
        prop_assert_eq!(incremental, scanned);
    }

    /// The monotonic-deque thrashing state agrees with an O(n·w) rescan of
    /// the trailing-window CPU maximum, on independently-gridded CPU and
    /// memory series.
    #[test]
    fn thrashing_matches_reference(
        cpu in irregular_series(),
        mem in irregular_series(),
    ) {
        let det = ThrashingDetector::new();
        prop_assert_eq!(det.detect(&cpu, &mem), reference::thrashing(&det, &cpu, &mem));
    }

    /// The spike state emits its span exactly once, and only after the
    /// search window has passed (so the online emission equals the batch
    /// verdict).
    #[test]
    fn spike_state_emits_at_most_once(
        series in irregular_series(),
        start in 0i64..40_000,
        dur in 1i64..30_000,
    ) {
        let window = TimeRange::new(Timestamp::new(start), Timestamp::new(start + dur)).unwrap();
        let mut state = SpikeDetector::new().state_for(window);
        let mut emitted = 0usize;
        for (t, v) in series.iter() {
            if state.push(t, v).closed.is_some() {
                emitted += 1;
            }
        }
        if state.finish().is_some() {
            emitted += 1;
        }
        prop_assert!(emitted <= 1);
        prop_assert_eq!(emitted == 1, state.matched().is_some());
    }

    /// StreamMonitor alert timestamps equal the flagged samples of running
    /// the batch threshold detector over the machine's full history: the
    /// online and batch paths share one kernel.
    #[test]
    fn monitor_alerts_match_batch_over_window(
        values in prop::collection::vec(0.0f64..1.0, 1..200),
        high in 0.3f64..0.95,
    ) {
        let cfg = StreamConfig {
            // A horizon covering the whole stream, so the final window is
            // the full history.
            horizon: TimeDelta::hours(1_000),
            high,
            ..StreamConfig::default()
        };
        let monitor = StreamMonitor::new(cfg).unwrap();
        let machine = MachineId::new(1);
        let mut alert_times = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let rec = ServerUsageRecord {
                time: Timestamp::new(i as i64 * 60),
                machine,
                util: UtilizationTriple::clamped(v, 0.0, 0.0),
            };
            for alert in monitor.ingest(rec) {
                prop_assert_eq!(alert.metric, Metric::Cpu);
                alert_times.push(alert.at);
            }
        }
        let series = monitor.series(machine, Metric::Cpu).expect("tracked");
        prop_assert_eq!(series.len(), values.len(), "window must cover everything");
        let spans = ThresholdDetector { high, min_samples: 1 }.detect(&series);
        let batch_flagged: Vec<Timestamp> = series
            .iter()
            .filter(|&(_, v)| v > high)
            .map(|(t, _)| t)
            .collect();
        // Every alert lies inside a batch span, and the alert set is exactly
        // the batch flag set.
        for &at in &alert_times {
            prop_assert!(spans.iter().any(|s| s.range.contains(at)));
        }
        prop_assert_eq!(alert_times, batch_flagged);
    }
}
