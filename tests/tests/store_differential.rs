//! Columnar-store differential proptests: a [`TraceDataset`] reopened from
//! its on-disk segment dump must be **bit-identical** to the in-RAM build —
//! on the dataset itself (`PartialEq` covers every table, series and
//! index), on the full [`DatasetQuery`] surface including `frame()`, and
//! under delta-scrubber walks — across random record soups and segment
//! sizes small enough to force multi-segment splits and k-way merges.
//!
//! A second suite reuses the PR 6 corruption-at-every-offset pattern at the
//! segment layer: flipping a single bit anywhere in any segment file makes
//! `TraceDataset::open` return a typed [`TraceError::CorruptSegment`] whose
//! reported `[offset, offset+len)` region *contains* the flipped byte —
//! never a panic, never a silently different dataset. A third covers the
//! durability integration: `dump`/`restore` of a lens rides the segment
//! payload (CSV vandalism does not change the outcome) and still falls
//! back to CSV when the payload is gone.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use batchlens::analytics::coalloc::CoallocationIndex;
use batchlens::analytics::hierarchy::HierarchySnapshot;
use batchlens::analytics::scrub::SnapshotScrubber;
use batchlens::durability;
use batchlens::trace::store::{self, StoreConfig};
use batchlens::trace::{
    BatchInstanceRecord, BatchTaskRecord, DatasetQuery, JobId, MachineEvent, MachineEventRecord,
    MachineId, ServerUsageRecord, TaskId, TaskStatus, Timestamp, TraceDataset, TraceDatasetBuilder,
    TraceError, UtilizationTriple,
};
use batchlens::BatchLens;
use proptest::prelude::*;

const MACHINES: u32 = 6;

/// One random batch instance; `seq` is assigned from the soup index so
/// every `(job, task, seq)` stays unique.
#[derive(Debug, Clone)]
struct InstanceSpec {
    job: u32,
    task: u32,
    machine: u32,
    start: i64,
    dur: i64,
    cpu: f64,
}

fn instance_strategy() -> impl Strategy<Value = InstanceSpec> {
    (
        1u32..5,
        1u32..3,
        0u32..MACHINES,
        0i64..3_000,
        0i64..2_000,
        0.0f64..1.0,
    )
        .prop_map(|(job, task, machine, start, dur, cpu)| InstanceSpec {
            job,
            task,
            machine,
            start,
            dur,
            cpu,
        })
}

fn usage_strategy() -> impl Strategy<Value = ServerUsageRecord> {
    (0i64..4_000, 0u32..MACHINES, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(t, m, a, b)| {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(m),
            util: UtilizationTriple::clamped(a, b, (a + b) / 2.0),
        }
    })
}

fn event_strategy() -> impl Strategy<Value = MachineEventRecord> {
    (0i64..4_000, 0u32..MACHINES, 0u8..4, 0.5f64..1.0).prop_map(|(t, m, e, cap)| {
        MachineEventRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(m),
            event: match e {
                0 => MachineEvent::Add,
                1 => MachineEvent::SoftError,
                2 => MachineEvent::HardError,
                _ => MachineEvent::Remove,
            },
            capacity_cpu: cap,
            capacity_mem: cap,
            capacity_disk: cap,
        }
    })
}

/// Builds the in-RAM reference dataset from a soup: one task row per
/// `(job, task)` pair in use, the instances, and the usage/event streams.
fn build_dataset(
    instances: &[InstanceSpec],
    usage: &[ServerUsageRecord],
    events: &[MachineEventRecord],
) -> TraceDataset {
    let mut b = TraceDatasetBuilder::new();
    let mut pairs: Vec<(u32, u32)> = instances.iter().map(|i| (i.job, i.task)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    for &(job, task) in &pairs {
        b.push_task(BatchTaskRecord {
            create_time: Timestamp::new(0),
            modify_time: Timestamp::new(6_000),
            job: JobId::new(job),
            task: TaskId::new(task),
            instance_count: instances.len() as u32,
            status: TaskStatus::Terminated,
            plan_cpu: 0.5 + f64::from(job) / 8.0,
            plan_mem: 0.25,
        });
    }
    for (seq, spec) in instances.iter().enumerate() {
        b.push_instance(BatchInstanceRecord {
            start_time: Timestamp::new(spec.start),
            end_time: Timestamp::new(spec.start + spec.dur),
            job: JobId::new(spec.job),
            task: TaskId::new(spec.task),
            seq: seq as u32,
            total: instances.len() as u32,
            machine: MachineId::new(spec.machine),
            status: TaskStatus::Terminated,
            cpu_avg: spec.cpu * 0.8,
            cpu_max: spec.cpu,
            mem_avg: spec.cpu * 0.5,
            mem_max: spec.cpu * 0.6,
        });
    }
    // The builder wants per-machine strictly ascending sample times: sort
    // the soup and drop duplicate (machine, time) cells.
    let mut usage = usage.to_vec();
    usage.sort_by_key(|r| (r.machine, r.time));
    usage.dedup_by_key(|r| (r.machine, r.time));
    for r in &usage {
        b.push_usage(*r);
    }
    for r in events {
        b.push_machine_event(*r);
    }
    b.build().expect("soup datasets are valid by construction")
}

/// A process-unique scratch directory (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "batchlens-storediff-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The sampled query instants every surface comparison sweeps — before,
/// inside and after every generated interval.
fn sample_times() -> impl Iterator<Item = Timestamp> {
    (-200i64..6_000).step_by(431).map(Timestamp::new)
}

/// Asserts the full [`DatasetQuery`] surface of two datasets agrees with
/// exact (bit-level for `f64`) equality, including transactional frames.
fn assert_query_surface_identical(
    reopened: &TraceDataset,
    reference: &TraceDataset,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(reopened.machine_count(), reference.machine_count());
    prop_assert_eq!(reopened.span(), reference.span());
    for t in sample_times() {
        prop_assert_eq!(reopened.frame(t), reference.frame(t), "frame({})", t);
        prop_assert_eq!(
            reopened.running_triples_at(t),
            reference.running_triples_at(t),
            "running_triples_at({})",
            t
        );
        prop_assert_eq!(
            DatasetQuery::jobs_running_at(reopened, t),
            DatasetQuery::jobs_running_at(reference, t),
            "jobs_running_at({})",
            t
        );
        prop_assert_eq!(
            reopened.machines_active_at(t),
            reference.machines_active_at(t),
            "machines_active_at({})",
            t
        );
        for m in (0..MACHINES).map(MachineId::new) {
            prop_assert_eq!(
                reopened.alive_at(m, t),
                reference.alive_at(m, t),
                "alive_at({}, {})",
                m,
                t
            );
            prop_assert_eq!(
                reopened.util_at(m, t),
                reference.util_at(m, t),
                "util_at({}, {})",
                m,
                t
            );
            prop_assert_eq!(
                reopened.util_hold(m, t),
                reference.util_hold(m, t),
                "util_hold({}, {})",
                m,
                t
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: dump → reopen is the identity, down to the
    /// bit, at segment sizes from "everything splits" to "one segment per
    /// family", at every construction concurrency, mapped and buffered
    /// alike — and the reopened dataset walks the delta scrubber exactly
    /// like the original.
    #[test]
    fn segment_roundtrip_is_bit_identical(
        instances in prop::collection::vec(instance_strategy(), 1..48),
        usage in prop::collection::vec(usage_strategy(), 0..64),
        events in prop::collection::vec(event_strategy(), 0..12),
        segment_rows in 1usize..96,
        threads in 1usize..5,
    ) {
        let ds = build_dataset(&instances, &usage, &events);
        let dir = scratch_dir("roundtrip");
        let report = store::dump_dataset_with(&dir, &ds, StoreConfig { segment_rows })
            .expect("dump");
        prop_assert!(report.segments > 0);

        // Identity on the whole dataset (PartialEq covers every table,
        // every series sample, every index) — then the query surface on
        // top, which is what downstream consumers actually read.
        let reopened = TraceDataset::open_with_threads(&dir, threads).expect("open");
        prop_assert_eq!(&reopened, &ds, "reopened dataset diverged");
        assert_query_surface_identical(&reopened, &ds)?;

        // Buffered (pread-fallback) backend: same bytes, same dataset.
        let buffered = TraceDataset::open_buffered(&dir).expect("open buffered");
        prop_assert_eq!(&buffered, &ds, "buffered open diverged");

        // Scrubber walk: the delta engine sees identical snapshots and
        // co-allocation indexes on both datasets at every hop.
        let mut scrub_new = SnapshotScrubber::new();
        let mut scrub_ref = SnapshotScrubber::new();
        for t in sample_times() {
            scrub_new.seek(&reopened, t);
            scrub_ref.seek(&ds, t);
            prop_assert_eq!(
                scrub_new.snapshot(&reopened),
                scrub_ref.snapshot(&ds),
                "scrubbed snapshot diverged at {}",
                t
            );
            prop_assert_eq!(scrub_new.coalloc(), scrub_ref.coalloc(), "coalloc at {}", t);
            prop_assert_eq!(
                scrub_new.snapshot(&reopened),
                &HierarchySnapshot::at(&ds, t),
                "scrubbed vs from-scratch at {}",
                t
            );
            prop_assert_eq!(
                scrub_new.coalloc(),
                &CoallocationIndex::at(&ds, t),
                "coalloc vs from-scratch at {}",
                t
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Single-bit corruption anywhere in any segment file is detected as a
    /// typed [`TraceError::CorruptSegment`] naming the right segment and a
    /// byte region containing the flip — never a panic, never a dataset.
    #[test]
    fn single_bit_corruption_is_detected_with_its_region(
        instances in prop::collection::vec(instance_strategy(), 1..24),
        usage in prop::collection::vec(usage_strategy(), 1..32),
        events in prop::collection::vec(event_strategy(), 0..8),
        segment_rows in 1usize..32,
        pick_file in 0.0f64..1.0,
        pick_byte in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let ds = build_dataset(&instances, &usage, &events);
        let dir = scratch_dir("flip");
        store::dump_dataset_with(&dir, &ds, StoreConfig { segment_rows }).expect("dump");

        let files = store::list_store_segments(&dir).expect("list segments");
        prop_assert!(!files.is_empty());
        let victim = &files[((pick_file * files.len() as f64) as usize).min(files.len() - 1)];
        let mut bytes = fs::read(victim).expect("read segment");
        let offset = ((pick_byte * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        fs::write(victim, &bytes).expect("write corrupted segment");

        let victim_name = victim
            .file_name()
            .expect("segment file name")
            .to_string_lossy()
            .into_owned();
        match TraceDataset::open(&dir) {
            Err(TraceError::CorruptSegment { segment, offset: off, len, .. }) => {
                prop_assert_eq!(&segment, &victim_name, "wrong segment blamed");
                let end = off + len.max(1);
                prop_assert!(
                    (off..end).contains(&(offset as u64)),
                    "flip at byte {} of {} reported outside [{}, {})",
                    offset,
                    victim_name,
                    off,
                    end
                );
            }
            Err(other) => prop_assert!(false, "expected CorruptSegment, got {other:?}"),
            Ok(_) => prop_assert!(false, "corruption at byte {offset} went undetected"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Durability integration: a dumped lens restores from the segment
    /// payload bit-identically even when every CSV table has been
    /// vandalized (proving the segments are what restore reads), and still
    /// restores from the CSVs when the segment payload is removed.
    #[test]
    fn lens_dump_restore_rides_the_segment_payload(
        instances in prop::collection::vec(instance_strategy(), 1..24),
        usage in prop::collection::vec(usage_strategy(), 1..32),
        events in prop::collection::vec(event_strategy(), 0..8),
    ) {
        let ds = build_dataset(&instances, &usage, &events);
        let lens = BatchLens::new(ds);
        let dir = scratch_dir("lens");
        let report = durability::dump(&dir, &lens, None).expect("dump");
        prop_assert!(report.segments > 0, "the dump writes a segment payload");

        // Vandalize every CSV: a restore that parsed them would fail, so a
        // successful identical restore proves the segment path is taken.
        for table in ["batch_task", "batch_instance", "server_usage", "machine_events"] {
            let path = dir.join(format!("{table}.csv"));
            prop_assert!(path.exists(), "{table}.csv missing from the dump");
            fs::write(&path, "not,a,valid,row\n").expect("vandalize csv");
        }
        let restored = durability::restore(&dir).expect("segment-backed restore");
        prop_assert_eq!(restored.lens.dataset(), lens.dataset());
        assert_query_surface_identical(restored.lens.dataset(), lens.dataset())?;

        // Remove the payload: restore now depends on the CSVs, which are
        // vandalized — the failure must be a typed error, not a panic.
        fs::remove_dir_all(dir.join("dataset")).expect("drop segment payload");
        prop_assert!(durability::restore(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A hand-built witness for the multi-segment merge: tiny segments force
/// every family to split, and the reopened dataset still equals the
/// original exactly.
#[test]
fn tiny_segments_round_trip() {
    let instances: Vec<InstanceSpec> = (0..12u32)
        .map(|i| InstanceSpec {
            job: 1 + i % 3,
            task: 1 + i % 2,
            machine: i % MACHINES,
            start: i64::from(i) * 100,
            dur: 500,
            cpu: 0.5,
        })
        .collect();
    let usage: Vec<ServerUsageRecord> = (0..20i64)
        .map(|i| ServerUsageRecord {
            time: Timestamp::new(i * 150),
            machine: MachineId::new((i as u32) % MACHINES),
            util: UtilizationTriple::clamped(0.3, 0.4, 0.2),
        })
        .collect();
    let ds = build_dataset(&instances, &usage, &[]);
    let dir = scratch_dir("tiny");
    let report = store::dump_dataset_with(&dir, &ds, StoreConfig { segment_rows: 2 })
        .expect("dump with 2-row segments");
    assert!(
        report.segments >= 10,
        "tiny segments must split every family"
    );
    assert_eq!(TraceDataset::open(&dir).expect("open"), ds);
    let _ = fs::remove_dir_all(&dir);
}
