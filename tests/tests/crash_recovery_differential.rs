//! Crash-recovery differential proptests: a WAL-attached [`StreamMonitor`]
//! killed at an **arbitrary byte offset** of its log — including mid-frame,
//! mid-header, and across segment boundaries — must recover to a state
//! bit-identical to a never-crashed reference monitor that received exactly
//! the deliveries whose frames survived intact.
//!
//! Each case generates a random delivery soup (usage samples with stale
//! re-deliveries, closed instances, open/close pairs, machine events, alert
//! drains), streams it into a logged monitor, then for random kill offsets
//! truncates a copy of the log at that byte and recovers. The recovered
//! monitor's full surface — every [`DatasetQuery`] method through the live
//! view, `frame()`, the alert buffer, every counter — is compared against
//! the reference with exact (bit-level for `f64`) equality. A second suite
//! flips single bits anywhere in the log and proves corruption is always
//! detected, never panics, and never loses intact-prefix records.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::wal::{self, WalConfig, WalWriter};
use batchlens::trace::{
    BatchInstanceRecord, DatasetQuery, JobId, MachineEvent, MachineEventRecord, MachineId, Metric,
    ServerUsageRecord, TaskId, TaskStatus, TimeDelta, TimeRange, Timestamp, UtilizationTriple,
};
use proptest::prelude::*;

const MACHINES: u32 = 5;
const TOLERANCE_S: i64 = 600;

/// One delivery to the monitor's public mutation surface — the unit the WAL
/// logs and replay reproduces.
#[derive(Debug, Clone)]
enum Delivery {
    Usage(ServerUsageRecord),
    Instance(BatchInstanceRecord),
    Started(JobId, TaskId, u32, MachineId, Timestamp),
    Finished(JobId, TaskId, u32, Timestamp),
    Event(MachineEventRecord),
    Drain,
}

/// Applies one delivery and returns how many WAL frames it writes. Every
/// mutation logs one frame except a drain of an empty buffer, which (since
/// the empty-drain fix) mutates nothing and appends nothing.
fn apply(monitor: &StreamMonitor, d: &Delivery) -> usize {
    match d {
        Delivery::Usage(r) => {
            monitor.ingest(*r);
            1
        }
        Delivery::Instance(r) => {
            monitor.ingest_instance(*r);
            1
        }
        Delivery::Started(job, task, seq, machine, at) => {
            monitor.instance_started(*job, *task, *seq, *machine, *at);
            1
        }
        Delivery::Finished(job, task, seq, at) => {
            monitor.instance_finished(*job, *task, *seq, *at);
            1
        }
        Delivery::Event(r) => {
            monitor.ingest_machine_event(*r);
            1
        }
        Delivery::Drain => usize::from(!monitor.drain_alerts().is_empty()),
    }
}

/// One random delivery. The vendored proptest has no `prop_oneof!`, so a
/// selector field picks the variant with usage weighted heaviest (6/12),
/// instances 2/12 and the rest 1/12 each — roughly a live feed's mix.
fn delivery_strategy() -> impl Strategy<Value = Delivery> {
    (
        0u8..12,
        0u32..8,
        0i64..4_000,
        0i64..2_000,
        0.0f64..1.0,
        0u32..6,
    )
        .prop_map(|(kind, a, t, dur, frac, e)| {
            let machine = MachineId::new(a % MACHINES);
            let job = JobId::new(a % 4);
            let task = TaskId::new(1 + (e % 2));
            match kind {
                0..=5 => Delivery::Usage(ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine,
                    util: UtilizationTriple::clamped(frac, frac * 0.7, frac * 0.4),
                }),
                6 | 7 => Delivery::Instance(BatchInstanceRecord {
                    start_time: Timestamp::new(t),
                    end_time: Timestamp::new(t + dur),
                    job,
                    task,
                    seq: e,
                    total: e + 1,
                    machine,
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                }),
                8 => Delivery::Started(job, task, e, machine, Timestamp::new(t)),
                9 => Delivery::Finished(job, task, e, Timestamp::new(t + dur)),
                10 => Delivery::Event(MachineEventRecord {
                    time: Timestamp::new(t),
                    machine,
                    event: match e % 4 {
                        0 => MachineEvent::Add,
                        1 => MachineEvent::SoftError,
                        2 => MachineEvent::HardError,
                        _ => MachineEvent::Remove,
                    },
                    capacity_cpu: 1.0,
                    capacity_mem: 1.0,
                    capacity_disk: 1.0,
                }),
                _ => Delivery::Drain,
            }
        })
}

fn config() -> StreamConfig {
    StreamConfig {
        horizon: TimeDelta::hours(100),
        ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
        ..Default::default()
    }
}

/// A process-unique scratch directory (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "batchlens-crashdiff-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Streams every delivery into a fresh WAL-attached monitor logging to
/// `dir`, then detaches (flushing) and asserts the log never errored.
/// Also returns the indices of the deliveries that wrote a WAL frame
/// (empty drains write none), so frame counts map back to delivery
/// positions.
fn run_logged(
    deliveries: &[Delivery],
    wal_cfg: WalConfig,
    dir: &Path,
) -> (StreamMonitor, Vec<usize>) {
    let monitor = StreamMonitor::new(config()).unwrap();
    monitor.attach_wal(WalWriter::open(dir, wal_cfg).unwrap());
    let mut logged = Vec::new();
    for (i, d) in deliveries.iter().enumerate() {
        if apply(&monitor, d) > 0 {
            logged.push(i);
        }
    }
    drop(monitor.detach_wal());
    assert_eq!(monitor.wal_errors(), 0, "logging must never error");
    (monitor, logged)
}

/// How many leading deliveries a replay of the first `frames` log frames
/// covers: everything up to and including the delivery that wrote frame
/// `frames - 1`. Skipped deliveries in that prefix are empty drains —
/// state no-ops — so feeding a reference the whole prefix is exact.
fn replay_cut(logged: &[usize], frames: usize) -> usize {
    if frames == 0 {
        0
    } else {
        logged[frames - 1] + 1
    }
}

/// A never-crashed reference fed the given deliveries directly (no WAL).
fn reference(deliveries: &[Delivery]) -> StreamMonitor {
    let monitor = StreamMonitor::new(config()).unwrap();
    for d in deliveries {
        let _ = apply(&monitor, d);
    }
    monitor
}

/// Segment paths under `dir` in replay (name) order.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    out.sort();
    out
}

/// Total log size in bytes across all segments.
fn log_len(dir: &Path) -> u64 {
    segments(dir)
        .iter()
        .map(|p| p.metadata().expect("segment metadata").len())
        .sum()
}

/// Copies the log in `src` to a fresh `dst`, killed at global byte offset
/// `kill`: segments wholly before the offset are copied intact, the segment
/// containing it is truncated mid-file, and everything after is lost — the
/// exact shape a power failure leaves behind.
fn kill_log_at(src: &Path, dst: &Path, kill: u64) {
    let mut remaining = kill;
    for seg in segments(src) {
        if remaining == 0 {
            break;
        }
        let bytes = fs::read(&seg).expect("read segment");
        let keep = (bytes.len() as u64).min(remaining) as usize;
        remaining -= keep as u64;
        let name = seg.file_name().expect("segment file name");
        fs::write(dst.join(name), &bytes[..keep]).expect("write killed segment");
    }
}

/// Byte size of each frame in delivery order, by re-encoding (the codec is
/// deterministic, so this mirrors what the writer emitted).
fn frame_sizes(dir: &Path) -> Vec<u64> {
    wal::WalReader::open(dir)
        .expect("reader opens")
        .map(|(seq, rec)| wal::encode_frame(seq, &rec).len() as u64)
        .collect()
}

/// How many whole frames fit in the first `kill` bytes of the log.
fn frames_within(sizes: &[u64], kill: u64) -> usize {
    let mut used = 0u64;
    sizes
        .iter()
        .take_while(|&&s| {
            used += s;
            used <= kill
        })
        .count()
}

/// Asserts the full observable surface of two monitors is bit-identical:
/// every counter, the alert buffer, and every [`DatasetQuery`] method plus
/// `frame()` and windowed series through the live view.
fn assert_monitors_identical(
    recovered: &StreamMonitor,
    reference: &StreamMonitor,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        recovered.state_version(),
        reference.state_version(),
        "state_version ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.ingested(),
        reference.ingested(),
        "ingested ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.stale_dropped(),
        reference.stale_dropped(),
        "stale_dropped ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.late_accepted(),
        reference.late_accepted(),
        "late_accepted ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.ingested_instances(),
        reference.ingested_instances(),
        "ingested_instances ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.ingested_events(),
        reference.ingested_events(),
        "ingested_events ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.live_instances(),
        reference.live_instances(),
        "live_instances ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.tracked_machines(),
        reference.tracked_machines(),
        "tracked_machines ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.total_alerts(),
        reference.total_alerts(),
        "total_alerts ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.alerts_overflowed(),
        reference.alerts_overflowed(),
        "alerts_overflowed ({})",
        ctx
    );
    prop_assert_eq!(
        recovered.peek_alerts(),
        reference.peek_alerts(),
        "alert buffer ({})",
        ctx
    );

    let rec_view = recovered.live_view();
    let ref_view = reference.live_view();
    prop_assert_eq!(
        rec_view.machine_ids(),
        ref_view.machine_ids(),
        "machine_ids ({})",
        ctx
    );
    for t in (-200i64..5_000).step_by(397).map(Timestamp::new) {
        prop_assert_eq!(
            rec_view.frame(t),
            ref_view.frame(t),
            "frame({}) ({})",
            t,
            ctx
        );
        prop_assert_eq!(
            rec_view.jobs_running_at(t),
            ref_view.jobs_running_at(t),
            "jobs_running_at({}) ({})",
            t,
            ctx
        );
        prop_assert_eq!(
            rec_view.running_triples_at(t),
            ref_view.running_triples_at(t),
            "running_triples_at({}) ({})",
            t,
            ctx
        );
        prop_assert_eq!(
            rec_view.running_instance_count_at(t),
            ref_view.running_instance_count_at(t),
            "running_instance_count_at({}) ({})",
            t,
            ctx
        );
        prop_assert_eq!(
            rec_view.machines_active_at(t),
            ref_view.machines_active_at(t),
            "machines_active_at({}) ({})",
            t,
            ctx
        );
        for m in (0..MACHINES).map(MachineId::new) {
            prop_assert_eq!(
                rec_view.alive_at(m, t),
                ref_view.alive_at(m, t),
                "alive_at({}, {}) ({})",
                m,
                t,
                ctx
            );
            // Bit-identical utilization (f64 equality, no tolerance).
            prop_assert_eq!(
                rec_view.util_at(m, t),
                ref_view.util_at(m, t),
                "util_at({}, {}) ({})",
                m,
                t,
                ctx
            );
        }
    }
    let w = TimeRange::new(Timestamp::new(-100), Timestamp::new(6_000)).unwrap();
    for m in (0..MACHINES).map(MachineId::new) {
        for metric in Metric::ALL {
            prop_assert_eq!(
                rec_view.series_window(m, metric, &w),
                ref_view.series_window(m, metric, &w),
                "series_window({}, {:?}) ({})",
                m,
                metric,
                ctx
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property. Kill the log at arbitrary byte offsets —
    /// mid-header, mid-payload, at segment boundaries (tiny segments force
    /// a multi-segment log) — and the recovered monitor is bit-identical to
    /// a reference fed exactly the deliveries whose frames survived. Replay
    /// is also *maximal*: every frame wholly inside the surviving prefix is
    /// recovered, none silently dropped.
    #[test]
    fn recovery_is_bit_identical_at_any_kill_offset(
        deliveries in prop::collection::vec(delivery_strategy(), 1..60),
        kill_points in prop::collection::vec(0.0f64..1.0, 2..5),
    ) {
        let src = scratch_dir("src");
        // 96-byte segments rotate every frame or two: kill offsets land on
        // sealed segments, the active segment, and exact boundaries.
        let wal_cfg = WalConfig { segment_bytes: 96, sync_each_append: false };
        let (live, logged) = run_logged(&deliveries, wal_cfg, &src);
        let total = log_len(&src);
        let sizes = frame_sizes(&src);
        prop_assert_eq!(sizes.len(), logged.len(), "one frame per logged delivery");
        prop_assert_eq!(sizes.iter().sum::<u64>(), total, "log is exactly the frames");

        let mut kills: Vec<u64> = kill_points.iter().map(|f| (f * total as f64) as u64).collect();
        // Edges: empty log, one byte (torn header), full log (clean).
        kills.extend([0, 1.min(total), total]);
        for kill in kills {
            let dst = scratch_dir("kill");
            kill_log_at(&src, &dst, kill);
            let (recovered, report) = StreamMonitor::recover(&dst, config())
                .expect("recovery only errors on OS-level IO failure");
            let survived = frames_within(&sizes, kill);
            prop_assert_eq!(
                report.records_replayed as usize,
                survived,
                "replay must be maximal at kill={} of {}",
                kill,
                total
            );
            if kill == total {
                prop_assert!(report.reason.is_clean(), "full log replays clean");
            }
            let reference = reference(&deliveries[..replay_cut(&logged, survived)]);
            assert_monitors_identical(&recovered, &reference, &format!("kill@{kill}"))?;
            let _ = fs::remove_dir_all(&dst);
        }

        // Crash-resume continuation: recover from the first kill point,
        // resume logging (the writer truncates the torn tail), deliver the
        // remainder, and the monitor ends bit-identical to one that never
        // crashed at all — the no-data-loss contract end to end.
        let kill = (kill_points[0] * total as f64) as u64;
        let dst = scratch_dir("resume");
        kill_log_at(&src, &dst, kill);
        let (resumed, report) = StreamMonitor::recover(&dst, config()).expect("recover");
        resumed.attach_wal(WalWriter::open(&dst, wal_cfg).expect("writer resumes"));
        for d in &deliveries[replay_cut(&logged, report.records_replayed as usize)..] {
            let _ = apply(&resumed, d);
        }
        drop(resumed.detach_wal());
        assert_monitors_identical(&resumed, &live, "resume")?;
        // And the resumed log itself recovers to the same state again.
        let (rebuilt, report) = StreamMonitor::recover(&dst, config()).expect("recover resumed log");
        prop_assert!(report.reason.is_clean(), "resumed log is clean");
        assert_monitors_identical(&rebuilt, &live, "resume+recover")?;
        let _ = fs::remove_dir_all(&dst);
        let _ = fs::remove_dir_all(&src);
    }

    /// Single-bit corruption anywhere in the log — length field, sequence
    /// number, stored CRC, payload — is always detected: recovery never
    /// panics, replays exactly the frames before the corrupt one, reports a
    /// non-clean stop, and the recovered state still matches the reference
    /// over the intact prefix.
    #[test]
    fn single_bit_corruption_is_always_detected(
        deliveries in prop::collection::vec(delivery_strategy(), 1..40),
        flip_at in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir("flip");
        let (_, logged) = run_logged(&deliveries, WalConfig::default(), &dir);
        let sizes = frame_sizes(&dir);
        let seg = {
            let segs = segments(&dir);
            prop_assert_eq!(segs.len(), 1, "default config keeps one segment here");
            segs.into_iter().next().unwrap()
        };
        let mut bytes = fs::read(&seg).expect("read segment");
        let total = bytes.len() as u64;
        if total == 0 {
            // A soup of only empty drains logs nothing: no byte to flip.
            let _ = fs::remove_dir_all(&dir);
            return Ok(());
        }
        let offset = ((flip_at * total as f64) as u64).min(total - 1);
        bytes[offset as usize] ^= 1 << bit;
        fs::write(&seg, &bytes).expect("write corrupted segment");

        let (recovered, report) = StreamMonitor::recover(&dir, config())
            .expect("corruption is data, not an IO error");
        prop_assert!(
            !report.reason.is_clean(),
            "a flipped bit at {} must be detected, got {:?}",
            offset,
            report.reason
        );
        prop_assert!(report.bytes_discarded > 0, "the corrupt tail is discarded");
        // Frames strictly before the corrupted byte replay; the one holding
        // it fails its CRC (or framing) check.
        let intact = frames_within(&sizes, offset);
        prop_assert_eq!(
            report.records_replayed as usize,
            intact,
            "replay stops exactly at the corrupt frame (offset {})",
            offset
        );
        let reference = reference(&deliveries[..replay_cut(&logged, intact)]);
        assert_monitors_identical(&recovered, &reference, &format!("flip@{offset}"))?;
        let _ = fs::remove_dir_all(&dir);
    }

    /// `wal::compact` is recovery-equivalent: compacting a killed log into
    /// a single sealed segment and recovering from *that* yields the same
    /// monitor as recovering from the original — the snapshot half of the
    /// snapshot-plus-tail contract.
    #[test]
    fn compaction_preserves_recovery(
        deliveries in prop::collection::vec(delivery_strategy(), 1..40),
        kill_at in 0.0f64..1.0,
    ) {
        let src = scratch_dir("c-src");
        let wal_cfg = WalConfig { segment_bytes: 128, sync_each_append: false };
        run_logged(&deliveries, wal_cfg, &src);
        let total = log_len(&src);
        let killed = scratch_dir("c-kill");
        kill_log_at(&src, &killed, (kill_at * total as f64) as u64);
        let compacted = scratch_dir("c-dst");
        wal::compact(&killed, &compacted).expect("compact");
        let (from_killed, killed_report) =
            StreamMonitor::recover(&killed, config()).expect("recover killed");
        let (from_compacted, compact_report) =
            StreamMonitor::recover(&compacted, config()).expect("recover compacted");
        prop_assert!(compact_report.reason.is_clean(), "compacted log is clean");
        prop_assert_eq!(compact_report.records_replayed, killed_report.records_replayed);
        prop_assert_eq!(compact_report.last_seq, killed_report.last_seq);
        assert_monitors_identical(&from_compacted, &from_killed, "compacted")?;
        for d in [src, killed, compacted] {
            let _ = fs::remove_dir_all(&d);
        }
    }
}

/// A recovered monitor keeps *working* — deliveries after recovery hit the
/// same acceptance rule and detector state as on the reference. Pinned on a
/// hand-built case so the invariant has a readable witness.
#[test]
fn recovered_monitor_continues_identically() {
    let dir = scratch_dir("continue");
    let usage = |t: i64, m: u32, cpu: f64| {
        Delivery::Usage(ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(m),
            util: UtilizationTriple::clamped(cpu, cpu, cpu),
        })
    };
    let before: Vec<Delivery> = (0..50)
        .map(|i| usage(i * 30, (i % 3) as u32, 0.2))
        .collect();
    let after: Vec<Delivery> = (0..20)
        .map(|i| usage(1_500 + i * 30, (i % 3) as u32, 0.95)) // step change → alerts
        .chain([Delivery::Drain])
        .chain((0..5).map(|i| usage(100 + i, 0, 0.5))) // stale: all dropped
        .collect();

    run_logged(&before, WalConfig::default(), &dir);
    let (recovered, report) = StreamMonitor::recover(&dir, config()).unwrap();
    assert!(report.reason.is_clean());
    assert_eq!(report.records_replayed, before.len() as u64);

    let reference = reference(&before);
    for d in &after {
        apply(&recovered, d);
        apply(&reference, d);
    }
    assert_eq!(recovered.state_version(), reference.state_version());
    assert_eq!(recovered.stale_dropped(), reference.stale_dropped());
    assert_eq!(recovered.total_alerts(), reference.total_alerts());
    assert_eq!(recovered.peek_alerts(), reference.peek_alerts());
    assert!(
        recovered.stale_dropped() >= 5,
        "the stale burst was rejected"
    );
    let _ = fs::remove_dir_all(&dir);
}
