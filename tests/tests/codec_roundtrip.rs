//! Property and integration tests for the Alibaba-v2017 CSV codec.

use batchlens::trace::{
    csv, BatchInstanceRecord, BatchTaskRecord, InstanceStatus, JobId, MachineId, ServerUsageRecord,
    TaskId, TaskStatus, Timestamp, UtilizationTriple,
};
use proptest::prelude::*;

fn task_strategy() -> impl Strategy<Value = BatchTaskRecord> {
    (0i64..86400, 0i64..5000, 1u32..10000, 1u32..50, 1u32..100).prop_map(
        |(create, dur, job, task, n)| BatchTaskRecord {
            create_time: Timestamp::new(create),
            modify_time: Timestamp::new(create + dur),
            job: JobId::new(job),
            task: TaskId::new(task),
            instance_count: n,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        },
    )
}

fn instance_strategy() -> impl Strategy<Value = BatchInstanceRecord> {
    (
        0i64..86400,
        1i64..5000,
        1u32..10000,
        1u32..50,
        0u32..100,
        0u32..2000,
    )
        .prop_map(
            |(start, dur, job, task, seq, machine)| BatchInstanceRecord {
                start_time: Timestamp::new(start),
                end_time: Timestamp::new(start + dur),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: seq + 1,
                machine: MachineId::new(machine),
                status: InstanceStatus::Terminated,
                cpu_avg: 0.4,
                cpu_max: 0.8,
                mem_avg: 0.3,
                mem_max: 0.5,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batch_task_csv_round_trips(tasks in prop::collection::vec(task_strategy(), 0..50)) {
        let text = csv::write_batch_tasks(&tasks);
        let parsed = csv::parse_batch_tasks(&text).unwrap();
        prop_assert_eq!(parsed, tasks);
    }

    #[test]
    fn batch_instance_csv_round_trips(
        instances in prop::collection::vec(instance_strategy(), 0..50)
    ) {
        let text = csv::write_batch_instances(&instances);
        let parsed = csv::parse_batch_instances(&text).unwrap();
        prop_assert_eq!(parsed, instances);
    }

    #[test]
    fn server_usage_csv_round_trips_at_precision(
        rows in prop::collection::vec(
            (0i64..86400, 0u32..2000, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
            0..100,
        )
    ) {
        let usage: Vec<ServerUsageRecord> = rows
            .iter()
            .map(|&(t, m, c, mem, d)| ServerUsageRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(m),
                util: UtilizationTriple::clamped(c, mem, d),
            })
            .collect();
        let text = csv::write_server_usage(&usage);
        let parsed = csv::parse_server_usage(&text).unwrap();
        prop_assert_eq!(parsed.len(), usage.len());
        for (a, b) in parsed.iter().zip(&usage) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.machine, b.machine);
            // Centipercent write precision.
            prop_assert!((a.util.cpu.fraction() - b.util.cpu.fraction()).abs() < 1e-4);
            prop_assert!((a.util.mem.fraction() - b.util.mem.fraction()).abs() < 1e-4);
            prop_assert!((a.util.disk.fraction() - b.util.disk.fraction()).abs() < 1e-4);
        }
    }
}

/// A simulated dataset survives a full CSV round-trip with identical stats.
#[test]
fn simulated_dataset_round_trips() {
    use batchlens::sim::{SimConfig, Simulation};
    use batchlens::trace::stats::DatasetStats;
    use batchlens::trace::{Metric, TraceDatasetBuilder};

    let ds = Simulation::new(SimConfig::small(314)).run().unwrap();
    let before = DatasetStats::compute(&ds);

    let tasks: Vec<_> = ds.task_records().copied().collect();
    let instances = ds.instance_records().to_vec();
    let usage: Vec<ServerUsageRecord> = ds
        .machines()
        .flat_map(|m| {
            let times = m
                .usage(Metric::Cpu)
                .map(|s| s.times().to_vec())
                .unwrap_or_default();
            times.into_iter().filter_map(move |t| {
                m.util_at(t).map(|util| ServerUsageRecord {
                    time: t,
                    machine: m.id(),
                    util,
                })
            })
        })
        .collect();
    let events = ds.machine_events().to_vec();

    let task_text = csv::write_batch_tasks(&tasks);
    let inst_text = csv::write_batch_instances(&instances);
    let usage_text = csv::write_server_usage(&usage);
    let event_text = csv::write_machine_events(&events);

    let mut b = TraceDatasetBuilder::new();
    b.extend_tables(
        csv::parse_batch_tasks(&task_text).unwrap(),
        csv::parse_batch_instances(&inst_text).unwrap(),
        csv::parse_server_usage(&usage_text).unwrap(),
        csv::parse_machine_events(&event_text).unwrap(),
    );
    let rebuilt = b.build().unwrap();
    let after = DatasetStats::compute(&rebuilt);

    assert_eq!(before.jobs, after.jobs);
    assert_eq!(before.tasks, after.tasks);
    assert_eq!(before.instances, after.instances);
    assert_eq!(before.machines, after.machines);
}
