//! Property and integration tests for the Alibaba-v2017 CSV codec and the
//! WAL frame codec ([`batchlens::trace::wal`]).

use batchlens::trace::wal::{self, WalRecord};
use batchlens::trace::{
    csv, BatchInstanceRecord, BatchTaskRecord, InstanceStatus, JobId, MachineEvent,
    MachineEventRecord, MachineId, ServerUsageRecord, TaskId, TaskStatus, Timestamp,
    UtilizationTriple,
};
use proptest::prelude::*;

fn task_strategy() -> impl Strategy<Value = BatchTaskRecord> {
    (0i64..86400, 0i64..5000, 1u32..10000, 1u32..50, 1u32..100).prop_map(
        |(create, dur, job, task, n)| BatchTaskRecord {
            create_time: Timestamp::new(create),
            modify_time: Timestamp::new(create + dur),
            job: JobId::new(job),
            task: TaskId::new(task),
            instance_count: n,
            status: TaskStatus::Terminated,
            plan_cpu: 1.0,
            plan_mem: 0.5,
        },
    )
}

fn instance_strategy() -> impl Strategy<Value = BatchInstanceRecord> {
    (
        0i64..86400,
        1i64..5000,
        1u32..10000,
        1u32..50,
        0u32..100,
        0u32..2000,
    )
        .prop_map(
            |(start, dur, job, task, seq, machine)| BatchInstanceRecord {
                start_time: Timestamp::new(start),
                end_time: Timestamp::new(start + dur),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: seq + 1,
                machine: MachineId::new(machine),
                status: InstanceStatus::Terminated,
                cpu_avg: 0.4,
                cpu_max: 0.8,
                mem_avg: 0.3,
                mem_max: 0.5,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batch_task_csv_round_trips(tasks in prop::collection::vec(task_strategy(), 0..50)) {
        let text = csv::write_batch_tasks(&tasks);
        let parsed = csv::parse_batch_tasks(&text).unwrap();
        prop_assert_eq!(parsed, tasks);
    }

    #[test]
    fn batch_instance_csv_round_trips(
        instances in prop::collection::vec(instance_strategy(), 0..50)
    ) {
        let text = csv::write_batch_instances(&instances);
        let parsed = csv::parse_batch_instances(&text).unwrap();
        prop_assert_eq!(parsed, instances);
    }

    #[test]
    fn server_usage_csv_round_trips_at_precision(
        rows in prop::collection::vec(
            (0i64..86400, 0u32..2000, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
            0..100,
        )
    ) {
        let usage: Vec<ServerUsageRecord> = rows
            .iter()
            .map(|&(t, m, c, mem, d)| ServerUsageRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(m),
                util: UtilizationTriple::clamped(c, mem, d),
            })
            .collect();
        let text = csv::write_server_usage(&usage);
        let parsed = csv::parse_server_usage(&text).unwrap();
        prop_assert_eq!(parsed.len(), usage.len());
        for (a, b) in parsed.iter().zip(&usage) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.machine, b.machine);
            // Centipercent write precision.
            prop_assert!((a.util.cpu.fraction() - b.util.cpu.fraction()).abs() < 1e-4);
            prop_assert!((a.util.mem.fraction() - b.util.mem.fraction()).abs() < 1e-4);
            prop_assert!((a.util.disk.fraction() - b.util.disk.fraction()).abs() < 1e-4);
        }
    }
}

/// Every WAL record variant, built from a selector plus extreme-leaning
/// field values. `f64` fields go through `to_bits`/`from_bits`, so the
/// strategy mixes ordinary fractions with subnormals and infinities
/// (NaN is pinned separately — `PartialEq` can't witness it).
fn wal_record_strategy() -> impl Strategy<Value = WalRecord> {
    (
        0u8..6,
        0u32..1_000,
        -86_400i64..86_400,
        0i64..5_000,
        0.0f64..1.0,
        0u32..8,
    )
        .prop_map(|(kind, id, t, dur, frac, e)| {
            let machine = MachineId::new(id % 64);
            let job = JobId::new(id);
            let task = TaskId::new(1 + (e % 4));
            // Exercise the full f64 wire width, not just [0, 1].
            let weird = match e % 4 {
                0 => frac,
                1 => frac * f64::MIN_POSITIVE, // subnormal after the multiply
                2 => f64::INFINITY,
                _ => -frac * 1e300,
            };
            match kind {
                0 => WalRecord::Usage(ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine,
                    util: UtilizationTriple::clamped(frac, frac * 0.5, frac * 0.25),
                }),
                1 => WalRecord::Instance(BatchInstanceRecord {
                    start_time: Timestamp::new(t),
                    end_time: Timestamp::new(t + dur),
                    job,
                    task,
                    seq: e,
                    total: e + 1,
                    machine,
                    status: match e % 5 {
                        0 => TaskStatus::Waiting,
                        1 => TaskStatus::Running,
                        2 => TaskStatus::Terminated,
                        3 => TaskStatus::Failed,
                        _ => TaskStatus::Cancelled,
                    },
                    cpu_avg: weird,
                    cpu_max: frac,
                    mem_avg: -0.0,
                    mem_max: weird,
                }),
                2 => WalRecord::InstanceStarted {
                    job,
                    task,
                    seq: e,
                    machine,
                    at: Timestamp::new(t),
                },
                3 => WalRecord::InstanceFinished {
                    job,
                    task,
                    seq: e,
                    at: Timestamp::new(t),
                },
                4 => WalRecord::MachineEvent(MachineEventRecord {
                    time: Timestamp::new(t),
                    machine,
                    event: match e % 4 {
                        0 => MachineEvent::Add,
                        1 => MachineEvent::SoftError,
                        2 => MachineEvent::HardError,
                        _ => MachineEvent::Remove,
                    },
                    capacity_cpu: weird,
                    capacity_mem: frac,
                    capacity_disk: frac * 2.0,
                }),
                _ => WalRecord::AlertsDrained,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every record type round-trips bit-exactly through the payload codec.
    #[test]
    fn wal_payload_round_trips(rec in wal_record_strategy()) {
        let payload = rec.encode_payload();
        let decoded = WalRecord::decode_payload(&payload);
        prop_assert_eq!(decoded.as_ref(), Some(&rec));
        // And through full frames at arbitrary sequence numbers: the frame
        // is header ‖ payload, so the payload slice must round-trip the
        // same way after framing.
        let frame = wal::encode_frame(u64::MAX - 7, &rec);
        prop_assert_eq!(frame.len(), wal::FRAME_HEADER_BYTES + payload.len());
        prop_assert_eq!(&frame[wal::FRAME_HEADER_BYTES..], payload.as_slice());
    }

    /// Flipping any single bit of an encoded frame is always detected:
    /// either the CRC mismatches, the framing fails, or — for a flip in the
    /// length field — the frame no longer parses at its claimed size. A
    /// corrupted frame never silently decodes to a *different* record.
    #[test]
    fn wal_single_bit_corruption_always_detected(
        rec in wal_record_strategy(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let seq = 42u64;
        let mut frame = wal::encode_frame(seq, &rec);
        let idx = ((byte_frac * frame.len() as f64) as usize).min(frame.len() - 1);
        frame[idx] ^= 1 << bit;

        // Re-run the reader's validation chain on the corrupted frame.
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let valid = len > 0
            && len <= wal::MAX_PAYLOAD_BYTES as usize
            && frame.len() == wal::FRAME_HEADER_BYTES + len
            && {
                let stored = u32::from_le_bytes(frame[12..16].try_into().unwrap());
                let mut crc = wal::Crc32::new();
                crc.update(&frame[0..12]);
                crc.update(&frame[wal::FRAME_HEADER_BYTES..]);
                crc.finish() == stored
            }
            && WalRecord::decode_payload(&frame[wal::FRAME_HEADER_BYTES..])
                .is_some_and(|d| d == rec);
        prop_assert!(
            !valid,
            "bit {} of byte {} flipped yet the frame still validated",
            bit,
            idx
        );
    }
}

/// `f64` payload fields survive the wire bit-for-bit — including NaN, which
/// `PartialEq` can't see, so this pins the bits directly.
#[test]
fn wal_f64_fields_are_bit_exact() {
    let nan = f64::from_bits(0x7ff8_0000_dead_beef);
    let rec = WalRecord::Instance(BatchInstanceRecord {
        start_time: Timestamp::new(-1),
        end_time: Timestamp::new(i64::MAX),
        job: JobId::new(u32::MAX),
        task: TaskId::new(0),
        seq: u32::MAX,
        total: u32::MAX,
        machine: MachineId::new(u32::MAX),
        status: TaskStatus::Failed,
        cpu_avg: nan,
        cpu_max: f64::NEG_INFINITY,
        mem_avg: -0.0,
        mem_max: f64::MIN_POSITIVE / 4.0, // subnormal
    });
    let decoded = WalRecord::decode_payload(&rec.encode_payload()).expect("decodes");
    let WalRecord::Instance(d) = decoded else {
        panic!("wrong variant");
    };
    assert_eq!(d.cpu_avg.to_bits(), nan.to_bits(), "NaN payload preserved");
    assert_eq!(d.cpu_max.to_bits(), f64::NEG_INFINITY.to_bits());
    assert_eq!(d.mem_avg.to_bits(), (-0.0f64).to_bits(), "signed zero");
    assert_eq!(d.mem_max.to_bits(), (f64::MIN_POSITIVE / 4.0).to_bits());
    assert_eq!(d.start_time, Timestamp::new(-1));
    assert_eq!(d.end_time, Timestamp::new(i64::MAX));
}

/// Truncating a frame at every possible byte boundary is detected as torn
/// (never a decode to a wrong record), exhaustively for one of each tag.
#[test]
fn wal_truncation_detected_at_every_boundary() {
    let records = [
        WalRecord::Usage(ServerUsageRecord {
            time: Timestamp::new(9),
            machine: MachineId::new(3),
            util: UtilizationTriple::clamped(0.5, 0.25, 0.125),
        }),
        WalRecord::InstanceStarted {
            job: JobId::new(1),
            task: TaskId::new(2),
            seq: 3,
            machine: MachineId::new(4),
            at: Timestamp::new(5),
        },
        WalRecord::AlertsDrained,
    ];
    for rec in &records {
        let payload = rec.encode_payload();
        for cut in 0..payload.len() {
            assert_eq!(
                WalRecord::decode_payload(&payload[..cut]),
                None,
                "truncated payload must not decode"
            );
        }
        // Payloads are length-delimited by the frame header, so a payload
        // with trailing garbage must be rejected too (exhaustion check).
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(WalRecord::decode_payload(&padded), None);
    }
}

/// A simulated dataset survives a full CSV round-trip with identical stats.
#[test]
fn simulated_dataset_round_trips() {
    use batchlens::sim::{SimConfig, Simulation};
    use batchlens::trace::stats::DatasetStats;
    use batchlens::trace::{Metric, TraceDatasetBuilder};

    let ds = Simulation::new(SimConfig::small(314)).run().unwrap();
    let before = DatasetStats::compute(&ds);

    let tasks: Vec<_> = ds.task_records().copied().collect();
    let instances = ds.instance_records().to_vec();
    let usage: Vec<ServerUsageRecord> = ds
        .machines()
        .flat_map(|m| {
            let times = m
                .usage(Metric::Cpu)
                .map(|s| s.times().to_vec())
                .unwrap_or_default();
            times.into_iter().filter_map(move |t| {
                m.util_at(t).map(|util| ServerUsageRecord {
                    time: t,
                    machine: m.id(),
                    util,
                })
            })
        })
        .collect();
    let events = ds.machine_events().to_vec();

    let task_text = csv::write_batch_tasks(&tasks);
    let inst_text = csv::write_batch_instances(&instances);
    let usage_text = csv::write_server_usage(&usage);
    let event_text = csv::write_machine_events(&events);

    let mut b = TraceDatasetBuilder::new();
    b.extend_tables(
        csv::parse_batch_tasks(&task_text).unwrap(),
        csv::parse_batch_instances(&inst_text).unwrap(),
        csv::parse_server_usage(&usage_text).unwrap(),
        csv::parse_machine_events(&event_text).unwrap(),
    );
    let rebuilt = b.build().unwrap();
    let after = DatasetStats::compute(&rebuilt);

    assert_eq!(before.jobs, after.jobs);
    assert_eq!(before.tasks, after.tasks);
    assert_eq!(before.instances, after.instances);
    assert_eq!(before.machines, after.machines);
}
