//! Integration tests for SLA analysis across the three case-study regimes.

use batchlens::analytics::sla::{availability, check, SlaPolicy};
use batchlens::sim::scenario;
use batchlens::trace::TimeDelta;

/// Saturation violations increase monotonically with the regime's load:
/// healthy < medium < overload.
#[test]
fn saturation_tracks_regime_load() {
    let a = check(&scenario::fig3a(1).run().unwrap(), &SlaPolicy::default());
    let b = check(&scenario::fig3b(1).run().unwrap(), &SlaPolicy::default());
    let c = check(&scenario::fig3c(1).run().unwrap(), &SlaPolicy::default());
    let fa = a.saturated_machine_fraction();
    let fb = b.saturated_machine_fraction();
    let fc = c.saturated_machine_fraction();
    assert!(fa <= fb + 0.05, "healthy {fa} vs medium {fb}");
    assert!(fb <= fc + 0.05, "medium {fb} vs overload {fc}");
    assert!(fc > fa, "overload {fc} should exceed healthy {fa}");
}

/// The mass shutdown in fig3c shows up as job-failure SLA violations.
#[test]
fn shutdown_creates_job_failures() {
    let report = check(&scenario::fig3c(2).run().unwrap(), &SlaPolicy::default());
    assert!(report.job_failures() >= 1);
    // job_11599 survives, so not every job fails.
    assert!(report.job_failures() < report.jobs_checked);
}

/// Availability over the healthy window is high (work is always running).
#[test]
fn availability_high_in_healthy_regime() {
    let ds = scenario::fig3a(3).run().unwrap();
    let window = ds.span().unwrap();
    let avail = availability(&ds, &window, 1, TimeDelta::minutes(5));
    assert!(avail > 0.8, "availability {avail}");
}

/// Disabling failure penalties removes all job-failure violations.
#[test]
fn policy_toggles_failure_penalty() {
    let ds = scenario::fig3c(4).run().unwrap();
    let strict = check(&ds, &SlaPolicy::default());
    let lenient = check(
        &ds,
        &SlaPolicy {
            penalize_failures: false,
            ..SlaPolicy::default()
        },
    );
    assert!(strict.job_failures() > 0);
    assert_eq!(lenient.job_failures(), 0);
}
