//! Chaos differential suite: randomized, **seeded** fault schedules from
//! `batchlens-fault` driven through the whole stack — injected WAL disk
//! errors and torn writes, injected route faults and worker panics,
//! injected capture failures, plus real mid-body client disconnects over
//! loopback — under which the existing invariants must keep holding:
//!
//! * the server stays up and recovers to healthy once faults stop;
//! * no torn frames — any two sessions observing the same
//!   `(timestamp, version)` frame key observe identical contents, stale
//!   or fresh;
//! * exactly-once alert delivery per cursor, across failed polls;
//! * every injected WAL IO error shows up in `wal_errors`, and every
//!   injected route fault / caught panic in the `/statsz` counters;
//! * post-crash recovery is deterministic and bit-identical to a
//!   reference monitor fed exactly the surviving deliveries.
//!
//! Every schedule is seeded (`Trigger::Prob` draws from a per-site
//! splitmix64 stream), so each run injects the same faults; the suites
//! together fire well over a hundred.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::wal::{WalConfig, WalWriter, FAILPOINT_APPEND};
use batchlens::trace::{
    BatchInstanceRecord, DatasetQuery, JobId, MachineId, Metric, ServerUsageRecord, TaskId,
    TaskStatus, TimeDelta, TimeRange, Timestamp, UtilizationTriple,
};
use batchlens::BatchLens;
use batchlens_fault::{arm, disarm, Fault, FaultSpec, Trigger};
use batchlens_serve::codec::read_response;
use batchlens_serve::router::{FAILPOINT_ROUTE, STALE_HEADER};
use batchlens_serve::session::{AlertsPayload, FrameInfo, SessionCreated, FAILPOINT_CAPTURE};
use batchlens_serve::stats::StatszPayload;
use batchlens_serve::{ServeConfig, Server, SessionConfig, SessionManager};

const MACHINES: u32 = 5;

// ---------------------------------------------------------------------------
// WAL chaos: injected disk errors and torn writes vs. recovery
// ---------------------------------------------------------------------------

/// One delivery to the monitor's mutation surface (the unit the WAL logs).
#[derive(Debug, Clone)]
enum Delivery {
    Usage(ServerUsageRecord),
    Instance(BatchInstanceRecord),
    Drain,
}

/// Applies one delivery and returns how many WAL appends it attempts.
/// Usage and instance records always log; a drain logs only when it
/// actually drains something — an empty drain mutates nothing and (since
/// the empty-drain fix) appends nothing, so it contributes no log record.
fn apply(monitor: &StreamMonitor, d: &Delivery) -> usize {
    match d {
        Delivery::Usage(r) => {
            monitor.ingest(*r);
            1
        }
        Delivery::Instance(r) => {
            monitor.ingest_instance(*r);
            1
        }
        Delivery::Drain => usize::from(!monitor.drain_alerts().is_empty()),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic delivery soup: mostly usage samples (some of them late
/// or stale), a few instances, the odd alert drain.
fn gen_deliveries(seed: u64, n: usize) -> Vec<Delivery> {
    let mut s = seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
    (0..n)
        .map(|_| {
            let r = splitmix(&mut s);
            let t = Timestamp::new((r % 4_000) as i64);
            let machine = MachineId::new(((r >> 16) as u32) % MACHINES);
            match r % 10 {
                0..=6 => Delivery::Usage(ServerUsageRecord {
                    time: t,
                    machine,
                    util: UtilizationTriple::clamped(((r >> 8) % 1_000) as f64 / 1_000.0, 0.3, 0.2),
                }),
                7 | 8 => Delivery::Instance(BatchInstanceRecord {
                    start_time: t,
                    end_time: t + TimeDelta::seconds(600),
                    job: JobId::new(((r >> 20) as u32) % 4),
                    task: TaskId::new(1),
                    seq: ((r >> 24) as u32) % 6,
                    total: 6,
                    machine,
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                }),
                _ => Delivery::Drain,
            }
        })
        .collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        horizon: TimeDelta::hours(100),
        ooo_tolerance: TimeDelta::seconds(600),
        ..Default::default()
    }
}

/// A process-unique scratch directory (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "batchlens-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A never-crashed reference fed the given deliveries directly (no WAL).
fn reference(deliveries: &[Delivery]) -> StreamMonitor {
    let monitor = StreamMonitor::new(stream_config()).unwrap();
    for d in deliveries {
        let _ = apply(&monitor, d);
    }
    monitor
}

/// Asserts the observable surface of two monitors is bit-identical: the
/// counters, the alert buffer, and sampled frames / utilization series
/// through the live view (`f64` equality, no tolerance).
fn assert_same_monitor(a: &StreamMonitor, b: &StreamMonitor, ctx: &str) {
    assert_eq!(
        a.state_version(),
        b.state_version(),
        "state_version ({ctx})"
    );
    assert_eq!(a.ingested(), b.ingested(), "ingested ({ctx})");
    assert_eq!(
        a.stale_dropped(),
        b.stale_dropped(),
        "stale_dropped ({ctx})"
    );
    assert_eq!(
        a.late_accepted(),
        b.late_accepted(),
        "late_accepted ({ctx})"
    );
    assert_eq!(
        a.ingested_instances(),
        b.ingested_instances(),
        "ingested_instances ({ctx})"
    );
    assert_eq!(a.total_alerts(), b.total_alerts(), "total_alerts ({ctx})");
    assert_eq!(a.peek_alerts(), b.peek_alerts(), "alert buffer ({ctx})");
    let (va, vb) = (a.live_view(), b.live_view());
    assert_eq!(va.machine_ids(), vb.machine_ids(), "machine_ids ({ctx})");
    for t in (0i64..4_200).step_by(311).map(Timestamp::new) {
        assert_eq!(va.frame(t), vb.frame(t), "frame({t}) ({ctx})");
        for m in (0..MACHINES).map(MachineId::new) {
            assert_eq!(
                va.util_at(m, t),
                vb.util_at(m, t),
                "util_at({m}, {t}) ({ctx})"
            );
        }
    }
    let w = TimeRange::new(Timestamp::new(0), Timestamp::new(4_200)).unwrap();
    for m in (0..MACHINES).map(MachineId::new) {
        for metric in Metric::ALL {
            assert_eq!(
                va.series_window(m, metric, &w),
                vb.series_window(m, metric, &w),
                "series_window({m}, {metric:?}) ({ctx})"
            );
        }
    }
}

/// Seeded disk-error storms against the WAL: every injected append error is
/// accounted in `wal_errors`, the log holds exactly the surviving
/// deliveries, and recovery from it is deterministic (two recoveries agree)
/// and bit-identical to a reference fed only the survivors.
#[test]
fn wal_disk_error_storms_recover_bit_identical() {
    let _guard = batchlens_fault::test_guard();
    let mut total_fired = 0u64;
    for seed in 0..4u64 {
        let dir = scratch_dir("disk");
        arm(
            FAILPOINT_APPEND,
            FaultSpec::new(
                Fault::Error,
                Trigger::Prob {
                    seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(7),
                    fire_per_1024: 256,
                },
            ),
        );
        let monitor = StreamMonitor::new(stream_config()).unwrap();
        let wal_cfg = WalConfig {
            segment_bytes: 256,
            sync_each_append: false,
        };
        monitor.attach_wal(WalWriter::open(&dir, wal_cfg).unwrap());
        let deliveries = gen_deliveries(seed, 400);
        // Track which deliveries' appends survived by watching the site's
        // fired counter around each one (deliveries are applied serially).
        // No-op deliveries (empty drains) append nothing and mutate
        // nothing, so they are excluded: `survived` stays 1:1 with the
        // records the log holds.
        let mut survived = Vec::new();
        for d in &deliveries {
            let before = batchlens_fault::site_stats(FAILPOINT_APPEND).map_or(0, |s| s.fired);
            let appends = apply(&monitor, d);
            let after = batchlens_fault::site_stats(FAILPOINT_APPEND).map_or(0, |s| s.fired);
            if after == before && appends > 0 {
                survived.push(d.clone());
            }
        }
        drop(monitor.detach_wal());
        let stats = disarm(FAILPOINT_APPEND).expect("site was armed");
        assert!(stats.fired > 0, "seed {seed} injected no faults");
        assert_eq!(
            monitor.wal_errors(),
            stats.fired,
            "every injected append error must be accounted (seed {seed})"
        );
        total_fired += stats.fired;

        let (rec_a, rep_a) = StreamMonitor::recover(&dir, stream_config()).unwrap();
        let (rec_b, rep_b) = StreamMonitor::recover(&dir, stream_config()).unwrap();
        assert!(rep_a.reason.is_clean(), "failed appends write nothing");
        assert_eq!(
            rep_a.records_replayed as usize,
            survived.len(),
            "the log holds exactly the surviving deliveries (seed {seed})"
        );
        assert_eq!(rep_a.records_replayed, rep_b.records_replayed);
        let reference = reference(&survived);
        assert_same_monitor(&rec_a, &reference, &format!("seed {seed} vs reference"));
        assert_same_monitor(&rec_a, &rec_b, &format!("seed {seed} determinism"));
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        total_fired >= 100,
        "the storm must inject at least 100 faults, got {total_fired}"
    );
}

/// A torn write mid-stream (short write at delivery `k`) makes everything
/// from `k` on unreachable behind the torn frame; recovery replays exactly
/// the prefix, and a resumed writer truncates the wreckage so re-delivering
/// the remainder converges on the never-crashed state.
#[test]
fn torn_writes_recover_to_the_surviving_prefix_and_resume() {
    let _guard = batchlens_fault::test_guard();
    for (tear_at, torn_bytes) in [(3u64, 1usize), (17, 7), (59, 13)] {
        let dir = scratch_dir("tear");
        arm(
            FAILPOINT_APPEND,
            FaultSpec::new(Fault::ShortWrite(torn_bytes), Trigger::Nth(tear_at)),
        );
        let monitor = StreamMonitor::new(stream_config()).unwrap();
        monitor.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        let deliveries = gen_deliveries(tear_at, 80);
        // Empty drains append nothing, so the Nth *append* no longer lands
        // on the Nth delivery: track the pre-tear logged prefix and the
        // delivery during which the torn write fired.
        let mut logged_prefix = Vec::new();
        let mut tear_idx = None;
        for (i, d) in deliveries.iter().enumerate() {
            let before = batchlens_fault::site_stats(FAILPOINT_APPEND).map_or(0, |s| s.fired);
            let appends = apply(&monitor, d);
            let fired =
                batchlens_fault::site_stats(FAILPOINT_APPEND).map_or(0, |s| s.fired) > before;
            if fired && tear_idx.is_none() {
                tear_idx = Some(i);
            } else if tear_idx.is_none() && appends > 0 {
                logged_prefix.push(d.clone());
            }
        }
        let tear_idx = tear_idx.expect("the torn write must fire");
        drop(monitor.detach_wal());
        let stats = disarm(FAILPOINT_APPEND).expect("site was armed");
        assert_eq!(stats.fired, 1, "exactly one torn write");
        assert_eq!(monitor.wal_errors(), 1);

        let (recovered, report) = StreamMonitor::recover(&dir, stream_config()).unwrap();
        assert!(
            !report.reason.is_clean(),
            "the torn frame must stop replay (tear at {tear_at})"
        );
        assert_eq!(
            report.records_replayed as usize,
            logged_prefix.len(),
            "replay is exactly the pre-tear prefix"
        );
        assert_same_monitor(
            &recovered,
            &reference(&logged_prefix),
            &format!("tear at {tear_at}"),
        );

        // Resume: a fresh writer truncates the torn tail; re-delivering the
        // remainder (from the torn delivery on) converges on the
        // never-crashed reference.
        recovered.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        for d in &deliveries[tear_idx..] {
            let _ = apply(&recovered, d);
        }
        drop(recovered.detach_wal());
        assert_eq!(recovered.wal_errors(), 0, "resumed logging is clean");
        let (rebuilt, report) = StreamMonitor::recover(&dir, stream_config()).unwrap();
        assert!(report.reason.is_clean(), "resumed log replays clean");
        assert_same_monitor(
            &rebuilt,
            &reference(&deliveries),
            &format!("resume after tear at {tear_at}"),
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The CI fault-schedule matrix hook: arms whatever `BATCHLENS_FAILPOINTS`
/// specifies (e.g. `wal.append=error@every:3`) and proves the generic WAL
/// contract under it — every injected IO error is accounted in
/// `wal_errors`, recovery never panics and is deterministic, and (absent
/// sync faults, which orphan already-written bytes) the recovered state is
/// bit-identical to a reference fed the replayed prefix of the surviving
/// appends. With the variable unset this degenerates to a clean round trip,
/// so it is safe in the default suite.
#[test]
fn env_armed_wal_schedule_holds_invariants() {
    use batchlens::trace::wal::FAILPOINT_SYNC;

    let _guard = batchlens_fault::test_guard();
    let armed = batchlens_fault::arm_from_env();
    let dir = scratch_dir("env");
    let monitor = StreamMonitor::new(stream_config()).unwrap();
    let wal_cfg = WalConfig {
        segment_bytes: 512,
        sync_each_append: false,
    };
    monitor.attach_wal(WalWriter::open(&dir, wal_cfg).unwrap());
    let deliveries = gen_deliveries(9, 300);
    // A delivery survived iff it attempted an append (empty drains log
    // and mutate nothing, so they are excluded — `survived` stays 1:1
    // with log records) and the append raised no WAL error (delay faults
    // fire without erroring; the delivery still lands in the log).
    let mut survived = Vec::new();
    for d in &deliveries {
        let before = monitor.wal_errors();
        let appends = apply(&monitor, d);
        if appends > 0 && monitor.wal_errors() == before {
            survived.push(d.clone());
        }
    }
    drop(monitor.detach_wal());
    let append_fired = batchlens_fault::site_stats(FAILPOINT_APPEND).map_or(0, |s| s.fired);
    let sync_fired = batchlens_fault::site_stats(FAILPOINT_SYNC).map_or(0, |s| s.fired);
    assert!(
        monitor.wal_errors() <= append_fired + sync_fired,
        "WAL errors only come from injected faults ({} errors, {} fired)",
        monitor.wal_errors(),
        append_fired + sync_fired
    );
    if armed == 0 {
        assert_eq!(monitor.wal_errors(), 0, "disarmed runs log cleanly");
    }

    let (rec_a, rep_a) = StreamMonitor::recover(&dir, stream_config()).unwrap();
    let (rec_b, rep_b) = StreamMonitor::recover(&dir, stream_config()).unwrap();
    assert_eq!(rep_a.records_replayed, rep_b.records_replayed);
    assert_same_monitor(&rec_a, &rec_b, "env schedule determinism");
    if sync_fired == 0 {
        let replayed = rep_a.records_replayed as usize;
        assert!(replayed <= survived.len(), "replay never invents records");
        if rep_a.reason.is_clean() {
            assert_eq!(replayed, survived.len(), "a clean replay is maximal");
        }
        assert_same_monitor(
            &rec_a,
            &reference(&survived[..replayed]),
            "env schedule vs surviving prefix",
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Serve chaos: route faults, panics, capture failures, client disconnects
// ---------------------------------------------------------------------------

/// A keep-alive client that survives server-forced closes by reconnecting
/// (an injected panic answers `500` with `connection: close`).
struct ChaosClient {
    addr: SocketAddr,
    conn: TcpStream,
}

impl ChaosClient {
    fn connect(addr: SocketAddr) -> ChaosClient {
        ChaosClient {
            addr,
            conn: TcpStream::connect(addr).expect("connect"),
        }
    }

    fn call(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> batchlens_serve::codec::ClientResponse {
        for _attempt in 0..3 {
            let req = format!(
                "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            if self.conn.write_all(req.as_bytes()).is_err() {
                self.conn = TcpStream::connect(self.addr).expect("reconnect");
                continue;
            }
            let mut reader = BufReader::new(self.conn.try_clone().expect("clone socket"));
            match read_response(&mut reader) {
                Ok(Some(resp)) => {
                    if resp
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        self.conn = TcpStream::connect(self.addr).expect("reconnect");
                    }
                    return resp;
                }
                // The server closed before answering (it never dispatched
                // the request): reconnect and retry.
                Ok(None) | Err(_) => {
                    self.conn = TcpStream::connect(self.addr).expect("reconnect");
                }
            }
        }
        panic!("request failed after reconnects");
    }
}

/// Shared tear-detection ledger keyed by `(timestamp, version)`; `session`
/// and `stale` are zeroed before comparison (the only legitimate
/// cross-observation differences).
type FrameLedger = Arc<Mutex<BTreeMap<(i64, u64), FrameInfo>>>;

/// What one chaos session observed.
struct ChaosOutcome {
    created: SessionCreated,
    seqs: Vec<u64>,
    missed: u64,
    /// `500`s from the injected route fault.
    injected_500: u64,
    /// `503`s from capture failures with no last good frame.
    unavailable_503: u64,
    /// Responses tagged stale (served from the last good frame).
    stale: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_chaos_script(
    addr: SocketAddr,
    created: SessionCreated,
    lane: usize,
    ops: usize,
    candidates: &[Timestamp],
    ledger: &FrameLedger,
    start: &Barrier,
    torn: &AtomicBool,
) -> ChaosOutcome {
    let id = created.session;
    let mut client = ChaosClient::connect(addr);
    let mut out = ChaosOutcome {
        created,
        seqs: Vec::new(),
        missed: 0,
        injected_500: 0,
        unavailable_503: 0,
        stale: 0,
    };
    let mut selected: Option<Timestamp> = None;
    start.wait();

    for i in 0..ops {
        match (i + lane) % 8 {
            0 | 5 => {
                let at = candidates[(i + lane) % candidates.len()];
                let event = format!("{{\"SelectTimestamp\": {}}}", at.seconds());
                let resp = client.call("POST", &format!("/sessions/{id}/events"), &event);
                match resp.status {
                    200 => selected = Some(at),
                    500 => out.injected_500 += 1,
                    s => panic!("unexpected select status {s}"),
                }
            }
            1 | 3 | 6 => {
                let resp = client.call("GET", &format!("/sessions/{id}/frame"), "");
                match resp.status {
                    200 => {
                        let mut frame: FrameInfo =
                            serde_json::from_str(&resp.text()).expect("frame payload");
                        if frame.stale {
                            out.stale += 1;
                        } else if let Some(at) = selected {
                            assert_eq!(at, frame.at, "a fresh frame reflects the view");
                        }
                        frame.session = 0;
                        frame.stale = false;
                        let key = (frame.at.seconds(), frame.version);
                        let mut ledger = ledger.lock().expect("ledger lock");
                        if let Some(canonical) = ledger.get(&key) {
                            if *canonical != frame {
                                torn.store(true, Ordering::SeqCst);
                            }
                        } else {
                            ledger.insert(key, frame);
                        }
                    }
                    503 => out.unavailable_503 += 1,
                    500 => out.injected_500 += 1,
                    s => panic!("unexpected frame status {s}"),
                }
            }
            2 | 4 => {
                let resp = client.call(
                    "GET",
                    &format!("/sessions/{id}/render?format=ascii&cols=32&rows=10"),
                    "",
                );
                match resp.status {
                    200 => {
                        assert!(!resp.body.is_empty());
                        if resp.header(STALE_HEADER).is_some() {
                            out.stale += 1;
                        }
                    }
                    503 => out.unavailable_503 += 1,
                    500 => out.injected_500 += 1,
                    s => panic!("unexpected render status {s}"),
                }
            }
            _ => {
                let resp = client.call("GET", &format!("/sessions/{id}/alerts"), "");
                match resp.status {
                    200 => {
                        let batch: AlertsPayload =
                            serde_json::from_str(&resp.text()).expect("alerts payload");
                        out.seqs.extend(batch.alerts.iter().map(|a| a.seq));
                        out.missed += batch.missed;
                    }
                    500 => out.injected_500 += 1,
                    s => panic!("unexpected poll status {s}"),
                }
            }
        }
        // Periodically, a throwaway connection disconnects mid-body — the
        // worker must shrug it off.
        if i % 16 == 15 {
            let mut t = TcpStream::connect(addr).expect("connect");
            let _ = t.write_all(
                format!("POST /sessions/{id}/events HTTP/1.1\r\ncontent-length: 64\r\n\r\ntrunc")
                    .as_bytes(),
            );
            drop(t);
        }
    }
    out
}

/// The serve-layer chaos capstone: seeded route faults and capture failures
/// plus injected panics and real mid-body disconnects, with every existing
/// invariant audited at the end.
#[test]
fn serve_chaos_preserves_invariants_and_recovers() {
    let _fault_guard = batchlens_fault::test_guard();
    const LANES: usize = 4;
    const OPS: usize = 80;
    const BURSTS: usize = 6;

    // A live-monitor-backed lens, as in the serve concurrency suite.
    let dataset = scenario::fig3b(41).run().expect("scenario");
    let span = dataset.span().expect("non-empty dataset");
    let span_end = span.end();
    let step = span.duration() / 4;
    let candidates = [
        span.start() + step,
        span.start() + step * 2,
        span_end - step,
    ];
    let monitor = Arc::new(
        StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::DAY,
            ..Default::default()
        })
        .expect("stream config"),
    );
    let mut usage = export_usage_records(&dataset);
    usage.sort_by_key(|r| (r.time, r.machine));
    for rec in usage {
        monitor.ingest(rec);
    }
    monitor.ingest_instances(dataset.instance_records().iter().copied());
    for ev in dataset.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let mut lens = BatchLens::new(dataset);
    lens.attach_live_monitor(Arc::clone(&monitor));

    let manager = Arc::new(SessionManager::with_config(
        Arc::new(lens),
        SessionConfig::default(),
    ));
    let server = Arc::new(
        Server::bind(
            ("127.0.0.1", 0),
            Arc::clone(&manager),
            ServeConfig {
                workers: 8,
                queue_depth: 16,
                idle_timeout: Duration::from_secs(30),
                ..Default::default()
            },
        )
        .expect("bind loopback"),
    );
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = Arc::clone(&server);
    let serve_thread = thread::spawn(move || runner.serve());

    // Sessions are created *before* the failpoints arm, so every script has
    // a session and every cursor sits at the same position.
    let mut setup = ChaosClient::connect(addr);
    let sessions: Vec<SessionCreated> = (0..LANES)
        .map(|_| {
            serde_json::from_str(&setup.call("POST", "/sessions", "").text())
                .expect("session created")
        })
        .collect();

    // Phase A — the storm: seeded route faults (500s) and capture failures
    // (stale frames / 503s) under full concurrent traffic.
    arm(
        FAILPOINT_ROUTE,
        FaultSpec::new(
            Fault::Error,
            Trigger::Prob {
                seed: 0xC0FFEE,
                fire_per_1024: 400,
            },
        ),
    );
    arm(
        FAILPOINT_CAPTURE,
        FaultSpec::new(
            Fault::Error,
            Trigger::Prob {
                seed: 0xDECAF,
                fire_per_1024: 300,
            },
        ),
    );

    let ledger: FrameLedger = Arc::new(Mutex::new(BTreeMap::new()));
    let torn = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(LANES + 1));
    let clients: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(lane, created)| {
            let created = created.clone();
            let ledger = Arc::clone(&ledger);
            let torn = Arc::clone(&torn);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                run_chaos_script(
                    addr,
                    created,
                    lane,
                    OPS,
                    &candidates,
                    &ledger,
                    &start,
                    &torn,
                )
            })
        })
        .collect();

    start.wait();
    let seq0 = monitor.next_alert_seq();
    for k in 0..BURSTS {
        monitor.ingest(ServerUsageRecord {
            time: span_end + TimeDelta::seconds(60 * (k as i64 + 1)),
            machine: MachineId::new(0),
            util: UtilizationTriple::clamped(0.95, 0.3, 0.3),
        });
        thread::yield_now();
    }
    let final_seq = monitor.next_alert_seq();
    assert_eq!(final_seq - seq0, BURSTS as u64);

    let mut outcomes: Vec<ChaosOutcome> = clients
        .into_iter()
        .map(|c| c.join().expect("chaos session thread"))
        .collect();
    let route_storm = disarm(FAILPOINT_ROUTE).expect("route site armed");
    let capture_storm = disarm(FAILPOINT_CAPTURE).expect("capture site armed");

    // Phase B — injected worker panics: each is caught, answered with a
    // closing 500, counted, and the server keeps serving.
    arm(
        FAILPOINT_ROUTE,
        FaultSpec::new(Fault::Panic, Trigger::Times(5)),
    );
    let mut prober = ChaosClient::connect(addr);
    for _ in 0..5 {
        let resp = prober.call("GET", "/healthz", "");
        assert_eq!(resp.status, 500, "an injected panic answers 500");
    }
    assert_eq!(prober.call("GET", "/healthz", "").status, 200);
    let panic_storm = disarm(FAILPOINT_ROUTE).expect("route site armed");
    assert_eq!(panic_storm.fired, 5);

    // Phase C — raw mid-request disconnects (line and body) straight at the
    // listener.
    for k in 0..6 {
        let mut t = TcpStream::connect(addr).expect("connect");
        let _ = if k % 2 == 0 {
            t.write_all(b"GET /sta")
        } else {
            t.write_all(b"POST /sessions HTTP/1.1\r\ncontent-length: 32\r\n\r\nhalf")
        };
        drop(t);
    }

    // Phase D — recovery: with the failpoints gone, a fresh session's first
    // capture succeeds and clears degraded mode; the server reports ready.
    let fresh: SessionCreated =
        serde_json::from_str(&prober.call("POST", "/sessions", "").text()).expect("fresh session");
    let resp = prober.call("GET", &format!("/sessions/{}/frame", fresh.session), "");
    assert_eq!(resp.status, 200);
    assert!(!manager.degraded(), "a clean capture clears degraded mode");
    assert_eq!(prober.call("GET", "/healthz", "").status, 200);
    assert_eq!(prober.call("GET", "/readyz", "").status, 200);

    // Drain every chaos cursor: exactly-once delivery must have survived
    // every failed poll and forced reconnect.
    for outcome in &mut outcomes {
        let id = outcome.created.session;
        let resp = prober.call("GET", &format!("/sessions/{id}/alerts"), "");
        assert_eq!(resp.status, 200, "final drain must succeed");
        let batch: AlertsPayload = serde_json::from_str(&resp.text()).expect("alerts payload");
        outcome.seqs.extend(batch.alerts.iter().map(|a| a.seq));
        outcome.missed += batch.missed;
    }

    let statsz: StatszPayload =
        serde_json::from_str(&prober.call("GET", "/statsz", "").text()).expect("statsz payload");

    handle.shutdown();
    serve_thread.join().expect("server joined");

    // --- The audit ---
    assert!(
        !torn.load(Ordering::SeqCst),
        "two observations disagreed about one (timestamp, version) frame key"
    );
    let expect: Vec<u64> = (seq0..final_seq).collect();
    for outcome in &outcomes {
        assert_eq!(outcome.created.cursor, seq0);
        assert_eq!(outcome.missed, 0, "nothing evicted under the cursor");
        assert_eq!(
            outcome.seqs, expect,
            "each cursor delivers every alert exactly once, in order, despite faults"
        );
    }
    let injected_500: u64 = outcomes.iter().map(|o| o.injected_500).sum();
    let stale: u64 = outcomes.iter().map(|o| o.stale).sum();
    let unavailable: u64 = outcomes.iter().map(|o| o.unavailable_503).sum();
    assert_eq!(
        injected_500, route_storm.fired,
        "every injected route fault surfaced as exactly one 500"
    );
    assert_eq!(
        statsz.stale_served, stale,
        "/statsz stale accounting matches what clients observed"
    );
    assert!(
        unavailable <= capture_storm.fired,
        "503s only come from injected capture failures"
    );
    assert_eq!(statsz.worker_panics, 5, "every injected panic was counted");
    assert_eq!(statsz.connections_shed, 0, "no shedding below saturation");
    assert!(!statsz.degraded, "recovery cleared the degraded flag");
    let total_faults = route_storm.fired + capture_storm.fired + panic_storm.fired;
    assert!(
        total_faults >= 100,
        "the chaos run must inject at least 100 faults, got {total_faults} \
         (route {}, capture {}, panics {})",
        route_storm.fired,
        capture_storm.fired,
        panic_storm.fired
    );
}

/// A capture stalled past the frame budget returns its (already paid for)
/// fresh frame but flips the manager degraded; the next in-budget probe
/// restores healthy mode.
#[test]
fn capture_delays_over_budget_degrade_and_recover() {
    let _guard = batchlens_fault::test_guard();
    let ds = scenario::fig3b(5).run().expect("scenario");
    let manager = SessionManager::with_config(
        Arc::new(BatchLens::new(ds)),
        SessionConfig {
            frame_budget: Some(Duration::from_millis(1)),
            probe_every: 2,
            ..Default::default()
        },
    );
    let id = manager.create().session;
    arm(
        FAILPOINT_CAPTURE,
        FaultSpec::new(Fault::Delay(Duration::from_millis(20)), Trigger::Times(1)),
    );
    let info = manager.frame_info(id).expect("frame");
    assert!(
        !info.stale,
        "an over-budget capture still returns fresh data"
    );
    assert!(manager.degraded(), "but the manager degrades");
    // The delay schedule is spent; within a probe cycle the manager heals.
    let mut cleared = false;
    for _ in 0..4 {
        manager.frame_info(id).expect("frame");
        if !manager.degraded() {
            cleared = true;
            break;
        }
    }
    assert!(cleared, "an in-budget probe restores healthy mode");
}
