//! Integration tests asserting the paper's Section II dataset statistics
//! hold on the simulated trace across seeds.

use batchlens::sim::{SimConfig, Simulation};
use batchlens::trace::stats::{
    instances_per_task_histogram, max_concurrency, tasks_per_job_histogram, DatasetStats,
};

/// Across many seeds, the single-task-job and multi-instance-task fractions
/// track the paper's 75 % / 94 %.
#[test]
fn section_ii_fractions_hold_across_seeds() {
    let mut single_task = Vec::new();
    let mut multi_instance = Vec::new();
    for seed in 0..8u64 {
        // Use a longer window so the sample size per run is large.
        let mut cfg = SimConfig::small(seed);
        cfg.machines = 60;
        cfg.window = batchlens::trace::TimeRange::new(
            batchlens::trace::Timestamp::ZERO,
            batchlens::trace::Timestamp::new(6 * 3600),
        )
        .unwrap();
        let ds = Simulation::new(cfg).run().unwrap();
        let st = DatasetStats::compute(&ds);
        if st.jobs > 50 {
            single_task.push(st.single_task_job_fraction);
        }
        if st.tasks > 50 {
            multi_instance.push(st.multi_instance_task_fraction);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let st_mean = mean(&single_task);
    let mi_mean = mean(&multi_instance);
    assert!(
        (st_mean - 0.75).abs() < 0.06,
        "single-task fraction {st_mean}"
    );
    assert!(
        (mi_mean - 0.94).abs() < 0.06,
        "multi-instance fraction {mi_mean}"
    );
}

/// Machines run multiple instances concurrently (the paper's explicit note).
#[test]
fn machines_run_many_instances_concurrently() {
    let ds = Simulation::new(SimConfig::medium(1)).run().unwrap();
    let st = DatasetStats::compute(&ds);
    assert!(
        st.max_concurrent_instances_per_machine > 1,
        "expected concurrent instances, got {}",
        st.max_concurrent_instances_per_machine
    );
}

/// Every instance is executed by exactly one machine (structural invariant).
#[test]
fn each_instance_on_exactly_one_machine() {
    let ds = Simulation::new(SimConfig::small(2)).run().unwrap();
    use std::collections::BTreeSet;
    let mut ids = BTreeSet::new();
    for rec in ds.instance_records() {
        // (job, task, seq) unique; single machine field.
        assert!(
            ids.insert((rec.job, rec.task, rec.seq)),
            "duplicate instance id"
        );
    }
}

/// Histograms sum to the totals.
#[test]
fn histograms_are_consistent() {
    let ds = Simulation::new(SimConfig::small(3)).run().unwrap();
    let st = DatasetStats::compute(&ds);
    let tj: usize = tasks_per_job_histogram(&ds).iter().map(|(_, c)| c).sum();
    let it: usize = instances_per_task_histogram(&ds)
        .iter()
        .map(|(_, c)| c)
        .sum();
    assert_eq!(tj, st.jobs);
    assert_eq!(it, st.tasks);
}

/// `max_concurrency` agrees with a brute-force count at the busiest instant.
#[test]
fn max_concurrency_matches_brute_force() {
    let ds = Simulation::new(SimConfig::small(4)).run().unwrap();
    // Pick the busiest machine.
    let busiest = ds.machines().max_by_key(|m| m.instances().count()).unwrap();
    let intervals: Vec<_> = busiest
        .instances()
        .map(|i| (i.record.start_time, i.record.end_time))
        .collect();
    let by_formula = max_concurrency(intervals.iter().copied());

    // Brute-force: sample every instance start and count overlaps.
    let mut brute = 0usize;
    for &(s, _) in &intervals {
        let c = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
        brute = brute.max(c);
    }
    assert_eq!(by_formula, brute);
}

/// The comparison table mentions the paper's headline numbers.
#[test]
fn comparison_table_is_well_formed() {
    let ds = Simulation::new(SimConfig::small(5)).run().unwrap();
    let table = DatasetStats::compute(&ds).comparison_table();
    assert!(table.contains("0.75"));
    assert!(table.contains("0.94"));
    assert!(table.lines().count() >= 5);
}
