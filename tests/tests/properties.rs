//! Property-based tests on core invariants across the workspace.

use batchlens::layout::annotation::cluster_1d;
use batchlens::layout::enclose::enclose;
use batchlens::layout::line::{douglas_peucker, lttb};
use batchlens::layout::pack::pack_siblings;
use batchlens::layout::{Brush, Circle, LinearScale};
use batchlens::trace::{TimeRange, TimeSeries, Timestamp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Packed circles never overlap (the core layout invariant).
    #[test]
    fn packed_circles_are_disjoint(radii in prop::collection::vec(0.1f64..20.0, 1..40)) {
        let mut circles: Vec<Circle> = radii.iter().map(|&r| Circle::new(0.0, 0.0, r)).collect();
        pack_siblings(&mut circles);
        for i in 0..circles.len() {
            for j in i + 1..circles.len() {
                let a = &circles[i];
                let b = &circles[j];
                let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                prop_assert!(d + 1e-5 >= a.r + b.r, "overlap between {a:?} and {b:?}");
            }
        }
    }

    /// The enclosing circle contains every input circle.
    #[test]
    fn enclosure_contains_all(
        data in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0.1f64..10.0), 1..30)
    ) {
        let circles: Vec<Circle> = data.iter().map(|&(x, y, r)| Circle::new(x, y, r)).collect();
        let e = enclose(&circles).unwrap();
        for c in &circles {
            let d = ((c.x - e.x).powi(2) + (c.y - e.y).powi(2)).sqrt();
            prop_assert!(d + c.r <= e.r + 1e-4, "circle {c:?} escapes {e:?}");
        }
    }

    /// A linear scale and its inverse round-trip (non-degenerate domain).
    #[test]
    fn scale_inverts(
        d0 in -1000.0f64..1000.0,
        span in 0.5f64..1000.0,
        r0 in -500.0f64..500.0,
        rspan in 0.5f64..500.0,
        v in -2000.0f64..2000.0,
    ) {
        let s = LinearScale::new((d0, d0 + span), (r0, r0 + rspan));
        let back = s.invert(s.scale(v));
        prop_assert!((back - v).abs() < 1e-6, "round trip {v} -> {back}");
    }

    /// LTTB never exceeds its point budget and keeps the endpoints.
    #[test]
    fn lttb_budget_and_endpoints(
        values in prop::collection::vec(-1.0f64..1.0, 5..500),
        threshold in 3usize..50,
    ) {
        let points: Vec<(f64, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let out = lttb(&points, threshold);
        prop_assert!(out.len() <= threshold.max(points.len().min(threshold)));
        prop_assert!(out.len() <= points.len());
        prop_assert_eq!(out[0], points[0]);
        prop_assert_eq!(*out.last().unwrap(), *points.last().unwrap());
        // x strictly increasing.
        for w in out.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Douglas-Peucker keeps every original point within epsilon of the
    /// simplified polyline.
    #[test]
    fn douglas_peucker_error_bound(
        values in prop::collection::vec(-5.0f64..5.0, 3..200),
        eps in 0.05f64..2.0,
    ) {
        let points: Vec<(f64, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let out = douglas_peucker(&points, eps);
        prop_assert!(out.len() >= 2);
        // Douglas-Peucker bounds the *perpendicular distance to the line* of
        // the segment spanning each point's x-range (not the distance to the
        // clamped segment, which differs for steep slopes). Verify that.
        for &(px, py) in &points {
            // x is monotonic, so find the output segment containing px.
            let mut perp = f64::INFINITY;
            for w in out.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                if px >= x0 - 1e-9 && px <= x1 + 1e-9 {
                    let dx = x1 - x0;
                    let dy = y1 - y0;
                    let len = dx.hypot(dy).max(f64::EPSILON);
                    perp = ((px - x0) * dy - (py - y0) * dx).abs() / len;
                    break;
                }
            }
            prop_assert!(perp <= eps + 1e-6, "point off by {perp} > {eps}");
        }
    }

    /// A brush selection always stays inside its extent and is non-inverted.
    #[test]
    fn brush_selection_stays_valid(
        e0 in -100.0f64..100.0,
        espan in 1.0f64..200.0,
        a in -300.0f64..300.0,
        b in -300.0f64..300.0,
    ) {
        let mut brush = Brush::new((e0, e0 + espan));
        brush.select(a, b);
        if let Some((lo, hi)) = brush.selection() {
            prop_assert!(lo <= hi);
            prop_assert!(lo >= e0 - 1e-9 && hi <= e0 + espan + 1e-9);
        }
        // Pan and zoom preserve the invariant.
        brush.pan(50.0);
        brush.zoom(1.5);
        if let Some((lo, hi)) = brush.selection() {
            prop_assert!(lo >= e0 - 1e-9 && hi <= e0 + espan + 1e-9);
        }
    }

    /// 1-D clustering: members are partitioned and every cluster is internally
    /// gap-connected.
    #[test]
    fn clusters_partition_and_connect(
        positions in prop::collection::vec(0.0f64..1000.0, 0..100),
        gap in 0.1f64..50.0,
    ) {
        let clusters = cluster_1d(&positions, gap);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, positions.len());
        // Within a cluster, consecutive sorted members are within gap.
        for c in &clusters {
            let mut ps: Vec<f64> = c.members.iter().map(|&i| positions[i]).collect();
            ps.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for w in ps.windows(2) {
                prop_assert!(w[1] - w[0] <= gap + 1e-9);
            }
        }
    }

    /// TimeSeries resample preserves the time ordering and never invents
    /// samples outside the source span.
    #[test]
    fn resample_stays_in_span(
        values in prop::collection::vec(0.0f64..1.0, 2..200),
        res in 30i64..600,
    ) {
        let series: TimeSeries =
            values.iter().enumerate().map(|(i, &v)| (Timestamp::new(i as i64 * 60), v)).collect();
        let resampled = series
            .resample(batchlens::trace::TimeDelta::seconds(res), batchlens::trace::Resample::Mean)
            .unwrap_or_else(|_| TimeSeries::new());
        // Monotone timestamps.
        for w in resampled.times().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Values stay within the original [min, max].
        if let Some(src) = series.stats() {
            for v in resampled.values() {
                prop_assert!(*v >= src.min - 1e-9 && *v <= src.max + 1e-9);
            }
        }
    }

    /// The sweep-based aggregation kernels agree with the naive
    /// union-grid/binary-search reference implementations on random
    /// irregular grids.
    #[test]
    fn sweep_kernels_match_naive(
        grids in prop::collection::vec(
            prop::collection::vec((1i64..120, -2.0f64..2.0), 1..60),
            0..12,
        ),
    ) {
        // Cumulative-sum the gaps so each series gets its own irregular,
        // strictly increasing grid.
        let series: Vec<TimeSeries> = grids
            .iter()
            .map(|gaps| {
                let mut t = 0i64;
                gaps.iter()
                    .map(|&(gap, v)| {
                        t += gap;
                        (Timestamp::new(t), v)
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&TimeSeries> = series.iter().collect();

        let mean = TimeSeries::mean_of(refs.iter().copied());
        let naive_mean = batchlens::trace::naive::mean_of(refs.iter().copied());
        prop_assert_eq!(mean.times(), naive_mean.times());
        for (a, b) in mean.values().iter().zip(naive_mean.values()) {
            prop_assert!((a - b).abs() < 1e-9, "mean {a} vs {b}");
        }

        let sum = TimeSeries::sum_of(refs.iter().copied());
        let naive_sum = batchlens::trace::naive::sum_of(refs.iter().copied());
        prop_assert_eq!(sum.times(), naive_sum.times());
        for (a, b) in sum.values().iter().zip(naive_sum.values()) {
            prop_assert!((a - b).abs() < 1e-9, "sum {a} vs {b}");
        }

        let max = TimeSeries::max_of(refs.iter().copied());
        let naive_max = batchlens::trace::naive::max_of(refs.iter().copied());
        prop_assert_eq!(&max, &naive_max);

        if series.len() >= 2 {
            prop_assert_eq!(
                series[0].sub_series(&series[1]),
                batchlens::trace::naive::sub_series(&series[0], &series[1])
            );
        }
    }

    /// Selection-based quantiles agree with the sort-based definition.
    #[test]
    fn quantile_matches_sorted_definition(
        values in prop::collection::vec(-10.0f64..10.0, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let series: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64), v))
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let pos = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        let expected = sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64);
        let got = series.quantile(q).unwrap();
        prop_assert!((got - expected).abs() < 1e-9, "q={q}: {got} vs {expected}");
    }

    /// The dataset's indexed snapshot queries agree with linear scans over
    /// the instance table, for random interval layouts.
    #[test]
    fn indexed_dataset_queries_match_scans(
        rows in prop::collection::vec(
            (0i64..2000, 0i64..500, 1u32..6, 1u32..4, 0u32..8),
            1..80,
        ),
        probes in prop::collection::vec(-50i64..2600, 1..20),
    ) {
        use batchlens::trace::{
            BatchInstanceRecord, InstanceStatus, JobId, MachineId, TaskId,
            TraceDatasetBuilder,
        };
        let mut b = TraceDatasetBuilder::new();
        b.allow_dangling_instances();
        for (seq, &(start, dur, job, task, machine)) in rows.iter().enumerate() {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(start),
                end_time: Timestamp::new(start + dur),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq: seq as u32,
                total: rows.len() as u32,
                machine: MachineId::new(machine),
                status: InstanceStatus::Terminated,
                cpu_avg: 0.1,
                cpu_max: 0.2,
                mem_avg: 0.1,
                mem_max: 0.2,
            });
        }
        let ds = b.build().unwrap();
        for &t in &probes {
            let t = Timestamp::new(t);
            let mut scan_jobs: Vec<JobId> = ds
                .instance_records()
                .iter()
                .filter(|r| r.running_at(t))
                .map(|r| r.job)
                .collect();
            scan_jobs.sort_unstable();
            scan_jobs.dedup();
            let indexed: Vec<JobId> =
                ds.jobs_running_at(t).iter().map(|j| j.id()).collect();
            prop_assert_eq!(indexed, scan_jobs, "jobs_running_at {}", t);

            let scan_count =
                ds.instance_records().iter().filter(|r| r.running_at(t)).count();
            prop_assert_eq!(ds.running_instance_count_at(t), scan_count);
            prop_assert_eq!(ds.instances_running_at(t).len(), scan_count);

            for m in ds.machines() {
                let mut scan_m: Vec<JobId> = m
                    .instances()
                    .filter(|i| i.record.running_at(t))
                    .map(|i| i.record.job)
                    .collect();
                scan_m.sort_unstable();
                scan_m.dedup();
                prop_assert_eq!(m.jobs_at(t), scan_m, "jobs_at {} m{}", t, m.id());
                prop_assert_eq!(
                    m.running_instances_at(t),
                    m.instances().filter(|i| i.record.running_at(t)).count()
                );
            }
        }
    }

    /// Machine liveness from the indexed checkpoints agrees with an event
    /// scan, for random event sequences.
    #[test]
    fn alive_at_matches_event_scan(
        events in prop::collection::vec((0i64..1000, 0u32..4, 0u32..5), 0..40),
        probes in prop::collection::vec(-10i64..1100, 1..15),
    ) {
        use batchlens::trace::{
            MachineEvent, MachineEventRecord, MachineId, TraceDatasetBuilder,
        };
        let kind = |k: u32| match k {
            0 => MachineEvent::Add,
            1 => MachineEvent::SoftError,
            2 => MachineEvent::HardError,
            _ => MachineEvent::Remove,
        };
        let mut b = TraceDatasetBuilder::new();
        for &(t, k, m) in &events {
            b.push_machine_event(MachineEventRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(m),
                event: kind(k),
                capacity_cpu: 1.0,
                capacity_mem: 1.0,
                capacity_disk: 1.0,
            });
        }
        let ds = b.build().unwrap();
        for &t in &probes {
            let t = Timestamp::new(t);
            for m in ds.machines() {
                // Reference: walk this machine's events in time order;
                // events sharing one timestamp merge dead-wins (alive iff
                // every one keeps the machine alive), order-independently.
                let mut alive = true;
                let mut merged_at = None;
                for ev in ds.machine_events().iter().filter(|e| e.machine == m.id()) {
                    if ev.time > t {
                        break;
                    }
                    if merged_at == Some(ev.time) {
                        alive = alive && ev.event.keeps_alive();
                    } else {
                        alive = ev.event.keeps_alive();
                        merged_at = Some(ev.time);
                    }
                }
                prop_assert_eq!(m.alive_at(t), alive, "machine {} at {}", m.id(), t);
            }
        }
    }

    /// TimeRange intersection is commutative and contained in both operands.
    #[test]
    fn range_intersection_is_contained(
        a0 in -1000i64..1000, aspan in 0i64..1000,
        b0 in -1000i64..1000, bspan in 0i64..1000,
    ) {
        let a = TimeRange::new(Timestamp::new(a0), Timestamp::new(a0 + aspan)).unwrap();
        let b = TimeRange::new(Timestamp::new(b0), Timestamp::new(b0 + bspan)).unwrap();
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(i.start() >= a.start() && i.end() <= a.end());
            prop_assert!(i.start() >= b.start() && i.end() <= b.end());
        }
    }
}
