//! Property-based tests on core invariants across the workspace.

use batchlens::layout::annotation::cluster_1d;
use batchlens::layout::enclose::enclose;
use batchlens::layout::line::{douglas_peucker, lttb};
use batchlens::layout::pack::pack_siblings;
use batchlens::layout::{Brush, Circle, LinearScale};
use batchlens::trace::{TimeRange, TimeSeries, Timestamp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Packed circles never overlap (the core layout invariant).
    #[test]
    fn packed_circles_are_disjoint(radii in prop::collection::vec(0.1f64..20.0, 1..40)) {
        let mut circles: Vec<Circle> = radii.iter().map(|&r| Circle::new(0.0, 0.0, r)).collect();
        pack_siblings(&mut circles);
        for i in 0..circles.len() {
            for j in i + 1..circles.len() {
                let a = &circles[i];
                let b = &circles[j];
                let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                prop_assert!(d + 1e-5 >= a.r + b.r, "overlap between {a:?} and {b:?}");
            }
        }
    }

    /// The enclosing circle contains every input circle.
    #[test]
    fn enclosure_contains_all(
        data in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0.1f64..10.0), 1..30)
    ) {
        let circles: Vec<Circle> = data.iter().map(|&(x, y, r)| Circle::new(x, y, r)).collect();
        let e = enclose(&circles).unwrap();
        for c in &circles {
            let d = ((c.x - e.x).powi(2) + (c.y - e.y).powi(2)).sqrt();
            prop_assert!(d + c.r <= e.r + 1e-4, "circle {c:?} escapes {e:?}");
        }
    }

    /// A linear scale and its inverse round-trip (non-degenerate domain).
    #[test]
    fn scale_inverts(
        d0 in -1000.0f64..1000.0,
        span in 0.5f64..1000.0,
        r0 in -500.0f64..500.0,
        rspan in 0.5f64..500.0,
        v in -2000.0f64..2000.0,
    ) {
        let s = LinearScale::new((d0, d0 + span), (r0, r0 + rspan));
        let back = s.invert(s.scale(v));
        prop_assert!((back - v).abs() < 1e-6, "round trip {v} -> {back}");
    }

    /// LTTB never exceeds its point budget and keeps the endpoints.
    #[test]
    fn lttb_budget_and_endpoints(
        values in prop::collection::vec(-1.0f64..1.0, 5..500),
        threshold in 3usize..50,
    ) {
        let points: Vec<(f64, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let out = lttb(&points, threshold);
        prop_assert!(out.len() <= threshold.max(points.len().min(threshold)));
        prop_assert!(out.len() <= points.len());
        prop_assert_eq!(out[0], points[0]);
        prop_assert_eq!(*out.last().unwrap(), *points.last().unwrap());
        // x strictly increasing.
        for w in out.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Douglas-Peucker keeps every original point within epsilon of the
    /// simplified polyline.
    #[test]
    fn douglas_peucker_error_bound(
        values in prop::collection::vec(-5.0f64..5.0, 3..200),
        eps in 0.05f64..2.0,
    ) {
        let points: Vec<(f64, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let out = douglas_peucker(&points, eps);
        prop_assert!(out.len() >= 2);
        // Douglas-Peucker bounds the *perpendicular distance to the line* of
        // the segment spanning each point's x-range (not the distance to the
        // clamped segment, which differs for steep slopes). Verify that.
        for &(px, py) in &points {
            // x is monotonic, so find the output segment containing px.
            let mut perp = f64::INFINITY;
            for w in out.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                if px >= x0 - 1e-9 && px <= x1 + 1e-9 {
                    let dx = x1 - x0;
                    let dy = y1 - y0;
                    let len = dx.hypot(dy).max(f64::EPSILON);
                    perp = ((px - x0) * dy - (py - y0) * dx).abs() / len;
                    break;
                }
            }
            prop_assert!(perp <= eps + 1e-6, "point off by {perp} > {eps}");
        }
    }

    /// A brush selection always stays inside its extent and is non-inverted.
    #[test]
    fn brush_selection_stays_valid(
        e0 in -100.0f64..100.0,
        espan in 1.0f64..200.0,
        a in -300.0f64..300.0,
        b in -300.0f64..300.0,
    ) {
        let mut brush = Brush::new((e0, e0 + espan));
        brush.select(a, b);
        if let Some((lo, hi)) = brush.selection() {
            prop_assert!(lo <= hi);
            prop_assert!(lo >= e0 - 1e-9 && hi <= e0 + espan + 1e-9);
        }
        // Pan and zoom preserve the invariant.
        brush.pan(50.0);
        brush.zoom(1.5);
        if let Some((lo, hi)) = brush.selection() {
            prop_assert!(lo >= e0 - 1e-9 && hi <= e0 + espan + 1e-9);
        }
    }

    /// 1-D clustering: members are partitioned and every cluster is internally
    /// gap-connected.
    #[test]
    fn clusters_partition_and_connect(
        positions in prop::collection::vec(0.0f64..1000.0, 0..100),
        gap in 0.1f64..50.0,
    ) {
        let clusters = cluster_1d(&positions, gap);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, positions.len());
        // Within a cluster, consecutive sorted members are within gap.
        for c in &clusters {
            let mut ps: Vec<f64> = c.members.iter().map(|&i| positions[i]).collect();
            ps.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for w in ps.windows(2) {
                prop_assert!(w[1] - w[0] <= gap + 1e-9);
            }
        }
    }

    /// TimeSeries resample preserves the time ordering and never invents
    /// samples outside the source span.
    #[test]
    fn resample_stays_in_span(
        values in prop::collection::vec(0.0f64..1.0, 2..200),
        res in 30i64..600,
    ) {
        let series: TimeSeries =
            values.iter().enumerate().map(|(i, &v)| (Timestamp::new(i as i64 * 60), v)).collect();
        let resampled = series
            .resample(batchlens::trace::TimeDelta::seconds(res), batchlens::trace::Resample::Mean)
            .unwrap_or_else(|_| TimeSeries::new());
        // Monotone timestamps.
        for w in resampled.times().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Values stay within the original [min, max].
        if let Some(src) = series.stats() {
            for v in resampled.values() {
                prop_assert!(*v >= src.min - 1e-9 && *v <= src.max + 1e-9);
            }
        }
    }

    /// TimeRange intersection is commutative and contained in both operands.
    #[test]
    fn range_intersection_is_contained(
        a0 in -1000i64..1000, aspan in 0i64..1000,
        b0 in -1000i64..1000, bspan in 0i64..1000,
    ) {
        let a = TimeRange::new(Timestamp::new(a0), Timestamp::new(a0 + aspan)).unwrap();
        let b = TimeRange::new(Timestamp::new(b0), Timestamp::new(b0 + bspan)).unwrap();
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(i.start() >= a.start() && i.end() <= a.end());
            prop_assert!(i.start() >= b.start() && i.end() <= b.end());
        }
    }
}
