//! Property-based tests for the anomaly detectors and new analytics.

use batchlens::analytics::detect::{
    CusumDetector, Detector, EwmaDetector, IqrDetector, MadDetector, ThresholdDetector,
    ZScoreDetector,
};
use batchlens::analytics::temporal::{correlation, features};
use batchlens::trace::{TimeDelta, TimeSeries, Timestamp};
use proptest::prelude::*;

fn to_series(values: &[f64]) -> TimeSeries {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// No generic detector ever flags a constant series (no signal).
    #[test]
    fn constant_series_is_never_flagged(level in 0.0f64..1.0, n in 5usize..200) {
        let s = to_series(&vec![level; n]);
        prop_assert!(ThresholdDetector::new(1.01).detect(&s).is_empty());
        prop_assert!(ZScoreDetector::new(3.0).detect(&s).is_empty());
        prop_assert!(MadDetector::new(3.5).detect(&s).is_empty());
        prop_assert!(IqrDetector::new(1.5).detect(&s).is_empty());
        prop_assert!(EwmaDetector::default().detect(&s).is_empty());
        prop_assert!(CusumDetector::default().detect(&s).is_empty());
    }

    /// Every reported span lies inside the series' time span and is
    /// non-empty.
    #[test]
    fn spans_are_well_formed(
        values in prop::collection::vec(0.0f64..1.0, 20..300),
    ) {
        let s = to_series(&values);
        let span = s.span().unwrap();
        for d in detectors() {
            for sp in d.detect(&s) {
                prop_assert!(!sp.range.is_empty());
                prop_assert!(sp.range.start() >= span.start());
                prop_assert!(sp.range.end() <= span.end() + TimeDelta::seconds(60));
                // Peak time is inside the flagged range.
                prop_assert!(sp.range.contains(sp.peak_time)
                    || sp.peak_time == sp.range.start());
            }
        }
    }

    /// A threshold detector flags more (or equal) as the threshold drops.
    #[test]
    fn lower_threshold_flags_monotonically_more(
        values in prop::collection::vec(0.0f64..1.0, 30..200),
    ) {
        let s = to_series(&values);
        let hi = count_flagged(&ThresholdDetector { high: 0.8, min_samples: 1 }, &s);
        let lo = count_flagged(&ThresholdDetector { high: 0.5, min_samples: 1 }, &s);
        prop_assert!(lo >= hi);
    }

    /// Correlation is symmetric and in [-1, 1].
    #[test]
    fn correlation_is_bounded_and_symmetric(
        a in prop::collection::vec(-1.0f64..1.0, 10..100),
        b in prop::collection::vec(-1.0f64..1.0, 10..100),
    ) {
        let n = a.len().min(b.len());
        let sa = to_series(&a[..n]);
        let sb = to_series(&b[..n]);
        if let Some(r) = correlation(&sa, &sb, TimeDelta::seconds(60)) {
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&r));
            let r2 = correlation(&sb, &sa, TimeDelta::seconds(60)).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    /// Every detected feature's value equals the series value at its time.
    #[test]
    fn features_are_real_samples(
        values in prop::collection::vec(0.0f64..1.0, 30..200),
        window in 2usize..8,
        prom in 0.05f64..0.5,
    ) {
        let s = to_series(&values);
        for f in features(&s, window, prom) {
            let v = s.value_at(f.at).unwrap();
            prop_assert!((v - f.value).abs() < 1e-12);
            prop_assert!(f.prominence >= prom);
        }
    }
}

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(ThresholdDetector::new(0.9)),
        Box::new(ZScoreDetector::new(3.0)),
        Box::new(MadDetector::new(3.5)),
        Box::new(IqrDetector::new(1.5)),
        Box::new(EwmaDetector::default()),
        Box::new(CusumDetector::default()),
    ]
}

fn count_flagged(d: &dyn Detector, s: &TimeSeries) -> usize {
    d.detect(s)
        .iter()
        .map(|sp| s.times().iter().filter(|&&t| sp.range.contains(t)).count())
        .sum()
}
