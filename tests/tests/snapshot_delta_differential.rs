//! Differential proptests for the delta snapshot engine: a
//! [`SnapshotScrubber`] walked across **random timestamp walks** — forward,
//! backward, repeats, far jumps — must produce hierarchy snapshots and
//! co-allocation indexes **bit-identical** to the from-scratch
//! `HierarchySnapshot::at` / `CoallocationIndex::at` builders at every
//! step, on both query sources:
//!
//! * a batch `TraceDataset` (immutable: one rebase, then pure deltas), and
//! * a `StreamMonitor`'s `LiveWindowView` with straggler / out-of-order
//!   ingest interleaved between scrub steps (every ingest bumps the
//!   monitor's state version, forcing the scrubber through its single-lock
//!   frame rebase; idle stretches advance by pure delta).
//!
//! The suite also pins the frame consistency guarantee: products derived
//! from one `QueryFrame` equal the individually-queried ones whenever the
//! source holds still.

use batchlens::analytics::coalloc::CoallocationIndex;
use batchlens::analytics::hierarchy::HierarchySnapshot;
use batchlens::analytics::scrub::SnapshotScrubber;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{
    BatchInstanceRecord, BatchTaskRecord, DatasetQuery, JobId, MachineEvent, MachineEventRecord,
    MachineId, ServerUsageRecord, TaskId, TaskStatus, TimeDelta, Timestamp, TraceDataset,
    TraceDatasetBuilder, UtilizationTriple,
};
use proptest::prelude::*;

const MACHINES: u32 = 6;

/// A random record soup: instance windows (with empties and stragglers),
/// usage rows and lifecycle events, plus a random scrub walk.
#[derive(Debug, Clone)]
struct Soup {
    tasks: Vec<BatchTaskRecord>,
    instances: Vec<BatchInstanceRecord>,
    usage: Vec<ServerUsageRecord>,
    events: Vec<MachineEventRecord>,
}

fn soup_strategy() -> impl Strategy<Value = Soup> {
    (
        prop::collection::vec(
            // (job, task, machine, start, duration)
            (0u32..5, 1u32..4, 0..MACHINES, 0i64..4_000, 0i64..2_500),
            1..40,
        ),
        prop::collection::vec(
            // (machine, time, cpu) — in-order per machine after sorting.
            (0..MACHINES, 0i64..6_000, 0.0f64..1.0),
            0..120,
        ),
        prop::collection::vec((0..MACHINES, 0i64..6_000, 0u8..4), 0..10),
    )
        .prop_map(|(inst_rows, usage_rows, event_rows)| {
            let mut tasks = Vec::new();
            let mut instances = Vec::new();
            let mut seen_task = std::collections::BTreeSet::new();
            let mut seq_of = std::collections::BTreeMap::new();
            for (job, task, machine, start, dur) in inst_rows {
                if seen_task.insert((job, task)) {
                    tasks.push(BatchTaskRecord {
                        create_time: Timestamp::new(0),
                        modify_time: Timestamp::new(60_000),
                        job: JobId::new(job),
                        task: TaskId::new(task),
                        instance_count: 1,
                        status: TaskStatus::Terminated,
                        plan_cpu: 1.0,
                        plan_mem: 0.5,
                    });
                }
                let seq = seq_of.entry((job, task)).or_insert(0u32);
                let dur = if dur % 10 == 9 { 50_000 } else { dur }; // straggler
                instances.push(BatchInstanceRecord {
                    start_time: Timestamp::new(start),
                    end_time: Timestamp::new(start + dur),
                    job: JobId::new(job),
                    task: TaskId::new(task),
                    seq: *seq,
                    total: 1,
                    machine: MachineId::new(machine),
                    status: TaskStatus::Terminated,
                    cpu_avg: 0.4,
                    cpu_max: 0.6,
                    mem_avg: 0.3,
                    mem_max: 0.5,
                });
                *seq += 1;
            }
            // Deduplicate usage (machine, time) and order per machine so the
            // batch builder accepts the rows; live delivery re-orders below.
            let mut seen_usage = std::collections::BTreeSet::new();
            let mut usage = Vec::new();
            for (machine, t, cpu) in usage_rows {
                if seen_usage.insert((machine, t)) {
                    usage.push(ServerUsageRecord {
                        time: Timestamp::new(t),
                        machine: MachineId::new(machine),
                        util: UtilizationTriple::clamped(cpu, cpu * 0.7, cpu * 0.4),
                    });
                }
            }
            usage.sort_by_key(|r| (r.machine, r.time));
            let events = event_rows
                .into_iter()
                .map(|(machine, t, kind)| MachineEventRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(machine),
                    event: match kind {
                        0 => MachineEvent::Add,
                        1 => MachineEvent::SoftError,
                        2 => MachineEvent::HardError,
                        _ => MachineEvent::Remove,
                    },
                    capacity_cpu: 1.0,
                    capacity_mem: 1.0,
                    capacity_disk: 1.0,
                })
                .collect();
            Soup {
                tasks,
                instances,
                usage,
                events,
            }
        })
}

/// A scrub walk: arbitrary hops across (and past) the soup's span, with
/// explicit repeats so the same-instant shortcut is exercised.
fn walk_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec((-500i64..7_000, 0u8..2), 1..30).prop_map(|steps| {
        let mut walk = Vec::new();
        for (t, repeat) in steps {
            walk.push(t);
            if repeat == 1 {
                walk.push(t); // revisit the exact instant
            }
        }
        walk
    })
}

fn build_dataset(soup: &Soup) -> TraceDataset {
    let mut b = TraceDatasetBuilder::new();
    b.extend_tables(
        soup.tasks.iter().copied(),
        soup.instances.iter().copied(),
        soup.usage.iter().cloned(),
        soup.events.iter().copied(),
    );
    b.build().expect("soup is valid")
}

/// Asserts the scrubber's products at its cursor equal the from-scratch
/// builders on `src`.
fn assert_scrub_matches<Q: DatasetQuery + ?Sized>(
    scrub: &mut SnapshotScrubber,
    src: &Q,
    t: Timestamp,
) -> Result<(), TestCaseError> {
    scrub.seek(src, t);
    prop_assert_eq!(
        scrub.snapshot(src),
        &HierarchySnapshot::at(src, t),
        "hierarchy snapshot at {}",
        t
    );
    prop_assert_eq!(
        scrub.coalloc(),
        &CoallocationIndex::at(src, t),
        "coallocation at {}",
        t
    );
    prop_assert_eq!(
        scrub.running_instance_count(),
        src.running_instance_count_at(t),
        "running multiset cardinality at {}",
        t
    );
    prop_assert_eq!(
        scrub.machines_active(),
        &src.machines_active_at(t)[..],
        "delta-maintained active machine set at {}",
        t
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch source: one rebase on the first seek, then pure deltas (and
    /// the periodic policy) across the whole walk — bit-identical at every
    /// step, at several rebase periods including "never".
    #[test]
    fn scrubbed_equals_from_scratch_on_batch(
        soup in soup_strategy(),
        walk in walk_strategy(),
        rebase_choice in 0usize..3,
    ) {
        let rebase_every = [0u32, 3, 1024][rebase_choice];
        let ds = build_dataset(&soup);
        let mut scrub = SnapshotScrubber::with_rebase_every(rebase_every);
        for &t in &walk {
            assert_scrub_matches(&mut scrub, &ds, Timestamp::new(t))?;
        }
        let stats = scrub.stats();
        prop_assert!(stats.rebases >= 1);
        if rebase_every == 0 {
            prop_assert_eq!(
                stats.rebases, 1,
                "immutable source + disabled policy: only the first seek rebases"
            );
        }
    }

    /// Live source: the same walk with straggler/out-of-order ingest
    /// interleaved between scrub steps. Every ingest bumps the monitor's
    /// version (forcing a single-lock frame rebase); idle stretches advance
    /// by delta. Scrubbed == from-scratch at every step regardless.
    #[test]
    fn scrubbed_equals_from_scratch_on_live(
        soup in soup_strategy(),
        walk in walk_strategy(),
        chunk in 1usize..6,
    ) {
        let monitor = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::hours(100),
            ooo_tolerance: TimeDelta::seconds(600),
            ..Default::default()
        }).unwrap();
        let view = monitor.live_view();
        let mut scrub = SnapshotScrubber::new();
        let mut walk_iter = walk.iter().cycle();
        let mut steps_taken = 0usize;
        // Interleave: `chunk` structural/usage ingests, then one scrub
        // step, until the soup is drained. Delivery is deliberately
        // shuffled: instances round-robin between the completed-record path
        // and the open/close path, events arrive reversed (out of order),
        // usage arrives with a bounded backward jitter (late within
        // tolerance).
        let mut feed: Vec<Feed> = Vec::new();
        for (i, rec) in soup.instances.iter().enumerate() {
            feed.push(Feed::Instance(i, *rec));
        }
        for ev in soup.events.iter().rev() {
            feed.push(Feed::Event(*ev));
        }
        let mut usage = soup.usage.clone();
        usage.sort_by_key(|r| (r.time, r.machine));
        feed.extend(usage.into_iter().map(Feed::Usage));
        for (i, item) in feed.iter().enumerate() {
            match item {
                Feed::Instance(i, rec) => {
                    if i % 2 == 0 {
                        monitor.ingest_instance(*rec);
                    } else {
                        monitor.instance_started(
                            rec.job, rec.task, rec.seq, rec.machine, rec.start_time,
                        );
                        monitor.instance_finished(rec.job, rec.task, rec.seq, rec.end_time);
                    }
                }
                Feed::Event(ev) => monitor.ingest_machine_event(*ev),
                Feed::Usage(rec) => {
                    monitor.ingest(*rec);
                }
            }
            if i % chunk == chunk - 1 {
                let &t = walk_iter.next().expect("cycle never ends");
                assert_scrub_matches(&mut scrub, &view, Timestamp::new(t))?;
                steps_taken += 1;
            }
        }
        let _ = steps_taken;
        // Replay the whole walk against the now-idle monitor: one rebase to
        // catch up with the final version, pure delta steps from there.
        let rebases_when_idle_starts = scrub.stats().rebases;
        for &t in &walk {
            assert_scrub_matches(&mut scrub, &view, Timestamp::new(t))?;
        }
        let stats = scrub.stats();
        prop_assert!(
            stats.rebases <= rebases_when_idle_starts + 1,
            "an idle monitor must not force rebases (allowing one for the \
             first post-ingest version catch-up): {:?}",
            stats
        );
    }

    /// Frame consistency: every product derived from one captured
    /// `QueryFrame` equals its individually-queried counterpart while the
    /// source holds still — on both sources.
    #[test]
    fn frame_products_equal_individual_queries(soup in soup_strategy()) {
        let ds = build_dataset(&soup);
        let monitor = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::hours(100),
            ..Default::default()
        }).unwrap();
        monitor.ingest_instances(soup.instances.iter().copied());
        for ev in &soup.events {
            monitor.ingest_machine_event(*ev);
        }
        for rec in &soup.usage {
            monitor.ingest(*rec);
        }
        let view = monitor.live_view();
        for t in (-300i64..6_500).step_by(911) {
            let t = Timestamp::new(t);
            for frame in [ds.frame(t), view.frame(t)] {
                let (snap, coalloc) = (
                    HierarchySnapshot::from_frame(&frame),
                    CoallocationIndex::from_frame(&frame),
                );
                if frame.version() == 0 {
                    prop_assert_eq!(&snap, &HierarchySnapshot::at(&ds, t));
                    prop_assert_eq!(&coalloc, &CoallocationIndex::at(&ds, t));
                } else {
                    prop_assert_eq!(&snap, &HierarchySnapshot::at(&view, t));
                    prop_assert_eq!(&coalloc, &CoallocationIndex::at(&view, t));
                    prop_assert_eq!(frame.machines_active(), view.machines_active_at(t));
                }
            }
        }
    }
}

/// One delivery of the interleaved live feed.
#[derive(Debug, Clone)]
enum Feed {
    Instance(usize, BatchInstanceRecord),
    Event(MachineEventRecord),
    Usage(ServerUsageRecord),
}

/// Hand-pinned regression: a backward-in-time scrub right after eviction
/// reshaped the window must still match from-scratch (the delta engine may
/// only ever be compared against the live state it versioned, not the
/// pre-eviction past).
#[test]
fn backward_scrub_after_eviction_matches_from_scratch() {
    let monitor = StreamMonitor::new(StreamConfig {
        horizon: TimeDelta::seconds(600),
        ..Default::default()
    })
    .unwrap();
    let view = monitor.live_view();
    let inst = |job: u32, seq: u32, s: i64, e: i64| BatchInstanceRecord {
        start_time: Timestamp::new(s),
        end_time: Timestamp::new(e),
        job: JobId::new(job),
        task: TaskId::new(1),
        seq,
        total: 1,
        machine: MachineId::new(1),
        status: TaskStatus::Terminated,
        cpu_avg: 0.1,
        cpu_max: 0.2,
        mem_avg: 0.1,
        mem_max: 0.2,
    };
    let mut scrub = SnapshotScrubber::new();
    monitor.ingest_instance(inst(1, 0, 0, 100));
    monitor.ingest_instance(inst(2, 0, 0, 650));
    scrub.seek(&view, Timestamp::new(50));
    assert_eq!(
        *scrub.snapshot(&view),
        HierarchySnapshot::at(&view, Timestamp::new(50))
    );
    // Frontier jumps to 1200: job 1's interval is evicted. The version bump
    // forces a rebase, so the backward hop sees the post-eviction state.
    monitor.ingest_instance(inst(3, 0, 1100, 1200));
    for t in [1150i64, 50, 500, 1199] {
        let t = Timestamp::new(t);
        scrub.seek(&view, t);
        assert_eq!(
            *scrub.snapshot(&view),
            HierarchySnapshot::at(&view, t),
            "{t}"
        );
        assert_eq!(*scrub.coalloc(), CoallocationIndex::at(&view, t), "{t}");
    }
}
