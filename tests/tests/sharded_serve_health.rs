//! Serving-layer health integration for sharded monitors: one shard's WAL
//! going unhealthy must flip `/readyz` to `503` and show up as that
//! shard's `wal_errors` entry in `/statsz` — the server never reports
//! ready while *any* shard's log is lossy.

use std::sync::Arc;

use batchlens::shard::ShardedMonitor;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::wal::{WalConfig, WalWriter};
use batchlens::trace::{MachineId, ServerUsageRecord, Timestamp, UtilizationTriple};
use batchlens::BatchLens;
use batchlens_serve::router::{route, RouterContext};
use batchlens_serve::session::SessionManager;
use batchlens_serve::stats::{ServeStats, StatszPayload};

fn rec(machine: u32, t: i64) -> ServerUsageRecord {
    ServerUsageRecord {
        time: Timestamp::new(t),
        machine: MachineId::new(machine),
        util: UtilizationTriple::clamped(0.5, 0.3, 0.3),
    }
}

fn get(target: &str) -> batchlens_serve::codec::Request {
    batchlens_serve::codec::Request {
        method: "GET".to_string(),
        target: target.to_string(),
        minor_version: 1,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "batchlens-serve-shard-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn statsz(ctx: &RouterContext<'_>) -> StatszPayload {
    let resp = route(ctx, &get("/statsz"));
    assert_eq!(resp.status, 200);
    serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
}

/// One shard's failed WAL append degrades readiness and is attributed to
/// exactly that shard in `/statsz`.
#[test]
fn one_unhealthy_shard_wal_degrades_readiness() {
    let _g = batchlens_fault::test_guard();
    let dir = temp_dir("degrade");
    let dataset = scenario::fig3b(17).run().unwrap();
    let monitor = Arc::new(ShardedMonitor::new(StreamConfig::default(), 4).unwrap());
    monitor
        .attach_wal_family(&dir, WalConfig::default())
        .unwrap();
    let mut lens = BatchLens::new(dataset);
    lens.attach_sharded_monitor(Arc::clone(&monitor));
    let manager = SessionManager::new(Arc::new(lens));
    let stats = ServeStats::new();
    let ctx = RouterContext {
        manager: &manager,
        stats: &stats,
        workers: 1,
    };

    monitor.ingest(rec(0, 0));
    monitor.ingest(rec(1, 0));
    let ready = route(&ctx, &get("/readyz"));
    assert_eq!(ready.status, 200);
    let payload = statsz(&ctx);
    assert!(payload.live);
    assert!(payload.wal_healthy);
    assert_eq!(payload.shard_wal_errors, vec![0, 0, 0, 0]);
    assert_eq!(payload.shard_ingested.len(), 4);
    assert_eq!(payload.shard_ingested.iter().sum::<u64>(), 2);

    // Fail exactly one append: the next delivery routes to machine 0's
    // shard, and only that shard's log takes the error.
    let victim = monitor.shard_of(MachineId::new(0));
    batchlens_fault::arm(
        "wal.append",
        batchlens_fault::FaultSpec::new(
            batchlens_fault::Fault::Error,
            batchlens_fault::Trigger::Times(1),
        ),
    );
    monitor.ingest(rec(0, 60));
    batchlens_fault::disarm_all();

    assert!(!monitor.wal_healthy());
    let ready = route(&ctx, &get("/readyz"));
    assert_eq!(
        ready.status, 503,
        "any unhealthy shard WAL blocks readiness"
    );
    let body = String::from_utf8_lossy(&ready.body).to_string();
    assert!(body.contains("\"wal_healthy\":false"), "{body}");

    let payload = statsz(&ctx);
    assert!(!payload.wal_healthy);
    let mut expected = vec![0u64; 4];
    expected[victim] = 1;
    assert_eq!(
        payload.shard_wal_errors, expected,
        "the error is attributed to the shard that owns machine 0"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The single-monitor path reports the same shape: one-entry shard vectors
/// and the same readiness gate (no regression from the LiveSource switch).
#[test]
fn single_monitor_health_keeps_the_same_gate() {
    let _g = batchlens_fault::test_guard();
    let dir = temp_dir("single");
    let dataset = scenario::fig3b(18).run().unwrap();
    let monitor = Arc::new(StreamMonitor::new(StreamConfig::default()).unwrap());
    monitor.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
    let mut lens = BatchLens::new(dataset);
    lens.attach_live_monitor(Arc::clone(&monitor));
    let manager = SessionManager::new(Arc::new(lens));
    let stats = ServeStats::new();
    let ctx = RouterContext {
        manager: &manager,
        stats: &stats,
        workers: 1,
    };

    let payload = statsz(&ctx);
    assert!(payload.live);
    assert_eq!(payload.shard_wal_errors, vec![0]);
    assert_eq!(route(&ctx, &get("/readyz")).status, 200);

    batchlens_fault::arm(
        "wal.append",
        batchlens_fault::FaultSpec::new(
            batchlens_fault::Fault::Error,
            batchlens_fault::Trigger::Times(1),
        ),
    );
    monitor.ingest(rec(0, 0));
    batchlens_fault::disarm_all();

    assert_eq!(route(&ctx, &get("/readyz")).status, 503);
    let payload = statsz(&ctx);
    assert!(!payload.wal_healthy);
    assert_eq!(payload.shard_wal_errors, vec![1]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Alert cursors served over a sharded facade: a session's poll drains the
/// same global sequence a single monitor would produce.
#[test]
fn sessions_poll_alerts_from_the_sharded_facade() {
    let dataset = scenario::fig3b(19).run().unwrap();
    let monitor = Arc::new(ShardedMonitor::new(StreamConfig::default(), 4).unwrap());
    let mut lens = BatchLens::new(dataset);
    lens.attach_sharded_monitor(Arc::clone(&monitor));
    let manager = SessionManager::new(Arc::new(lens));
    let created = manager.create();

    // Saturation run on one machine fires alerts into the global ring.
    for k in 0..30 {
        monitor.ingest(ServerUsageRecord {
            time: Timestamp::new(k * 60),
            machine: MachineId::new(2),
            util: UtilizationTriple::clamped(0.95, 0.3, 0.3),
        });
    }
    use batchlens::stream::AlertSource;
    let fired = monitor.next_alert_seq();
    assert!(fired > 0, "scenario must fire alerts");
    let poll = manager.poll_alerts(created.session).unwrap();
    assert!(poll.live);
    assert_eq!(poll.alerts.len() as u64, fired - created.cursor);
    assert_eq!(poll.next_seq, fired);
    for pair in poll.alerts.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "global seq is contiguous");
    }
    // A second poll delivers nothing new (exactly-once per cursor).
    assert!(manager
        .poll_alerts(created.session)
        .unwrap()
        .alerts
        .is_empty());
}
