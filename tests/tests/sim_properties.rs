//! Property-based tests on the simulator's invariants: whatever seed or size
//! it runs at, the output must be a valid, paper-shaped trace.

use batchlens::sim::{SchedulerKind, SimConfig, Simulation};
use batchlens::trace::stats::DatasetStats;
use batchlens::trace::{TimeRange, Timestamp};
use proptest::prelude::*;

fn config(seed: u64, machines: u32, hours: i64, sched: u8) -> SimConfig {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = machines;
    cfg.window = TimeRange::new(Timestamp::ZERO, Timestamp::new(hours * 3600)).unwrap();
    cfg.scheduler = match sched % 3 {
        0 => SchedulerKind::LeastLoaded,
        1 => SchedulerKind::RoundRobin,
        _ => SchedulerKind::Packing,
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Any valid config produces a structurally sound dataset: the hierarchy
    /// nests (instances ≥ tasks ≥ jobs) and every instance window is valid.
    #[test]
    fn output_is_always_structurally_sound(
        seed in 0u64..1000,
        machines in 5u32..80,
        hours in 1i64..8,
        sched in 0u8..3,
    ) {
        let ds = Simulation::new(config(seed, machines, hours, sched)).run().unwrap();
        let st = DatasetStats::compute(&ds);
        prop_assert!(st.instances >= st.tasks);
        prop_assert!(st.tasks >= st.jobs);
        prop_assert_eq!(st.machines, machines as usize);
        // Every instance has a non-inverted window and a known machine.
        for rec in ds.instance_records() {
            prop_assert!(rec.end_time >= rec.start_time);
            prop_assert!(ds.machine(rec.machine).is_some());
        }
    }

    /// The span never exceeds the observation window (boundary jobs are
    /// truncated), so the headline "24 h" analogue always holds.
    #[test]
    fn span_is_within_the_window(
        seed in 0u64..1000,
        machines in 5u32..60,
        hours in 1i64..6,
    ) {
        let window_s = hours * 3600;
        let ds = Simulation::new(config(seed, machines, hours, 0)).run().unwrap();
        if let Some(span) = ds.span() {
            prop_assert!(span.duration().as_seconds() <= window_s);
            prop_assert!(span.start() >= Timestamp::ZERO);
        }
    }

    /// Re-running the same config is bit-identical (determinism).
    #[test]
    fn same_config_is_deterministic(
        seed in 0u64..1000,
        machines in 5u32..40,
        sched in 0u8..3,
    ) {
        let a = Simulation::new(config(seed, machines, 2, sched)).run().unwrap();
        let b = Simulation::new(config(seed, machines, 2, sched)).run().unwrap();
        prop_assert_eq!(a.job_count(), b.job_count());
        prop_assert_eq!(a.instance_count(), b.instance_count());
        prop_assert_eq!(a.instance_records(), b.instance_records());
    }

    /// Over a large enough sample, the Section II fractions stay in band
    /// regardless of seed.
    #[test]
    fn section_ii_fractions_stay_in_band(seed in 0u64..2000) {
        let ds = Simulation::new(config(seed, 80, 6, 0)).run().unwrap();
        let st = DatasetStats::compute(&ds);
        // Only assert when the sample is large enough to be meaningful.
        if st.jobs >= 100 {
            prop_assert!((0.65..=0.85).contains(&st.single_task_job_fraction),
                "single-task {}", st.single_task_job_fraction);
        }
        if st.tasks >= 100 {
            prop_assert!((0.88..=0.99).contains(&st.multi_instance_task_fraction),
                "multi-instance {}", st.multi_instance_task_fraction);
        }
    }

    /// Utilization never leaves [0, 1] on any machine at any sample, whatever
    /// the injected load.
    #[test]
    fn utilization_is_always_bounded(
        seed in 0u64..500,
        machines in 5u32..40,
    ) {
        let ds = Simulation::new(config(seed, machines, 3, 0)).run().unwrap();
        for m in ds.machines() {
            for metric in batchlens::trace::Metric::ALL {
                if let Some(series) = m.usage(metric) {
                    for v in series.values() {
                        prop_assert!((0.0..=1.0).contains(v), "util {v} out of range");
                    }
                }
            }
        }
    }
}
