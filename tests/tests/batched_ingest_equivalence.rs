//! Property suite for epoch-batched ingestion: [`StreamMonitor::ingest_batch`]
//! over any partition of a delivery sequence into sealed epochs must be
//! **bit-identical** to ingesting the same records one at a time — alerts
//! (values and sequence numbers), every counter, `state_version` (the
//! version advances per *accepted record*, never per batch — batching
//! amortizes the lock, not the version), the retained windows, and the
//! WAL: replaying a batch-logged monitor reproduces the same state plus
//! the sealed-epoch frontier.
//!
//! CI runs this suite at 512 cases in the deep-properties job.

use batchlens::stream::{BatchSequencer, StreamConfig, StreamMonitor};
use batchlens::trace::{
    DatasetQuery, MachineId, Metric, ServerUsageRecord, TimeDelta, TimeRange, Timestamp,
    UtilizationTriple,
};
use proptest::prelude::*;

const MACHINES: u32 = 5;
const TOLERANCE_S: i64 = 200;

/// Usage deliveries with bounded jitter (some beyond tolerance) plus the
/// epoch partition width.
fn deliveries_strategy() -> impl Strategy<Value = (Vec<ServerUsageRecord>, usize)> {
    (
        prop::collection::vec(
            (0..MACHINES, 0i64..5_000, 0.0f64..1.0, 0i64..2 * TOLERANCE_S),
            1..200,
        ),
        1usize..30,
    )
        .prop_map(|(rows, chunk)| {
            let mut deliveries: Vec<(i64, ServerUsageRecord)> = rows
                .into_iter()
                .map(|(machine, t, cpu, jitter)| {
                    let rec = ServerUsageRecord {
                        time: Timestamp::new(t),
                        machine: MachineId::new(machine),
                        util: UtilizationTriple::clamped(cpu, cpu * 0.6, cpu * 0.3),
                    };
                    (t + jitter, rec)
                })
                .collect();
            deliveries.sort_by_key(|&(arrival, rec)| (arrival, rec.machine, rec.time));
            (deliveries.into_iter().map(|(_, r)| r).collect(), chunk)
        })
}

fn cfg() -> StreamConfig {
    StreamConfig {
        horizon: TimeDelta::hours(100),
        ooo_tolerance: TimeDelta::seconds(TOLERANCE_S),
        ..Default::default()
    }
}

fn assert_equal_state(
    batched: &StreamMonitor,
    serial: &StreamMonitor,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(batched.state_version(), serial.state_version());
    prop_assert_eq!(batched.ingested(), serial.ingested());
    prop_assert_eq!(batched.stale_dropped(), serial.stale_dropped());
    prop_assert_eq!(batched.late_accepted(), serial.late_accepted());
    prop_assert_eq!(batched.tracked_machines(), serial.tracked_machines());
    prop_assert_eq!(batched.peek_alerts(), serial.peek_alerts());
    prop_assert_eq!(batched.total_alerts(), serial.total_alerts());
    prop_assert_eq!(batched.next_alert_seq(), serial.next_alert_seq());
    let w = TimeRange::new(Timestamp::new(-500), Timestamp::new(12_000)).unwrap();
    for machine in 0..MACHINES {
        let m = MachineId::new(machine);
        for metric in Metric::ALL {
            prop_assert_eq!(
                batched.live_view().series_window(m, metric, &w),
                serial.live_view().series_window(m, metric, &w),
                "series_window({}, {:?})",
                m,
                metric
            );
        }
    }
    for t in (-200..5_500).step_by(397).map(Timestamp::new) {
        prop_assert_eq!(batched.live_view().frame(t), serial.live_view().frame(t));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any partition of the delivery sequence into sealed epochs lands in
    /// the same state as record-at-a-time ingestion — and the concatenated
    /// per-epoch alert returns equal the per-record returns exactly.
    #[test]
    fn batch_partitions_equal_singles(input in deliveries_strategy()) {
        let (deliveries, chunk) = input;
        let sequencer = BatchSequencer::new();
        let batched = StreamMonitor::new(cfg()).unwrap();
        let serial = StreamMonitor::new(cfg()).unwrap();
        let mut versions = Vec::new();
        for part in deliveries.chunks(chunk) {
            let batch = sequencer.seal(
                part.last().map_or(Timestamp::new(0), |r| r.time),
                part.to_vec(),
            );
            let before = batched.state_version();
            let from_batch = batched.ingest_batch(&batch);
            // state_version delta == accepted deliveries in the epoch:
            // usage acceptances bump it once each; the seal marker does not.
            versions.push((batch.version, batched.state_version() - before));
            let mut from_singles = Vec::new();
            for &rec in part {
                from_singles.extend(serial.ingest(rec));
            }
            prop_assert_eq!(from_batch, from_singles, "per-epoch alert parity");
            prop_assert_eq!(batched.sealed_epoch(), Some(batch.version));
        }
        assert_equal_state(&batched, &serial)?;
        prop_assert_eq!(serial.sealed_epoch(), None, "singles seal nothing");
        // Documented contract: Σ per-epoch version deltas == total accepted.
        let total: u64 = versions.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(total, batched.state_version());
        // Epoch versions from one sequencer are contiguous from 1.
        for (i, &(v, _)) in versions.iter().enumerate() {
            prop_assert_eq!(v, i as u64 + 1);
        }
    }

    /// WAL replay of a batch-logged monitor is bit-identical to the
    /// pre-crash monitor *and* to a serial never-crashed monitor —
    /// `EpochSealed` markers replay as state no-ops, restoring only the
    /// sealed-epoch frontier.
    #[test]
    fn batch_logged_wal_replays_bit_identically(input in deliveries_strategy()) {
        let (deliveries, chunk) = input;
        use batchlens::trace::wal::{WalConfig, WalWriter};
        use std::sync::atomic::{AtomicU64, Ordering};
        static DIR_ID: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "batchlens-batch-equiv-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let sequencer = BatchSequencer::new();
        let batched = StreamMonitor::new(cfg()).unwrap();
        batched.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        let serial = StreamMonitor::new(cfg()).unwrap();
        let mut last_version = None;
        for part in deliveries.chunks(chunk) {
            let batch = sequencer.seal(
                part.last().map_or(Timestamp::new(0), |r| r.time),
                part.to_vec(),
            );
            batched.ingest_batch(&batch);
            for &rec in part {
                serial.ingest(rec);
            }
            last_version = Some(batch.version);
        }
        prop_assert_eq!(batched.wal_errors(), 0);
        drop(batched.detach_wal());

        let (recovered, report) = StreamMonitor::recover(&dir, cfg()).unwrap();
        prop_assert!(report.reason.is_clean(), "{:?}", report.reason);
        prop_assert_eq!(recovered.sealed_epoch(), last_version);
        assert_equal_state(&recovered, &batched)?;
        assert_equal_state(&recovered, &serial)?;
        std::fs::remove_dir_all(&dir).ok();
    }
}
