//! Serve-layer concurrency suite: many sessions over real loopback sockets,
//! interleaving interactions, renders and alert polls while the live monitor
//! keeps firing — proving the serving layer's two transactional guarantees:
//!
//! * **No torn frames.** Every `/frame` payload is the product of exactly one
//!   [`batchlens::BatchLens::frame_at`] capture, so any two sessions that
//!   observe the same `(timestamp, version)` key must observe *identical*
//!   contents, even while ingest bumps the version concurrently.
//! * **Exactly-once alert delivery per cursor.** Each session's non-destructive
//!   cursor sees every alert fired after its creation exactly once across all
//!   its polls — no duplicates, no gaps, no stealing between sessions.
//!
//! A deterministic interleaving runs first; a proptest then drives randomized
//! per-session scripts through the same harness.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use batchlens::analytics::baseline::export_usage_records;
use batchlens::sim::scenario;
use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{MachineId, ServerUsageRecord, TimeDelta, Timestamp, UtilizationTriple};
use batchlens::BatchLens;
use batchlens_serve::codec::{read_response, ClientResponse};
use batchlens_serve::session::{AlertsPayload, FrameInfo, SessionCreated};
use batchlens_serve::{ServeConfig, Server, SessionManager};
use proptest::prelude::*;

/// One request/response round trip on an open keep-alive connection.
fn call(conn: &mut TcpStream, method: &str, target: &str, body: &str) -> ClientResponse {
    // One buffer per request: fragmented small writes on a Nagle-enabled
    // socket cost a delayed-ACK round trip per request.
    let req = format!(
        "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(req.as_bytes()).expect("request written");
    let mut reader = BufReader::new(conn.try_clone().expect("clone socket"));
    read_response(&mut reader)
        .expect("response framed")
        .expect("connection open")
}

/// One step of a session's scripted behaviour.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Scrub the view to candidate timestamp `i` (mod the candidate count).
    Select(u8),
    /// Fetch the typed frame payload and record it for tear detection.
    Frame,
    /// Render the dashboard as ASCII (exercises the heavy render path).
    Render,
    /// Poll the session's alert cursor.
    Poll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u8..3).prop_map(|(kind, i)| match kind {
        0 | 1 => Op::Select(i),
        2 | 3 => Op::Frame,
        4 | 5 => Op::Render,
        _ => Op::Poll,
    })
}

/// Shared tear-detection ledger: the canonical `FrameInfo` per
/// `(timestamp, version)` key. A torn capture shows up as two sessions
/// disagreeing about the same key.
type FrameLedger = Arc<Mutex<BTreeMap<(i64, u64), FrameInfo>>>;

/// What one scripted session observed, for the end-of-run audit.
struct SessionOutcome {
    created: SessionCreated,
    /// Every alert seq this cursor delivered, in poll order.
    seqs: Vec<u64>,
    /// Total `missed` reported across all polls.
    missed: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_script(
    addr: SocketAddr,
    script: &[Op],
    candidates: &[Timestamp],
    ledger: &FrameLedger,
    start: &Barrier,
    torn: &AtomicBool,
) -> SessionOutcome {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let created: SessionCreated =
        serde_json::from_str(&call(&mut conn, "POST", "/sessions", "").text())
            .expect("session created");
    let id = created.session;
    let mut seqs = Vec::new();
    let mut missed = 0u64;
    let mut selected: Option<Timestamp> = None;
    start.wait(); // every session exists; the igniter may start firing

    for &op in script {
        match op {
            Op::Select(i) => {
                let at = candidates[i as usize % candidates.len()];
                let event = format!("{{\"SelectTimestamp\": {}}}", at.seconds());
                let resp = call(&mut conn, "POST", &format!("/sessions/{id}/events"), &event);
                assert_eq!(resp.status, 200, "interact must succeed");
                selected = Some(at);
            }
            Op::Frame => {
                let mut frame: FrameInfo = serde_json::from_str(
                    &call(&mut conn, "GET", &format!("/sessions/{id}/frame"), "").text(),
                )
                .expect("frame payload");
                if let Some(at) = selected {
                    assert_eq!(frame.at, at, "frame must reflect the session's view");
                }
                assert!(frame.machines_active.len() <= frame.machines_known);
                frame.session = 0; // the only legitimate cross-session difference
                let key = (frame.at.seconds(), frame.version);
                let mut ledger = ledger.lock().expect("ledger lock");
                if let Some(canonical) = ledger.get(&key) {
                    if *canonical != frame {
                        torn.store(true, Ordering::SeqCst);
                    }
                } else {
                    ledger.insert(key, frame);
                }
            }
            Op::Render => {
                let resp = call(
                    &mut conn,
                    "GET",
                    &format!("/sessions/{id}/render?format=ascii&cols=40&rows=12"),
                    "",
                );
                assert_eq!(resp.status, 200);
                assert!(!resp.body.is_empty(), "render must produce output");
            }
            Op::Poll => {
                let batch: AlertsPayload = serde_json::from_str(
                    &call(&mut conn, "GET", &format!("/sessions/{id}/alerts"), "").text(),
                )
                .expect("alerts payload");
                assert!(batch.live, "the lens has a live monitor attached");
                seqs.extend(batch.alerts.iter().map(|a| a.seq));
                missed += batch.missed;
            }
        }
    }
    SessionOutcome {
        created,
        seqs,
        missed,
    }
}

/// Builds the live-monitor-backed lens, runs `scripts` as concurrent sessions
/// while an igniter thread fires `bursts` single-alert saturation records,
/// then audits frame consistency and exactly-once cursor delivery.
fn interleave(seed: u64, scripts: Vec<Vec<Op>>, bursts: usize) {
    let dataset = scenario::fig3b(seed).run().expect("scenario");
    let span = dataset.span().expect("non-empty dataset");
    let span_end = span.end();
    let step = span.duration() / 4;
    let candidates = [
        span.start() + step,
        span.start() + step * 2,
        span_end - step,
    ];

    let monitor = Arc::new(
        StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::DAY,
            ..Default::default()
        })
        .expect("stream config"),
    );
    let mut usage = export_usage_records(&dataset);
    usage.sort_by_key(|r| (r.time, r.machine));
    for rec in usage {
        monitor.ingest(rec);
    }
    monitor.ingest_instances(dataset.instance_records().iter().copied());
    for ev in dataset.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let mut lens = BatchLens::new(dataset);
    lens.attach_live_monitor(Arc::clone(&monitor));

    let manager = Arc::new(SessionManager::new(Arc::new(lens)));
    let server = Arc::new(
        Server::bind(
            ("127.0.0.1", 0),
            Arc::clone(&manager),
            // One worker per possible concurrent keep-alive session (plus
            // slack): a worker owns its connection until it closes, so fewer
            // workers than phase-locked sessions would deadlock the barrier.
            ServeConfig {
                workers: 6,
                idle_timeout: std::time::Duration::from_secs(30),
                ..Default::default()
            },
        )
        .expect("bind loopback"),
    );
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = Arc::clone(&server);
    let serve_thread = thread::spawn(move || runner.serve());

    let ledger: FrameLedger = Arc::new(Mutex::new(BTreeMap::new()));
    let torn = Arc::new(AtomicBool::new(false));
    // Sessions + the igniter rendezvous once, so every cursor is positioned
    // at the same sequence number before any scripted traffic or burst.
    let start = Arc::new(Barrier::new(scripts.len() + 1));
    let clients: Vec<_> = scripts
        .into_iter()
        .map(|script| {
            let ledger = Arc::clone(&ledger);
            let torn = Arc::clone(&torn);
            let start = Arc::clone(&start);
            thread::spawn(move || run_script(addr, &script, &candidates, &ledger, &start, &torn))
        })
        .collect();

    // The igniter: concurrent saturation records, each firing exactly one
    // alert, interleaved with the scripted session traffic.
    start.wait();
    let seq0 = monitor.next_alert_seq();
    for k in 0..bursts {
        monitor.ingest(ServerUsageRecord {
            time: span_end + TimeDelta::seconds(60 * (k as i64 + 1)),
            machine: MachineId::new(0),
            util: UtilizationTriple::clamped(0.95, 0.3, 0.3),
        });
        thread::yield_now();
    }
    let final_seq = monitor.next_alert_seq();
    assert_eq!(
        final_seq - seq0,
        bursts as u64,
        "each saturation record fires exactly one alert"
    );

    let mut outcomes: Vec<SessionOutcome> = clients
        .into_iter()
        .map(|c| c.join().expect("session thread"))
        .collect();

    // Quiesce, then drain every cursor with one final poll so each session's
    // delivery record covers the full fired range.
    for outcome in &mut outcomes {
        let id = outcome.created.session;
        let mut conn = TcpStream::connect(addr).expect("connect");
        let batch: AlertsPayload = serde_json::from_str(
            &call(&mut conn, "GET", &format!("/sessions/{id}/alerts"), "").text(),
        )
        .expect("alerts payload");
        outcome.seqs.extend(batch.alerts.iter().map(|a| a.seq));
        outcome.missed += batch.missed;
    }

    handle.shutdown();
    serve_thread.join().expect("server joined");

    assert!(
        !torn.load(Ordering::SeqCst),
        "two sessions observed different contents for one (timestamp, version) frame key"
    );
    for outcome in &outcomes {
        assert_eq!(
            outcome.created.cursor, seq0,
            "every cursor was positioned before the first burst"
        );
        assert_eq!(outcome.missed, 0, "nothing evicted under the cursor");
        let expect: Vec<u64> = (seq0..final_seq).collect();
        assert_eq!(
            outcome.seqs, expect,
            "each cursor delivers every fired alert exactly once, in order"
        );
    }
}

#[test]
fn deterministic_interleaving_never_tears_frames_or_duplicates_alerts() {
    use Op::*;
    let scripts = vec![
        vec![Select(0), Frame, Render, Poll, Select(2), Frame, Poll],
        vec![Select(2), Frame, Poll, Select(0), Frame, Render, Poll],
        vec![Select(1), Render, Frame, Poll, Select(1), Frame, Poll],
    ];
    interleave(23, scripts, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized per-session scripts: any interleaving of interactions,
    /// renders and polls across 2–4 concurrent sessions upholds both
    /// serving-layer guarantees.
    #[test]
    fn prop_interleaved_sessions_are_consistent(
        scripts in prop::collection::vec(
            prop::collection::vec(op_strategy(), 3..8),
            2..5,
        ),
        seed in 0u64..100,
        bursts in 1usize..8,
    ) {
        interleave(seed, scripts, bursts);
    }
}
