//! Integration tests for the higher-level analytics: guided tour, query
//! roll-ups, behavior clustering and the supplementary render views.

use batchlens::analytics::behavior::{behavior_vectors, cluster_behaviors};
use batchlens::render::heatmap::Heatmap;
use batchlens::render::radial::{RadialComparison, Spoke};
use batchlens::render::svg::to_svg;
use batchlens::sim::scenario;
use batchlens::tour::{GuidedTour, StopReason};
use batchlens::trace::query;
use batchlens::trace::{Metric, TimeDelta};

/// The guided tour of an overload regime surfaces the thrashing anomaly and a
/// load change, and every stop is a timestamp where work is running.
#[test]
fn guided_tour_surfaces_anomalies_and_changes() {
    let ds = scenario::fig3c(1).run().unwrap();
    let stops = GuidedTour::new().discover(&ds);
    assert!(!stops.is_empty());

    let has_thrashing = stops.iter().any(|s| {
        matches!(
            &s.reason,
            StopReason::AnomalyOnset { job, .. } if *job == scenario::JOB_11939
        )
    });
    assert!(has_thrashing, "tour should find the thrashing job");

    // Every stop's timestamp has at least one running job.
    for stop in &stops {
        assert!(
            !ds.jobs_running_at(stop.at).is_empty(),
            "dead stop at {}",
            stop.at
        );
    }
}

/// The query roll-ups agree with the hierarchy at the Fig 3(b) snapshot:
/// the busiest machine is one hosting the spike job.
#[test]
fn query_rollups_agree_with_snapshot() {
    let ds = scenario::fig3b(2).run().unwrap();
    let at = scenario::T_FIG3B;

    let busiest = query::busiest_machines(&ds, at, 5);
    assert_eq!(busiest.len(), 5);
    // Descending utilization.
    for w in busiest.windows(2) {
        assert!(w[0].utilization.fraction() >= w[1].utilization.fraction());
    }

    // The spike job's footprint is a subset of all machines.
    let footprint = query::job_footprint(&ds, scenario::JOB_7901);
    assert!(!footprint.is_empty());
    for m in &footprint {
        assert!(ds.machine(*m).is_some());
    }

    // The hottest sample over the job window is within [0, 1].
    let window = query::job_window(&ds, scenario::JOB_7901).unwrap();
    let (_, _, v, _) = query::hottest_sample(&ds, &window).unwrap();
    assert!((0.0..=1.0).contains(&v));
}

/// Behavior clustering of an overload regime puts the thrashing machines
/// (memory-heavy, CPU-light) in a recognizable cluster.
#[test]
fn behavior_clustering_groups_similar_machines() {
    let ds = scenario::fig3c(3).run().unwrap();
    let window = ds.span().unwrap();
    let vectors = behavior_vectors(&ds, &window);
    let clusters = cluster_behaviors(&vectors, 4, 50).unwrap();

    // Every machine is assigned to exactly one cluster.
    assert_eq!(clusters.assignments.len(), vectors.len());
    assert_eq!(clusters.sizes().iter().sum::<usize>(), vectors.len());

    // The thrashing job's machines should cluster together more than chance:
    // most of them share one assignment.
    let job = ds.job(scenario::JOB_11939).unwrap();
    let thrash_machines: std::collections::BTreeSet<_> = job.machines().into_iter().collect();
    let mut cluster_of = std::collections::BTreeMap::new();
    for (m, c) in &clusters.assignments {
        if thrash_machines.contains(m) {
            *cluster_of.entry(*c).or_insert(0usize) += 1;
        }
    }
    let dominant = cluster_of.values().copied().max().unwrap_or(0);
    assert!(
        dominant as f64 >= thrash_machines.len() as f64 * 0.5,
        "thrashing machines scattered: {cluster_of:?}"
    );
}

/// The supplementary views render valid, non-trivial SVG.
#[test]
fn supplementary_views_render() {
    let ds = scenario::fig3c(4).run().unwrap();
    let window = ds.span().unwrap();

    let heatmap = to_svg(
        &Heatmap::new(1000.0, 500.0)
            .bucket(TimeDelta::minutes(15))
            .render(&ds, Metric::Cpu, &window),
    );
    assert!(heatmap.starts_with("<?xml"));
    assert!(heatmap.matches("<rect").count() > 10);

    let spokes: Vec<Spoke> = ds
        .jobs_running_at(scenario::T_FIG3C)
        .iter()
        .take(6)
        .map(|j| {
            let machines = j.machines();
            let (subset, cluster) =
                batchlens::analytics::compare::subset_vs_cluster(&ds, &machines, scenario::T_FIG3C);
            Spoke {
                label: j.id().to_string(),
                before: cluster,
                after: subset,
            }
        })
        .collect();
    let radial = to_svg(&RadialComparison::new(400.0, 400.0).render(&spokes));
    assert!(radial.contains("<path") || radial.contains("<text"));
}

/// A session log driven through a tour's stops reconstructs deterministically.
#[test]
fn tour_drives_a_reproducible_session() {
    use batchlens::interaction::Event;
    use batchlens::BatchLens;

    let ds = scenario::fig3c(5).run().unwrap();
    let stops = GuidedTour::new().discover(&ds);
    let render = |ds: batchlens::trace::TraceDataset| {
        let mut app = BatchLens::new(ds);
        for stop in &stops {
            app.apply(Event::SelectTimestamp(stop.at));
        }
        app.log().clone()
    };
    let a = render(scenario::fig3c(5).run().unwrap());
    let b = render(scenario::fig3c(5).run().unwrap());
    assert_eq!(a, b);
    assert_eq!(a.len(), stops.len());
}
