//! Adversarial property tests for the hand-rolled HTTP codec: arbitrary
//! garbage, truncations of valid requests, and oversized inputs must all
//! come back as typed [`CodecError`]s — never a panic — and a parse must
//! never read one byte past the request it returns (over-reading would
//! swallow the start of the next pipelined request).

use std::io::Cursor;

use batchlens_serve::codec::{read_request, read_response, CodecError, Response};
use proptest::prelude::*;

/// A lowercase alphanumeric token of 1–12 characters.
fn token() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..36, 1..13).prop_map(|v| {
        v.into_iter()
            .map(|i| {
                if i < 26 {
                    (b'a' + i) as char
                } else {
                    (b'0' + i - 26) as char
                }
            })
            .collect()
    })
}

/// A syntactically valid request in the codec's subset, plus the metadata
/// needed to check the parse result.
#[derive(Debug, Clone)]
struct ValidRequest {
    bytes: Vec<u8>,
    method: &'static str,
    target: String,
    body: Vec<u8>,
}

fn valid_request() -> impl Strategy<Value = ValidRequest> {
    (
        0u8..3,
        token(),
        prop::collection::vec((token(), token()), 0..6),
        prop::collection::vec(0u8..=255, 0..200),
        0u8..2,
    )
        .prop_map(|(m, path, headers, body, crlf)| {
            let method = ["GET", "POST", "DELETE"][m as usize];
            // Both line endings the reader accepts (CRLF and bare LF).
            let eol = if crlf == 0 { "\n" } else { "\r\n" };
            let target = format!("/{path}");
            let mut bytes = format!("{method} {target} HTTP/1.1{eol}").into_bytes();
            for (name, value) in &headers {
                // An `x-` prefix dodges the headers the parser interprets.
                bytes.extend(format!("x-{name}: {value}{eol}").bytes());
            }
            bytes.extend(format!("content-length: {}{eol}{eol}", body.len()).bytes());
            bytes.extend(&body);
            ValidRequest {
                bytes,
                method,
                target,
                body,
            }
        })
}

proptest! {
    /// Arbitrary bytes never panic the parser and never produce a request
    /// out of thin air: any `Ok(Some(..))` must carry a request line the
    /// input actually contains.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        let mut reader = Cursor::new(bytes.clone());
        match read_request(&mut reader) {
            Ok(None) => prop_assert!(
                bytes.is_empty()
                    || bytes[0] == b'\n'
                    || (bytes[0] == b'\r' && bytes.get(1) == Some(&b'\n')),
                "only an immediate end of stream parses to None"
            ),
            Ok(Some(req)) => {
                let line = format!("{} {}", req.method, req.target);
                let text = String::from_utf8_lossy(&bytes).into_owned();
                prop_assert!(
                    text.contains(&line),
                    "a parsed request must come from the input"
                );
            }
            Err(CodecError::Io(_) | CodecError::Malformed(_) | CodecError::TooLarge(_)) => {}
        }
    }

    /// Same for the client half: arbitrary bytes never panic
    /// `read_response`.
    #[test]
    fn garbage_never_panics_the_client_half(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        let mut reader = Cursor::new(bytes);
        let _ = read_response(&mut reader);
    }

    /// A valid request parses back exactly, and the reader stops on the
    /// byte after the body: a trailing suffix (the next pipelined request)
    /// is left untouched.
    #[test]
    fn valid_requests_round_trip_without_over_reading(
        req in valid_request(),
        suffix in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let mut bytes = req.bytes.clone();
        bytes.extend(&suffix);
        let mut reader = Cursor::new(bytes);
        let parsed = read_request(&mut reader)
            .expect("valid request parses")
            .expect("non-empty stream");
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.target, req.target);
        prop_assert_eq!(parsed.body, req.body);
        let consumed = reader.position() as usize;
        let rest = &reader.get_ref()[consumed..];
        prop_assert_eq!(rest, &suffix[..], "the parser must not read past the request");
    }

    /// Every strict prefix of a valid request is detected as incomplete —
    /// a typed error, never a panic, never a fabricated request, and never
    /// a misreported limit.
    #[test]
    fn truncations_surface_as_typed_errors(
        req in valid_request(),
        cut in 0.0f64..1.0,
    ) {
        // A strict, non-empty prefix (every valid request is > 2 bytes).
        let len = 1 + (cut * (req.bytes.len() - 2) as f64) as usize;
        let mut reader = Cursor::new(req.bytes[..len].to_vec());
        match read_request(&mut reader) {
            Ok(Some(_)) => prop_assert!(false, "a strict prefix cannot be a whole request"),
            Ok(None) => prop_assert!(false, "a non-empty prefix is not an empty stream"),
            Err(CodecError::Malformed(_) | CodecError::Io(_)) => {}
            Err(CodecError::TooLarge(what)) => {
                prop_assert!(false, "truncation misreported as a limit: {}", what)
            }
        }
    }

    /// Responses survive the same trip: what `Response::write_to` emits,
    /// `read_response` parses back, and truncating it anywhere yields a
    /// typed error, never a fabricated response.
    #[test]
    fn responses_round_trip_and_reject_truncation(
        body in prop::collection::vec(0u8..=255, 1..200),
        cut in 0.0f64..1.0,
    ) {
        let text = String::from_utf8_lossy(&body).into_owned();
        let mut wire = Vec::new();
        Response::ok_text(text.clone()).write_to(&mut wire).expect("write to memory");
        let parsed = read_response(&mut Cursor::new(wire.clone()))
            .expect("parses")
            .expect("non-empty");
        prop_assert_eq!(parsed.status, 200);
        prop_assert_eq!(parsed.body, text.into_bytes());
        let len = 1 + (cut * (wire.len() - 2) as f64) as usize;
        if let Ok(Some(_)) = read_response(&mut Cursor::new(wire[..len].to_vec())) {
            prop_assert!(false, "a strict prefix cannot be a whole response");
        }
    }
}

/// The three hard limits each surface as `TooLarge` with the right label —
/// and nothing bigger than the limit is ever buffered.
#[test]
fn oversized_inputs_hit_their_limits() {
    // Request line longer than MAX_LINE (8 KiB).
    let huge_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9 * 1024));
    match read_request(&mut Cursor::new(huge_line.into_bytes())) {
        Err(CodecError::TooLarge("line")) => {}
        other => panic!("expected TooLarge(line), got {other:?}"),
    }

    // More headers than MAX_HEADERS (64).
    let mut many = String::from("GET / HTTP/1.1\r\n");
    for i in 0..70 {
        many.push_str(&format!("x-h{i}: v\r\n"));
    }
    many.push_str("\r\n");
    match read_request(&mut Cursor::new(many.into_bytes())) {
        Err(CodecError::TooLarge("header count")) => {}
        other => panic!("expected TooLarge(header count), got {other:?}"),
    }

    // A declared body larger than MAX_BODY (1 MiB) is rejected before any
    // body byte is read.
    let big_body = "POST / HTTP/1.1\r\ncontent-length: 2097152\r\n\r\n";
    let mut reader = Cursor::new(big_body.as_bytes().to_vec());
    match read_request(&mut reader) {
        Err(CodecError::TooLarge("body")) => {}
        other => panic!("expected TooLarge(body), got {other:?}"),
    }
    assert_eq!(
        reader.position() as usize,
        big_body.len(),
        "the oversized body itself is never buffered"
    );

    // An absurd content-length value is malformed, not a crash.
    let nan = "POST / HTTP/1.1\r\ncontent-length: 99999999999999999999999\r\n\r\n";
    match read_request(&mut Cursor::new(nan.as_bytes().to_vec())) {
        Err(CodecError::Malformed("bad content-length")) => {}
        other => panic!("expected Malformed(bad content-length), got {other:?}"),
    }
}
