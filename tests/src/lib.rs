//! Integration and property test suites for the BatchLens workspace.
//!
//! The actual tests live in `tests/` next to this crate root; this library
//! target exists only to anchor the workspace member.
